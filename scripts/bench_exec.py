#!/usr/bin/env python
"""Benchmark the execution layer: serial vs parallel factorial sweep.

Runs a small fig12/tab04-style randomized 2^4 factorial (the paper's
Table IV shape) twice through :class:`repro.core.attribution.
AttributionStudy` — once on a :class:`~repro.exec.SerialExecutor`,
once on a :class:`~repro.exec.ParallelExecutor` — asserts that the
per-run metrics are bit-identical, and writes ``BENCH_exec.json`` so
the perf trajectory is tracked across PRs.

Usage::

    PYTHONPATH=src python scripts/bench_exec.py [--jobs 4]
        [--replications 2] [--samples 800] [--out BENCH_exec.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import __version__  # noqa: E402
from repro.core.attribution import AttributionConfig, AttributionStudy  # noqa: E402
from repro.exec import ParallelExecutor, SerialExecutor, Telemetry  # noqa: E402
from repro.workloads.memcached import MemcachedWorkload  # noqa: E402


def build_study(executor, args) -> AttributionStudy:
    return AttributionStudy(
        AttributionConfig(
            workload=MemcachedWorkload(),
            target_utilization=0.7,
            replications=args.replications,
            num_instances=2,
            measurement_samples_per_instance=args.samples,
            warmup_samples=150,
            seed=7,
        ),
        executor=executor,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--replications", type=int, default=2)
    parser.add_argument("--samples", type=int, default=800)
    parser.add_argument("--out", default="BENCH_exec.json")
    args = parser.parse_args()

    n_experiments = 16 * args.replications

    print(
        f"[bench_exec] factorial: 2^4 configs x {args.replications} reps "
        f"= {n_experiments} experiments, {args.samples} samples/instance"
    )

    serial_telemetry = Telemetry()
    t0 = time.perf_counter()
    with SerialExecutor() as ex:
        serial = build_study(ex, args).run_experiments(progress=serial_telemetry)
    serial_s = time.perf_counter() - t0
    print(f"[bench_exec] serial:    {serial_s:.1f}s "
          f"({serial_telemetry.summary()['events_per_second']} events/s)")

    parallel_telemetry = Telemetry()
    t0 = time.perf_counter()
    with ParallelExecutor(max_workers=args.jobs) as ex:
        parallel = build_study(ex, args).run_experiments(progress=parallel_telemetry)
    parallel_s = time.perf_counter() - t0
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"[bench_exec] --jobs {args.jobs}: {parallel_s:.1f}s "
          f"(speedup {speedup:.2f}x)")

    identical = all(
        a.coded == b.coded and (a.samples == b.samples).all()
        for a, b in zip(serial, parallel)
    )
    print(f"[bench_exec] serial/parallel outputs identical: {identical}")

    payload = {
        "bench": "exec_factorial",
        "library_version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "experiments": n_experiments,
        "samples_per_instance": args.samples,
        "jobs": args.jobs,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "outputs_identical": identical,
        "serial_events_per_s": serial_telemetry.summary()["events_per_second"],
        "parallel_wall_s_sum": parallel_telemetry.summary()["wall_s"],
    }
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[bench_exec] wrote {args.out}")

    if not identical:
        print("[bench_exec] FAIL: outputs differ between executors")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
