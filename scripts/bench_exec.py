#!/usr/bin/env python
"""Benchmark the execution layer: serial vs process pool vs cluster.

Runs a small fig12/tab04-style randomized 2^4 factorial (the paper's
Table IV shape) three times through :class:`repro.core.attribution.
AttributionStudy` — on a :class:`~repro.exec.SerialExecutor`, a
:class:`~repro.exec.ParallelExecutor`, and a
:class:`~repro.exec.LocalClusterExecutor` (the distributed backend
with local worker subprocesses) — asserts that the per-run metrics
are bit-identical across all three, and writes ``BENCH_exec.json``
so the perf trajectory is tracked across PRs.

Usage::

    PYTHONPATH=src python scripts/bench_exec.py [--jobs 4]
        [--cluster-workers 4] [--replications 2] [--samples 800]
        [--out BENCH_exec.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import __version__  # noqa: E402
from repro.core.attribution import AttributionConfig, AttributionStudy  # noqa: E402
from repro.exec import (  # noqa: E402
    LocalClusterExecutor,
    ParallelExecutor,
    SerialExecutor,
    Telemetry,
)
from repro.workloads.memcached import MemcachedWorkload  # noqa: E402


def build_study(executor, args) -> AttributionStudy:
    return AttributionStudy(
        AttributionConfig(
            workload=MemcachedWorkload(),
            target_utilization=0.7,
            replications=args.replications,
            num_instances=2,
            measurement_samples_per_instance=args.samples,
            warmup_samples=150,
            seed=7,
        ),
        executor=executor,
    )


def run_lane(label, executor, args):
    telemetry = Telemetry()
    t0 = time.perf_counter()
    with executor as ex:
        runs = build_study(ex, args).run_experiments(progress=telemetry)
    elapsed = time.perf_counter() - t0
    events_per_s = telemetry.summary()["events_per_second"]
    print(f"[bench_exec] {label:<22} {elapsed:6.1f}s ({events_per_s} sim events/s)")
    return runs, elapsed, telemetry


def identical(a, b) -> bool:
    return all(
        x.coded == y.coded and (x.samples == y.samples).all() for x, y in zip(a, b)
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--cluster-workers", type=int, default=4)
    parser.add_argument("--replications", type=int, default=2)
    parser.add_argument("--samples", type=int, default=800)
    parser.add_argument("--out", default="BENCH_exec.json")
    args = parser.parse_args()

    n_experiments = 16 * args.replications
    print(
        f"[bench_exec] factorial: 2^4 configs x {args.replications} reps "
        f"= {n_experiments} experiments, {args.samples} samples/instance"
    )

    # One discarded warm-up run: the first trip through the simulator
    # pays interpreter cold-start (code-object caches, allocator
    # arenas) that the steady-state lanes should not include.
    from repro.exec.spec import RunSpec, run_spec  # noqa: E402

    run_spec(
        RunSpec(
            workload=MemcachedWorkload(),
            target_utilization=0.7,
            num_instances=2,
            measurement_samples_per_instance=200,
            warmup_samples=50,
            seed=7,
        )
    )

    serial, serial_s, serial_telemetry = run_lane(
        "serial:", SerialExecutor(), args
    )
    parallel, parallel_s, _ = run_lane(
        f"process --jobs {args.jobs}:", ParallelExecutor(max_workers=args.jobs), args
    )
    cluster, cluster_s, _ = run_lane(
        f"cluster --workers {args.cluster_workers}:",
        LocalClusterExecutor(workers=args.cluster_workers),
        args,
    )

    parallel_speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cluster_speedup = serial_s / cluster_s if cluster_s > 0 else float("inf")
    from repro.hostinfo import host_info, parallel_meaningful as _pm  # noqa: E402

    parallel_identical = identical(serial, parallel)
    cluster_identical = identical(serial, cluster)
    parallel_meaningful = _pm()
    print(
        f"[bench_exec] speedups: process {parallel_speedup:.2f}x, "
        f"cluster {cluster_speedup:.2f}x"
    )
    if not parallel_meaningful:
        print(
            "[bench_exec] note: single-CPU host — parallel/cluster lanes "
            "still verify output identity, but their wall-clock numbers "
            "are not meaningful speedup measurements"
        )
    print(
        f"[bench_exec] outputs identical: process={parallel_identical} "
        f"cluster={cluster_identical}"
    )

    payload = {
        "bench": "exec_factorial",
        "library_version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        #: Host provenance: trajectory points are only comparable
        #: between hosts with the same fingerprint.
        "host": host_info(),
        "experiments": n_experiments,
        "samples_per_instance": args.samples,
        "jobs": args.jobs,
        "cluster_workers": args.cluster_workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "cluster_s": round(cluster_s, 3),
        "speedup": round(parallel_speedup, 3),
        "cluster_speedup": round(cluster_speedup, 3),
        "outputs_identical": parallel_identical,
        "cluster_outputs_identical": cluster_identical,
        "serial_events_per_s": serial_telemetry.summary()["events_per_second"],
        #: False on single-CPU hosts: speedup numbers there measure
        #: scheduling overhead, not parallelism.
        "parallel_meaningful": parallel_meaningful,
    }
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[bench_exec] wrote {args.out}")

    if not (parallel_identical and cluster_identical):
        print("[bench_exec] FAIL: outputs differ between executors")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
