"""Dev probe: quick factorial sweep to check factor effect calibration.

Not part of the library; used while tuning simulator constants against
the paper's Table IV / Figs. 7-11 shape targets.
"""

import sys
import time

from repro import AttributionConfig, AttributionStudy
from repro.workloads import McrouterWorkload, MemcachedWorkload

workload = sys.argv[1] if len(sys.argv) > 1 else "memcached"
util = float(sys.argv[2]) if len(sys.argv) > 2 else 0.7
reps = int(sys.argv[3]) if len(sys.argv) > 3 else 4

wl = MemcachedWorkload() if workload == "memcached" else McrouterWorkload()
t0 = time.time()
cfg = AttributionConfig(
    workload=wl,
    target_utilization=util,
    replications=reps,
    num_instances=4,
    measurement_samples_per_instance=3000,
    n_boot=0,
    seed=7,
)
report = AttributionStudy(cfg).analyze()
for tau in cfg.taus:
    fit = report.fits[tau]
    main = "  ".join(
        f"{n} {fit.coef(n):7.1f}" for n in ("numa", "turbo", "dvfs", "nic")
    )
    print(f"tau={tau}: intercept {fit.coef('(Intercept)'):7.1f}  {main}")
print("pseudo-R2:", {k: round(v, 3) for k, v in report.pseudo_r2.items()})
print(
    "avg impacts p99:",
    {f.name: round(report.factor_average_impact(f.name, 0.99), 1) for f in report.factors},
)
est = report.all_config_estimates(0.99)
print("config p99 range:", round(min(est.values()), 1), "->", round(max(est.values()), 1))
print("best config:", report.best_config(0.99))
print("wall:", round(time.time() - t0, 1), "s")
