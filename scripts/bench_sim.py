#!/usr/bin/env python
"""Benchmark the simulation hot path itself.

Boots one Treadmill-vs-memcached bench (the same shape ``run_spec``
builds) and drives the event loop in timed slices, reporting

* sustained **events/s** and **requests/s** of the kernel,
* the **p50/p99 per-event step cost** in nanoseconds, measured over
  fixed-size slices (each slice's wall time divided by the events it
  executed — the distribution exposes warm-up, GC, and host jitter
  that a single average would hide), and
* the **RNG-batch hit rate**: the fraction of hot-path variate draws
  (inter-arrival gaps, connection picks, request parameters) served
  from pre-sampled blocks without touching a numpy Generator.

Results go to ``BENCH_sim.json`` so the perf trajectory is tracked
across PRs.  ``--profile`` additionally runs the measured portion
under cProfile and prints the top-N functions by internal time.

Usage::

    PYTHONPATH=src python scripts/bench_sim.py [--quick]
        [--samples 3000] [--instances 2] [--utilization 0.7]
        [--slice-events 2048] [--profile [N]] [--out BENCH_sim.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import __version__  # noqa: E402
from repro.core.bench import BenchConfig, TestBench  # noqa: E402
from repro.core.treadmill import TreadmillConfig, TreadmillInstance  # noqa: E402
from repro.workloads.memcached import MemcachedWorkload  # noqa: E402


def build_bench(args):
    """One server + N Treadmill instances, same wiring as run_spec."""
    bench = TestBench(
        BenchConfig(workload=MemcachedWorkload(), seed=args.seed), run_index=0
    )
    per_us = bench.server.arrival_rate_for_utilization(args.utilization)
    rate_per_instance = per_us * 1e6 / args.instances
    instances = [
        TreadmillInstance(
            bench,
            f"client{i}",
            TreadmillConfig(
                rate_rps=rate_per_instance,
                connections=4,
                warmup_samples=args.warmup,
                measurement_samples=args.samples,
            ),
        )
        for i in range(args.instances)
    ]
    for inst in instances:
        inst.start()
    return bench, instances


def drive(bench, instances, slice_events):
    """Run to completion in fixed-size slices; return per-slice costs.

    Mirrors ``TestBench.run_to_completion`` (run until every instance
    is done, stop, drain) but executes through ``sim.run(max_events=
    slice_events)`` so each slice can be timed individually.
    """
    sim = bench.sim
    step_ns = []  # mean ns/event of each slice
    perf = time.perf_counter_ns
    while not all(inst.done for inst in instances):
        t0 = perf()
        executed = sim.run(max_events=slice_events)
        dt = perf() - t0
        if executed:
            step_ns.append(dt / executed)
        if executed < slice_events and sim.peek() is None:
            # Instances stop their own controllers at the final counted
            # sample, so a drained queue with every instance done is the
            # normal end of the run — anything else is a stall.
            if all(inst.done for inst in instances):
                break
            raise RuntimeError("simulation drained before instances finished")
    for inst in instances:
        inst.stop()
    sim.run()  # drain in-flight requests
    return step_ns


def percentile(sorted_vals, q):
    """Nearest-rank percentile of an ascending list."""
    if not sorted_vals:
        return 0.0
    rank = max(0, math.ceil(q * len(sorted_vals)) - 1)
    return sorted_vals[rank]


def batch_hit_rate(instances):
    """Pooled hit rate across every hot-path BlockStream."""
    draws = sum(s.draws for inst in instances for s in inst.streams)
    refills = sum(s.refills for inst in instances for s in inst.streams)
    if draws == 0:
        return 0.0, 0, 0
    return 1.0 - refills / draws, draws, refills


def run_measurement(args):
    bench, instances = build_bench(args)
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    t0 = time.perf_counter()
    try:
        step_ns = drive(bench, instances, args.slice_events)
    finally:
        if gc_was_enabled:
            gc.enable()
    wall_s = time.perf_counter() - t0
    return bench, instances, step_ns, wall_s


def bench_run_spec(args):
    """The bench workload as a RunSpec (the partitioned lane's unit).

    Same shape as ``build_bench`` — one memcached server, N Treadmill
    instances at a target utilization — expressed declaratively so the
    serial and partitioned kernels measure the *same* experiment and
    their ``RunResult``s can be fingerprint-compared.
    """
    from repro.exec.spec import RunSpec  # noqa: E402

    return RunSpec(
        workload=MemcachedWorkload(),
        target_utilization=args.utilization,
        num_instances=args.instances,
        connections_per_instance=4,
        warmup_samples=args.warmup,
        measurement_samples_per_instance=args.samples,
        keep_raw=True,
        seed=args.seed,
    )


def run_partitioned_lane(args, partition_counts):
    """Events/s of the sharded kernel vs the serial reference.

    For each partition count: build the bench as N sub-kernels, drive
    it through the conservative window protocol, and fingerprint the
    merged ``RunResult`` against the serial kernel's.  The gate is
    ``outputs_identical`` — bit-identity, never wall-clock.
    """
    from repro.exec.spec import result_fingerprint  # noqa: E402
    from repro.measure.simbackend import (  # noqa: E402
        _drive_single_server,
        build_single_partitioned,
        merge_single_partials,
    )
    from repro.sim.partition import (  # noqa: E402
        collect_partial,
        drive_partitioned,
    )

    spec = bench_run_spec(args)
    serial = _drive_single_server(spec)
    reference = result_fingerprint(serial)
    lanes = []
    all_identical = True
    for n in partition_counts:
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        t0 = time.perf_counter()
        try:
            build = build_single_partitioned(spec, n)
            stats = drive_partitioned(build)
        finally:
            if gc_was_enabled:
                gc.enable()
        wall_s = time.perf_counter() - t0
        partials = [collect_partial(build, s) for s in range(n)]
        result = merge_single_partials(spec, partials, wall_s)
        identical = result_fingerprint(result) == reference
        all_identical = all_identical and identical
        boundary_fraction = (
            stats.boundary_events / stats.executed if stats.executed else 0.0
        )
        lanes.append(
            {
                "partitions": n,
                "wall_s": round(wall_s, 3),
                "events": stats.executed,
                "events_per_s": round(stats.executed / wall_s, 1),
                "windows": stats.windows,
                "boundary_events": stats.boundary_events,
                "boundary_event_fraction": round(boundary_fraction, 6),
                "outputs_identical": identical,
            }
        )
        print(
            f"[bench_sim] partitioned n={n}: "
            f"{stats.executed / wall_s:,.0f} events/s over "
            f"{stats.windows:,} windows "
            f"({boundary_fraction:.2%} boundary events), "
            f"outputs_identical={identical}"
        )
    return lanes, all_identical


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=3000,
                        help="measurement samples per instance")
    parser.add_argument("--warmup", type=int, default=200)
    parser.add_argument("--instances", type=int, default=2)
    parser.add_argument("--utilization", type=float, default=0.7)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--slice-events", type=int, default=2048,
                        help="events per timed kernel slice")
    parser.add_argument("--partitions", default="1,2,4", metavar="LIST",
                        help=("partition counts for the sharded-kernel lane "
                              "(comma-separated, default 1,2,4; empty "
                              "string skips the lane)"))
    parser.add_argument("--quick", action="store_true",
                        help="small CI-sized run (fewer samples)")
    parser.add_argument("--profile", nargs="?", type=int, const=25,
                        default=None, metavar="N",
                        help="also profile a run and print the top N functions")
    parser.add_argument("--out", default="BENCH_sim.json")
    args = parser.parse_args()
    if args.quick:
        args.samples = min(args.samples, 800)
        args.warmup = min(args.warmup, 150)

    # One discarded warm-up pass: the first run through the kernel pays
    # interpreter cold-start (code-object caches, allocator arenas) that
    # a steady-state measurement should not include.
    run_measurement(args)
    bench, instances, step_ns, wall_s = run_measurement(args)

    events = bench.sim.events_processed
    requests = sum(inst.controller.sent for inst in instances)
    hit_rate, draws, refills = batch_hit_rate(instances)
    step_sorted = sorted(step_ns)
    p50 = percentile(step_sorted, 0.50)
    p99 = percentile(step_sorted, 0.99)

    print(
        f"[bench_sim] {events:,} events / {requests:,} requests "
        f"in {wall_s:.2f}s"
    )
    print(
        f"[bench_sim] {events / wall_s:,.0f} events/s, "
        f"{requests / wall_s:,.0f} requests/s "
        f"({events / requests:.1f} events/request)"
    )
    print(
        f"[bench_sim] step cost over {len(step_ns)} slices of "
        f"{args.slice_events} events: p50={p50:.0f} ns, p99={p99:.0f} ns"
    )
    print(
        f"[bench_sim] RNG-batch hit rate: {hit_rate:.4f} "
        f"({draws:,} draws, {refills:,} block refills)"
    )

    partition_counts = [
        int(tok) for tok in args.partitions.split(",") if tok.strip()
    ]
    if partition_counts:
        lanes, outputs_identical = run_partitioned_lane(args, partition_counts)
    else:
        lanes, outputs_identical = [], None

    from repro.hostinfo import host_info, parallel_meaningful  # noqa: E402

    payload = {
        "bench": "sim_hot_path",
        "library_version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        #: Host provenance: trajectory points are only comparable
        #: between hosts with the same fingerprint.
        "host": host_info(),
        "quick": args.quick,
        "samples_per_instance": args.samples,
        "instances": args.instances,
        "utilization": args.utilization,
        "slice_events": args.slice_events,
        "wall_s": round(wall_s, 3),
        "events": events,
        "requests": requests,
        "events_per_s": round(events / wall_s, 1),
        "requests_per_s": round(requests / wall_s, 1),
        "step_ns_p50": round(p50, 1),
        "step_ns_p99": round(p99, 1),
        "rng_batch_hit_rate": round(hit_rate, 6),
        "rng_draws": draws,
        "rng_block_refills": refills,
        #: Wall-clock speedup from the multi-process mode only means
        #: anything with real cores; the identity gate holds anywhere.
        "parallel_meaningful": parallel_meaningful(),
        "partitioned": lanes,
        #: The acceptance gate: every partition count reproduced the
        #: serial kernel's RunResult bit for bit (None = lane skipped).
        "outputs_identical": outputs_identical,
    }
    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[bench_sim] wrote {args.out}")

    if args.profile is not None:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        run_measurement(args)
        profiler.disable()
        print(f"[bench_sim] top {args.profile} functions by internal time:")
        pstats.Stats(profiler).sort_stats("tottime").print_stats(args.profile)
    if outputs_identical is False:
        print(
            "[bench_sim] FAIL: partitioned kernel diverged from the "
            "serial reference (outputs_identical: false)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
