"""Tests for the fault-injection layer and the self-healing executor.

Five layers, tested separately so failures localize:

* `FaultPlan` / `FaultInjector` — seeded determinism, serialization,
  at-most-once firing;
* resilience units — error classification, `_Batch` retry budgets
  with backoff, the worker `CircuitBreaker` (all clock-injected, no
  sleeping), the crash-recoverable `RunJournal`, cache quarantine;
* `Coordinator.close()` — idempotency and the no-leaked-FD promise;
* graceful degradation — a cluster below its healthy-worker floor
  falls back to the process backend instead of stalling;
* the chaos invariant — a seeded matrix (8 fault-plan seeds x cluster
  sizes 1-3, every fault kind exercised at least once) asserting that
  each run is bit-identical to `SerialExecutor` or fails with a
  clean, attributed `ExecError` — never a hang, never silent loss.
"""

import json
import os
import socket
import time

import pytest

from repro.exec import (
    QUARANTINE_DIR,
    CircuitBreaker,
    ClusterExecutor,
    ClusterOptions,
    HealthPolicy,
    ResultCache,
    RetryPolicy,
    RunJournal,
    SerialExecutor,
    TRANSIENT_ERROR_TYPES,
    classify_error,
)
from repro.exec import protocol as proto
from repro.exec.distributed import Coordinator, _Batch
from repro.exec.executors import execution, get_execution_defaults
from repro.faults import (
    FAULT_KINDS,
    KIND_SITES,
    ChaosSpec,
    FaultAction,
    FaultInjector,
    FaultPlan,
    chaos_task,
    result_signature,
    run_chaos,
)

# The seeded chaos matrix: 8 plan seeds x cluster sizes 1-3.
CHAOS_SEEDS = tuple(range(8))
CHAOS_WORKERS = (1, 2, 3)


# ----------------------------------------------------------------------
# FaultPlan / FaultInjector
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_generation_is_deterministic(self):
        a = FaultPlan.generate(42)
        b = FaultPlan.generate(42)
        assert a == b
        assert a.digest() == b.digest()
        assert FaultPlan.generate(43).digest() != a.digest()

    def test_json_roundtrip_preserves_digest(self):
        plan = FaultPlan.generate(7, n_faults=5, hang_s=1.5)
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.digest() == plan.digest()

    def test_version_mismatch_rejected(self):
        blob = json.loads(FaultPlan.generate(1).to_json())
        blob["version"] = 99
        with pytest.raises(ValueError, match="version"):
            FaultPlan.from_json(json.dumps(blob))

    def test_action_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultAction(kind="meteor_strike", site="worker.task")
        with pytest.raises(ValueError, match="cannot fire at site"):
            FaultAction(kind="worker_crash", site="cache.put")
        with pytest.raises(ValueError, match="nth"):
            FaultAction(kind="worker_crash", site="worker.task", nth=0)

    def test_every_kind_has_valid_sites(self):
        assert set(KIND_SITES) == set(FAULT_KINDS)
        for kind, sites in KIND_SITES.items():
            for site in sites:
                FaultAction(kind=kind, site=site)  # must not raise

    def test_matrix_seeds_cover_every_injectable_kind(self):
        """The chaos matrix below exercises every distributed fault kind
        at least once (coordinator_restart is added by the recovery
        test; live kinds live in FaultPlan.generate_live's palette and
        partition_desync in run_partition_chaos's, so historical seeded
        plans stay bit-identical)."""
        from repro.faults.plan import LIVE_FAULT_KINDS

        kinds = set()
        for seed in CHAOS_SEEDS:
            kinds |= set(FaultPlan.generate(seed).kinds())
        assert kinds == (
            set(FAULT_KINDS)
            - {"coordinator_restart", "partition_desync"}
            - set(LIVE_FAULT_KINDS)
        )

    def test_generate_live_palette_and_determinism(self):
        from repro.faults.plan import LIVE_FAULT_KINDS

        a = FaultPlan.generate_live(7)
        b = FaultPlan.generate_live(7)
        assert a.digest() == b.digest()
        assert set(a.kinds()) <= set(LIVE_FAULT_KINDS)
        # The live palette is decoupled: same seed, different stream.
        assert a.digest() != FaultPlan.generate(7).digest()


class TestFaultInjector:
    def test_fires_on_nth_arrival_at_most_once(self):
        plan = FaultPlan(
            seed=0,
            actions=(FaultAction(kind="worker_crash", site="worker.task", nth=2),),
        )
        inj = plan.injector()
        assert inj.fire("worker.task") is None  # arrival 1
        action = inj.fire("worker.task")  # arrival 2: fires
        assert action is not None and action.kind == "worker_crash"
        assert inj.fire("worker.task") is None  # consumed
        assert inj.fired == [("worker.task", 2, "worker_crash")]
        assert inj.exhausted

    def test_sites_count_independently(self):
        plan = FaultPlan(
            seed=0,
            actions=(
                FaultAction(kind="worker_crash", site="worker.task", nth=1),
                FaultAction(kind="corrupt_result", site="worker.result", nth=1),
            ),
        )
        inj = plan.injector()
        assert inj.fire("worker.result").kind == "corrupt_result"
        assert inj.fire("worker.task").kind == "worker_crash"
        assert inj.counts() == {"worker.task": 1, "worker.result": 1}

    def test_shared_injector_never_refires_across_restarts(self):
        """The harness shares one injector across coordinator restarts;
        a consumed coordinator_restart must not fire again."""
        plan = FaultPlan(
            seed=0,
            actions=(
                FaultAction(kind="coordinator_restart", site="coordinator.loop", nth=1),
            ),
        )
        inj = plan.injector()
        assert inj.fire("coordinator.loop").kind == "coordinator_restart"
        for _ in range(10):  # the "restarted" run loop
            assert inj.fire("coordinator.loop") is None

    def test_injector_duck_types_as_plan(self):
        inj = FaultPlan.generate(5).injector()
        assert inj.injector() is inj  # ClusterOptions.fault_plan accepts either
        assert FaultPlan.from_json(inj.to_json()) == inj.plan


# ----------------------------------------------------------------------
# error classification & retry budgets
# ----------------------------------------------------------------------
class TestClassifyError:
    @pytest.mark.parametrize("name", sorted(TRANSIENT_ERROR_TYPES))
    def test_transient_types(self, name):
        assert classify_error(name)

    @pytest.mark.parametrize(
        "name", ["ValueError", "KeyError", "ZeroDivisionError", "AssertionError", ""]
    )
    def test_deterministic_types(self, name):
        assert not classify_error(name)

    def test_repr_fallback_for_old_workers(self):
        assert classify_error("", "OSError('disk on fire')")
        assert classify_error("", "MemoryError()")
        assert not classify_error("", "ValueError('bad spec')")

    def test_dotted_names(self):
        assert classify_error("pickle.PicklingError")


def _mini_batch(n=2, retry=None, lease_s=60.0, max_attempts=3):
    digests = {i: f"d{i}" for i in range(n)}
    return _Batch(range(n), digests, lease_s, max_attempts, True, retry=retry)


class TestTaskErrorClassification:
    def test_transient_error_is_requeued(self):
        batch = _mini_batch(retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0))
        lease = batch.next_task(now=0.0, conn_id=1)
        assert batch.task_error(
            lease.lease_id, "OSError('enospc')", "tb", error_type="OSError", now=0.0
        )
        assert batch.failed is None
        assert lease.index in batch.pending  # back in the queue

    def test_deterministic_error_fails_fast(self):
        batch = _mini_batch()
        lease = batch.next_task(now=0.0, conn_id=1)
        assert not batch.task_error(
            lease.lease_id, "ValueError('boom')", "tb", error_type="ValueError"
        )
        assert batch.failed is not None
        assert "ValueError" in batch.failed

    def test_transient_budget_exhaustion_fails_batch(self):
        batch = _mini_batch(retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0))
        for _ in range(2):
            lease = batch.next_task(now=0.0, conn_id=1)
            batch.task_error(
                lease.lease_id, "MemoryError()", "tb", error_type="MemoryError"
            )
        assert batch.failed is not None
        assert "retry budget" in batch.failed

    def test_backoff_delays_requeue(self):
        retry = RetryPolicy(
            max_attempts=5, backoff_base_s=0.5, backoff_cap_s=2.0, jitter_seed=1
        )
        batch = _mini_batch(n=1, retry=retry)
        lease = batch.next_task(now=0.0, conn_id=1)
        batch.task_error(lease.lease_id, "OSError()", "tb", error_type="OSError", now=0.0)
        # Still cooling down: not eligible immediately...
        assert batch.next_task(now=0.0, conn_id=1) is None
        assert batch.not_before[0] >= 0.5  # at least the base delay
        # ...but eligible once the (capped) delay has elapsed.
        assert batch.next_task(now=2.1, conn_id=1) is not None

    def test_backoff_schedule_is_deterministic_per_seed(self):
        def delays(seed):
            retry = RetryPolicy(
                max_attempts=10, backoff_base_s=0.1, backoff_cap_s=5.0, jitter_seed=seed
            )
            batch = _mini_batch(n=1, retry=retry)
            out = []
            now = 0.0
            for _ in range(4):
                lease = batch.next_task(now=now, conn_id=1)
                batch.task_error(
                    lease.lease_id, "OSError()", "tb", error_type="OSError", now=now
                )
                out.append(batch.not_before[0] - now)
                now = batch.not_before[0] + 0.01
            return out

        assert delays(3) == delays(3)
        assert delays(3) != delays(4)
        assert all(d <= 5.0 for d in delays(3))  # capped


# ----------------------------------------------------------------------
# the circuit breaker (pure, clock-injected)
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def policy(self, **kw):
        defaults = dict(trip_after=3, cooldown_s=10.0)
        defaults.update(kw)
        return HealthPolicy(**defaults)

    def test_trips_after_consecutive_strikes(self):
        breaker = CircuitBreaker(self.policy())
        assert not breaker.record_failure("w", now=0.0)
        assert not breaker.record_failure("w", now=1.0)
        assert breaker.record_failure("w", now=2.0)  # third strike trips
        assert breaker.trips == 1
        assert not breaker.allow("w", now=5.0)  # quarantined
        assert breaker.is_open("w", now=5.0)

    def test_success_resets_strikes(self):
        breaker = CircuitBreaker(self.policy())
        breaker.record_failure("w", now=0.0)
        breaker.record_failure("w", now=1.0)
        breaker.record_success("w")
        assert not breaker.record_failure("w", now=2.0)  # count restarted

    def test_half_open_probation(self):
        breaker = CircuitBreaker(self.policy())
        for t in range(3):
            breaker.record_failure("w", now=float(t))
        # Cool-down over: one probe allowed...
        assert breaker.allow("w", now=13.0)
        # ...and a single further strike re-trips immediately.
        assert breaker.record_failure("w", now=13.5)
        assert breaker.trips == 2
        assert not breaker.allow("w", now=14.0)

    def test_probation_success_closes(self):
        breaker = CircuitBreaker(self.policy())
        for t in range(3):
            breaker.record_failure("w", now=float(t))
        assert breaker.allow("w", now=13.0)  # probation
        breaker.record_success("w")
        assert not breaker.record_failure("w", now=14.0)  # closed: needs 3 again

    def test_workers_are_independent(self):
        breaker = CircuitBreaker(self.policy(trip_after=1))
        assert breaker.record_failure("bad", now=0.0)
        assert breaker.allow("good", now=1.0)
        assert not breaker.allow("bad", now=1.0)

    def test_disabled_breaker_never_trips(self):
        breaker = CircuitBreaker(self.policy(trip_after=0))
        for t in range(20):
            assert not breaker.record_failure("w", now=float(t))
        assert breaker.allow("w", now=100.0)


# ----------------------------------------------------------------------
# the run journal
# ----------------------------------------------------------------------
class TestRunJournal:
    def test_roundtrip_and_completion_tracking(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            batch = journal.begin_batch(["aa", "bb", "cc"])
            journal.record_issued(batch, "aa")
            journal.record_done(batch, "aa")
            assert journal.completed_digests() == {"aa"}
            assert journal.open_batches() == {batch: {"bb", "cc"}}
            journal.record_done(batch, "bb")
            journal.record_done(batch, "cc")
            journal.end_batch(batch)
            assert journal.open_batches() == {}

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            batch = journal.begin_batch(["aa"])
            journal.record_done(batch, "aa")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"ev": "done", "batch": "' + batch + '", "dig')  # kill -9
        records = RunJournal.replay(path)
        assert [r["ev"] for r in records] == ["begin", "done"]

    def test_torn_middle_line_is_corruption(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"ev": "begin", "batch": "x", "digests": []}\ngarb\n{"ev": "end", "batch": "x"}\n')
        with pytest.raises(ValueError, match="corrupt"):
            RunJournal.replay(path)

    def test_survives_reopen(self, tmp_path):
        """The restart path: a new journal over the same file sees the
        old bookkeeping and appends to it."""
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            batch = journal.begin_batch(["aa", "bb"], batch_id="b1")
            journal.record_done(batch, "aa")
        with RunJournal(path) as journal:  # the restarted coordinator
            assert journal.completed_digests() == {"aa"}
            assert journal.open_batches() == {"b1": {"bb"}}
            journal.record_done("b1", "bb")
            journal.end_batch("b1")
            assert journal.open_batches() == {}


# ----------------------------------------------------------------------
# cache hardening (quarantine, checksums, chaos hook)
# ----------------------------------------------------------------------
class TestCacheHardening:
    def _store_one(self, tmp_path, payload=1):
        cache = ResultCache(tmp_path / "cache")
        spec = ChaosSpec(payload=payload, salt=99)
        cache.put(spec, chaos_task(spec))
        return cache, spec

    def test_corrupt_meta_is_a_quarantined_miss(self, tmp_path):
        cache, spec = self._store_one(tmp_path)
        entry = cache._entry_dir(spec.digest())
        (entry / "meta.json").write_text("{not json")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(spec) is None
        assert cache.quarantined == 1
        assert (cache.root / QUARANTINE_DIR).exists()
        assert len(cache) == 0  # quarantine area is not an entry

    def test_truncated_payload_is_a_quarantined_miss(self, tmp_path):
        cache, spec = self._store_one(tmp_path)
        entry = cache._entry_dir(spec.digest())
        payload = (entry / "outcome.pkl").read_bytes()
        (entry / "outcome.pkl").write_bytes(payload[: len(payload) // 2])
        with pytest.warns(RuntimeWarning, match="checksum|unpicklable"):
            assert cache.get(spec) is None
        # The miss costs one re-simulation, never a crash.
        cache.put(spec, chaos_task(spec))
        again = cache.get(spec)
        assert again is not None and again.from_cache

    def test_bitrot_is_caught_by_checksum(self, tmp_path):
        cache, spec = self._store_one(tmp_path)
        entry = cache._entry_dir(spec.digest())
        data = bytearray((entry / "outcome.pkl").read_bytes())
        data[len(data) // 2] ^= 0xFF
        (entry / "outcome.pkl").write_bytes(bytes(data))
        with pytest.warns(RuntimeWarning, match="checksum"):
            assert cache.get(spec) is None

    def test_corrupt_cache_entry_fault_is_contained(self, tmp_path):
        """The chaos hook corrupts a stored entry; the next read must
        quarantine it and report a miss (the executor then re-runs)."""
        plan = FaultPlan(
            seed=0,
            actions=(FaultAction(kind="corrupt_cache_entry", site="cache.put", nth=1),),
        )
        cache = ResultCache(tmp_path / "cache", injector=plan.injector())
        spec = ChaosSpec(payload=5, salt=1)
        cache.put(spec, chaos_task(spec))  # fault fires here
        with pytest.warns(RuntimeWarning):
            assert cache.get(spec) is None
        cache.put(spec, chaos_task(spec))  # fault consumed: clean store
        fresh = cache.get(spec)
        assert fresh is not None
        assert result_signature(fresh) == result_signature(chaos_task(spec))


# ----------------------------------------------------------------------
# coordinator shutdown hygiene
# ----------------------------------------------------------------------
def _open_fds():
    return set(os.listdir("/proc/self/fd"))


class TestCoordinatorClose:
    def test_close_is_idempotent(self):
        coordinator = Coordinator()
        coordinator.close()
        coordinator.close()  # must not raise

    @pytest.mark.skipif(
        not os.path.isdir("/proc/self/fd"), reason="needs procfs"
    )
    def test_no_leaked_fds_or_connections(self):
        baseline = _open_fds()
        coordinator = Coordinator()
        socks = []
        try:
            for n in range(2):
                sock = socket.create_connection(coordinator.address, timeout=5.0)
                proto.send_msg(sock, proto.hello(f"fd-test-{n}"))
                reply = proto.recv_msg(sock)
                assert reply is not None and reply["type"] == "welcome"
                socks.append(sock)
            deadline = time.monotonic() + 5.0
            while coordinator.connected_workers() < 2:
                assert time.monotonic() < deadline, "handshakes never registered"
                time.sleep(0.01)
            coordinator.close()
            # Every connection torn down and reaped...
            assert coordinator.connected_workers() == 0
            # ...and workers see EOF, not a hang.
            for sock in socks:
                sock.settimeout(5.0)
                assert proto.recv_msg(sock) is None
        finally:
            for sock in socks:
                sock.close()
            coordinator.close()
        assert _open_fds() <= baseline, "coordinator leaked file descriptors"


# ----------------------------------------------------------------------
# graceful degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def test_falls_back_below_healthy_worker_floor(self, tmp_path):
        """A bare cluster with no workers ever connecting must not
        stall: below the floor it degrades to the process backend and
        still returns serial-identical results."""
        specs = [ChaosSpec(payload=i, salt=7) for i in range(4)]
        with SerialExecutor(task=chaos_task) as serial:
            reference = [result_signature(r) for r in serial.run(specs)]
        options = ClusterOptions(
            workers=2,
            lease_s=1.0,
            health=HealthPolicy(min_healthy_workers=1, degrade_after_s=0.2),
            journal_path=str(tmp_path / "journal.jsonl"),
        )
        executor = ClusterExecutor(options=options, task=chaos_task)
        try:
            results = executor.run(specs)
        finally:
            executor.close()
        assert executor.degraded
        assert [result_signature(r) for r in results] == reference
        # Degraded completions are journaled like any others.
        assert RunJournal(options.journal_path).open_batches() == {}


# ----------------------------------------------------------------------
# execution defaults / CLI plumbing
# ----------------------------------------------------------------------
class TestResilienceDefaults:
    def test_scoped_defaults_roundtrip(self):
        before = get_execution_defaults()
        plan = FaultPlan.generate(1)
        with execution(retries=2, min_healthy_workers=1, fault_plan=plan) as active:
            assert active["retries"] == 2
            assert active["min_healthy_workers"] == 1
            assert active["fault_plan"] is plan
        assert get_execution_defaults() == before

    def test_retries_map_to_process_backend(self):
        from repro.exec.executors import default_executor

        with execution(backend="process", workers=2, retries=4):
            with default_executor(task=chaos_task) as ex:
                assert ex.retries == 4

    def test_resilience_kwargs_filtered_per_backend(self):
        from repro.exec.executors import _resilience_kwargs

        with execution(retries=2, min_healthy_workers=1):
            assert _resilience_kwargs("serial") == {}
            assert _resilience_kwargs("process") == {"retries": 2}
            cluster = _resilience_kwargs("cluster")
            assert cluster["max_attempts"] == 3  # N retries = N + 1 attempts
            assert cluster["retry"].max_attempts == 3
            assert cluster["health"].min_healthy_workers == 1

    def test_cli_parses_resilience_flags(self, tmp_path):
        from repro.cli import _load_fault_plan, build_parser

        parser = build_parser()
        args = parser.parse_args(
            [
                "run",
                "fig7",
                "--retries",
                "2",
                "--min-healthy-workers",
                "1",
                "--fault-plan",
                FaultPlan.generate(3).to_json(),
            ]
        )
        assert args.retries == 2
        assert args.min_healthy_workers == 1
        assert _load_fault_plan(args.fault_plan) == FaultPlan.generate(3)
        # ...and from a file path, as repro-worker accepts.
        path = tmp_path / "plan.json"
        path.write_text(FaultPlan.generate(4).to_json())
        assert _load_fault_plan(str(path)) == FaultPlan.generate(4)


# ----------------------------------------------------------------------
# protocol-level fault hooks
# ----------------------------------------------------------------------
class TestFrameFaults:
    def test_drop_frame_sends_nothing(self):
        a, b = socket.socketpair()
        try:
            proto.send_msg(a, {"type": "x"}, fault="drop_frame")
            a.close()
            b.settimeout(5.0)
            assert proto.recv_msg(b) is None  # clean EOF, nothing arrived
        finally:
            b.close()

    def test_truncate_frame_is_a_detectable_tear(self):
        a, b = socket.socketpair()
        try:
            proto.send_msg(a, {"type": "x", "pad": "y" * 256}, fault="truncate_frame")
            a.close()
            b.settimeout(5.0)
            with pytest.raises(proto.ProtocolError):
                proto.recv_msg(b)
        finally:
            b.close()


# ----------------------------------------------------------------------
# the chaos invariant (end to end)
# ----------------------------------------------------------------------
class TestChaosWorkload:
    def test_chaos_task_is_pure(self):
        spec = ChaosSpec(payload=3, salt=11)
        assert result_signature(chaos_task(spec)) == result_signature(chaos_task(spec))
        assert spec.digest() == ChaosSpec(payload=3, salt=11).digest()
        assert spec.digest() != ChaosSpec(payload=4, salt=11).digest()


class TestChaosInvariant:
    """The acceptance gate: under any FaultPlan, bit-identical to
    serial or a clean attributed failure — never a hang (the CI chaos
    job wraps this module in a hard timeout), never silent loss."""

    @pytest.mark.parametrize("workers", CHAOS_WORKERS)
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_seeded_matrix(self, seed, workers):
        report = run_chaos(seed=seed, workers=workers, n_specs=5, lease_s=0.4)
        assert report.invariant_holds, (
            f"chaos invariant violated for seed={seed} workers={workers} "
            f"plan={report.plan_digest[:12]} kinds={report.kinds}: "
            f"{report.summary()}"
        )
        if report.clean_failure is not None:
            # The failure arm must be attributed, not a bare crash.
            assert report.clean_failure.strip()

    def test_coordinator_restart_recovers_from_journal(self):
        """Kill the run loop mid-batch; the restarted run must finish
        from the journal + cache and re-run only unfinished specs."""
        plan = FaultPlan(
            seed=0,
            actions=(
                FaultAction(kind="coordinator_restart", site="coordinator.loop", nth=4),
            ),
        )
        report = run_chaos(seed=0, workers=2, n_specs=6, lease_s=0.5, plan=plan)
        assert report.restarts == 1
        assert report.identical, report.summary()
        assert report.journal_outstanding == 0  # nothing left dangling
        assert ("coordinator.loop", 4, "coordinator_restart") in report.fired

    def test_restart_plus_worker_faults(self):
        """The compound case: worker faults *and* a coordinator restart
        in one plan."""
        report = run_chaos(
            seed=2, workers=2, n_specs=5, lease_s=0.5, include_restart=True
        )
        assert report.invariant_holds, report.summary()
        assert report.restarts >= 1
