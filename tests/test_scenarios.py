"""Tests for the declarative scenario layer.

* schema validation (cross-references, exclusivity rules, coercion),
* strict JSON loading with nearest-key hints and round-trip fidelity,
* the compiler: factor expansion, common random numbers, degenerate
  lowering with digest equality against direct configuration,
* end-to-end runs: per-(fleet, pool) ``group_metrics``, bit-identity
  between serial and process executors,
* per-group attribution over a scenario factor sweep,
* the curated library and the ``repro scenario`` CLI.
"""

import json

import pytest

from repro.exec import (
    ParallelExecutor,
    RunSpec,
    SerialExecutor,
    execute_specs,
    run_spec,
    spec_digest,
)
from repro.scenarios import (
    AntagonistSpec,
    ClientFleetSpec,
    ScenarioFactor,
    ScenarioSpec,
    ServerPoolSpec,
    apply_factor_levels,
    compile_scenario,
    expand_scenario,
    is_degenerate,
    list_scenarios,
    load_scenario,
    lower_degenerate,
    scenario_from_json,
    scenario_to_json,
    scenario_to_jsonable,
)
from repro.workloads.memcached import MemcachedWorkload

MEMCACHED = {"workload": "memcached"}


def tiny_pool(name="pool", **kw):
    return ServerPoolSpec(name=name, workload=MEMCACHED, **kw)


def tiny_fleet(name="fleet", target="pool", **kw):
    kw.setdefault("target_utilization", 0.4)
    kw.setdefault("instances", 1)
    kw.setdefault("connections_per_instance", 4)
    kw.setdefault("warmup_samples", 50)
    kw.setdefault("measurement_samples_per_instance", 200)
    return ClientFleetSpec(name=name, target=target, **kw)


def tiny_scenario(**kw):
    kw.setdefault("name", "tiny")
    kw.setdefault("pools", (tiny_pool(),))
    kw.setdefault("fleets", (tiny_fleet(),))
    kw.setdefault("seed", 3)
    return ScenarioSpec(**kw)


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------
class TestSchema:
    def test_fleet_requires_exactly_one_load_spelling(self):
        with pytest.raises(ValueError, match="exactly one"):
            ClientFleetSpec(name="f", target="p")
        with pytest.raises(ValueError, match="exactly one"):
            ClientFleetSpec(
                name="f", target="p", rate_rps=1000.0, target_utilization=0.5
            )

    def test_fleet_arrival_must_not_carry_rate(self):
        with pytest.raises(ValueError, match="rate_rps"):
            tiny_fleet(arrival={"type": "poisson", "rate_rps": 500.0})

    def test_fleet_target_must_exist(self):
        with pytest.raises(ValueError, match="unknown pool"):
            tiny_scenario(fleets=(tiny_fleet(target="nowhere"),))

    def test_duplicate_pool_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate pool"):
            tiny_scenario(pools=(tiny_pool("p"), tiny_pool("p")))

    def test_fleet_and_pool_names_must_not_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            tiny_scenario(
                pools=(tiny_pool("shared"),),
                fleets=(tiny_fleet("shared", target="shared"),),
            )

    def test_antagonist_server_index_bounds_checked(self):
        with pytest.raises(ValueError, match="out of range"):
            tiny_scenario(
                antagonists=(AntagonistSpec(name="a", pool="pool", server=1),)
            )

    def test_antagonist_pool_must_exist(self):
        with pytest.raises(ValueError, match="unknown pool"):
            tiny_scenario(antagonists=(AntagonistSpec(name="a", pool="ghost"),))

    def test_factor_path_vocabulary_enforced(self):
        with pytest.raises(ValueError, match="pools/fleets/antagonists/spine"):
            ScenarioFactor(name="f", path="cpus.fast", low=0, high=1)
        with pytest.raises(ValueError, match="<field"):
            ScenarioFactor(name="f", path="pools.cache", low=0, high=1)
        # these shapes are valid
        ScenarioFactor(name="f", path="pools.cache.count", low=1, high=2)
        ScenarioFactor(name="s", path="spine.latency_us", low=1.0, high=5.0)

    def test_schema_version_checked(self):
        with pytest.raises(ValueError, match="schema"):
            tiny_scenario(schema=99)

    def test_numeric_coercion_makes_json_ints_digest_like_floats(self):
        a = tiny_scenario(fleets=(tiny_fleet(rate_rps=80000, target_utilization=None),))
        b = tiny_scenario(
            fleets=(tiny_fleet(rate_rps=80000.0, target_utilization=None),)
        )
        assert spec_digest(a) == spec_digest(b)

    def test_groups_enumerates_fleet_pool_pairs(self):
        spec = tiny_scenario(
            pools=(tiny_pool("pa"), tiny_pool("pb")),
            fleets=(tiny_fleet("fa", target="pa"), tiny_fleet("fb", target="pb")),
        )
        assert spec.groups == (("fa", "pa"), ("fb", "pb"))
        assert spec.pool("pb").name == "pb"
        assert spec.fleet("fa").target == "pa"
        with pytest.raises(KeyError):
            spec.pool("nope")


# ----------------------------------------------------------------------
# strict JSON loading
# ----------------------------------------------------------------------
def minimal_doc(**overrides):
    doc = {
        "name": "doc",
        "pools": [{"name": "pool", "workload": {"workload": "memcached"}}],
        "fleets": [
            {
                "name": "fleet",
                "target": "pool",
                "instances": 1,
                "target_utilization": 0.4,
                "warmup_samples": 50,
                "measurement_samples_per_instance": 200,
            }
        ],
    }
    doc.update(overrides)
    return doc


class TestStrictLoading:
    def test_unknown_top_level_key_names_nearest_valid_key(self):
        with pytest.raises(ValueError) as exc:
            scenario_from_json(minimal_doc(replication=3))
        msg = str(exc.value)
        assert "replication" in msg
        assert "did you mean 'replications'" in msg

    def test_unknown_fleet_key_rejected_with_hint(self):
        doc = minimal_doc()
        doc["fleets"][0]["intances"] = 4
        with pytest.raises(ValueError) as exc:
            scenario_from_json(doc)
        assert "did you mean 'instances'" in str(exc.value)

    def test_unknown_pool_key_rejected(self):
        doc = minimal_doc()
        doc["pools"][0]["racks"] = "rack9"
        with pytest.raises(ValueError, match="did you mean 'rack'"):
            scenario_from_json(doc)

    def test_nested_workload_dict_validated_at_load_time(self):
        doc = minimal_doc()
        doc["pools"][0]["workload"] = {"workload": "memcached", "sharding": 4}
        with pytest.raises(ValueError, match="sharding"):
            scenario_from_json(doc)

    def test_unknown_spine_key_rejected(self):
        with pytest.raises(ValueError, match="spine"):
            scenario_from_json(minimal_doc(spine={"warp": 9}))

    def test_bad_factor_level_caught_at_load_time(self):
        # the loader pre-substitutes both factor corners, so a level the
        # schema rejects fails at load, not mid-sweep
        doc = minimal_doc(
            factors=[
                {
                    "name": "bad",
                    "path": "fleets.fleet.instances",
                    "low": 1,
                    "high": 0,
                }
            ]
        )
        with pytest.raises(ValueError, match="instances"):
            scenario_from_json(doc)

    def test_loads_from_json_string_and_file(self, tmp_path):
        text = json.dumps(minimal_doc())
        from_string = scenario_from_json(text)
        path = tmp_path / "scen.json"
        path.write_text(text)
        from_file = scenario_from_json(path)
        assert from_string == from_file
        assert from_string.name == "doc"


# ----------------------------------------------------------------------
# JSON round-trip (config digest fidelity)
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(list_scenarios()))
    def test_library_scenario_round_trips_bit_exact(self, name):
        spec = load_scenario(name)
        clone = scenario_from_json(scenario_to_jsonable(spec))
        assert clone == spec
        assert spec_digest(clone) == spec_digest(spec)

    @pytest.mark.parametrize("name", sorted(list_scenarios()))
    def test_compiled_digests_survive_the_round_trip(self, name):
        spec = load_scenario(name)
        clone = scenario_from_json(scenario_to_json(spec))
        assert [s.digest() for s in compile_scenario(clone)] == [
            s.digest() for s in compile_scenario(spec)
        ]

    def test_defaults_are_omitted_from_the_document(self):
        doc = scenario_to_jsonable(tiny_scenario())
        assert "antagonists" not in doc  # empty default
        assert "combine" not in doc  # default "mean"
        assert doc["schema"] == 1  # version always pinned


# ----------------------------------------------------------------------
# the compiler
# ----------------------------------------------------------------------
class TestCompiler:
    def test_factorial_times_replications(self):
        spec = load_scenario("colocated_antagonist")
        assert len(spec.factors) == 1 and spec.replications == 1
        assert len(compile_scenario(spec)) == 2

        three_reps = scenario_from_json(
            {**scenario_to_jsonable(spec), "replications": 3}
        )
        expanded = expand_scenario(three_reps)
        assert len(expanded) == 6
        # common random numbers: replication r shares run_index=r
        # across both factor configurations
        assert [(coded, r) for coded, r, _ in expanded] == [
            ((0,), 0), ((0,), 1), ((0,), 2), ((1,), 0), ((1,), 1), ((1,), 2),
        ]

    def test_factor_substitution_reaches_the_named_element(self):
        spec = load_scenario("colocated_antagonist")
        low = apply_factor_levels(spec, (0,))
        high = apply_factor_levels(spec, (1,))
        assert low.antagonists[0].rate_rps == 0.0
        assert high.antagonists[0].rate_rps == 2500.0
        assert not low.factors  # resolved variants carry no factors

    def test_non_degenerate_specs_carry_the_scenario(self):
        spec = load_scenario("colocated_antagonist")
        for compiled in compile_scenario(spec):
            assert compiled.scenario is not None
            assert compiled.tag.startswith("colocated_antagonist")
            assert compiled.total_rate_rps is None
            assert compiled.target_utilization is None

    def test_scenario_spec_rejects_direct_load_fields(self):
        scenario = tiny_scenario()
        with pytest.raises(ValueError, match="per-fleet loads"):
            RunSpec(
                workload=MemcachedWorkload(),
                target_utilization=0.5,
                scenario=scenario,
            )

    def test_degeneracy_detection(self):
        assert is_degenerate(tiny_scenario())
        assert not is_degenerate(tiny_scenario(pools=(tiny_pool(count=2),)))
        assert not is_degenerate(
            tiny_scenario(antagonists=(AntagonistSpec(name="a", pool="pool"),))
        )
        assert not is_degenerate(tiny_scenario(fleets=(tiny_fleet(start_us=5.0),)))
        assert not is_degenerate(tiny_scenario(fleets=(tiny_fleet(rack="rack7"),)))

    def test_degenerate_lowering_matches_direct_configuration(self):
        scenario = tiny_scenario(
            fleets=(
                tiny_fleet(
                    instances=2,
                    connections_per_instance=8,
                    target_utilization=0.6,
                    warmup_samples=100,
                    measurement_samples_per_instance=400,
                ),
            ),
            keep_raw=True,
            seed=11,
        )
        direct = RunSpec(
            workload=MemcachedWorkload(),
            target_utilization=0.6,
            num_instances=2,
            connections_per_instance=8,
            warmup_samples=100,
            measurement_samples_per_instance=400,
            keep_raw=True,
            seed=11,
        )
        (lowered,) = compile_scenario(scenario)
        assert lowered.scenario is None
        assert lowered.digest() == direct.digest()

    def test_lower_degenerate_refuses_multi_pool(self):
        spec = load_scenario("mcrouter_fanout")
        with pytest.raises(ValueError, match="not degenerate"):
            lower_degenerate(spec)


# ----------------------------------------------------------------------
# end-to-end: multi-pool runs and executor identity
# ----------------------------------------------------------------------
def two_pool_scenario(keep_raw=False):
    return ScenarioSpec(
        name="twopool",
        pools=(tiny_pool("pa"), tiny_pool("pb")),
        fleets=(
            tiny_fleet("fa", target="pa"),
            tiny_fleet("fb", target="pb"),
        ),
        keep_raw=keep_raw,
        seed=5,
    )


class TestScenarioRuns:
    def test_multi_pool_run_reports_per_group_metrics(self):
        (spec,) = compile_scenario(two_pool_scenario())
        assert spec.scenario is not None
        result = run_spec(spec)
        assert set(result.group_metrics) == {("fa", "pa"), ("fb", "pb")}
        for group, metrics in result.group_metrics.items():
            assert set(metrics) == {0.5, 0.95, 0.99}
            assert all(v > 0 for v in metrics.values())
        # reports carry the fleet/pool labels the grouping derives from
        assert {r.group for r in result.reports} == set(result.group_metrics)
        assert 0.0 < result.server_utilization < 1.0
        assert result.spec_digest == spec.digest()

    def test_scenario_run_is_deterministic(self):
        (spec,) = compile_scenario(two_pool_scenario(keep_raw=True))
        a, b = run_spec(spec), run_spec(spec)
        assert a.metrics == b.metrics
        assert a.group_metrics == b.group_metrics
        assert (a.raw_samples() == b.raw_samples()).all()

    def test_serial_and_process_executors_agree_bit_for_bit(self):
        specs = compile_scenario(two_pool_scenario(keep_raw=True))
        serial = execute_specs(specs, SerialExecutor())
        with ParallelExecutor(max_workers=2) as pool:
            parallel = execute_specs(specs, pool)
        for s, p in zip(serial, parallel):
            assert s.metrics == p.metrics
            assert s.group_metrics == p.group_metrics
            assert (s.raw_samples() == p.raw_samples()).all()

    def test_antagonist_inflates_the_colocated_groups_tail(self):
        base = load_scenario("colocated_antagonist")
        doc = scenario_to_jsonable(base)
        for fleet in doc["fleets"]:
            fleet["measurement_samples_per_instance"] = 300
        spec = scenario_from_json(doc)
        quiet, noisy = (
            run_spec(compiled) for compiled in compile_scenario(spec)
        )
        group = ("front", "cache")
        assert noisy.group_metrics[group][0.99] > quiet.group_metrics[group][0.99]


# ----------------------------------------------------------------------
# per-(fleet, pool) attribution
# ----------------------------------------------------------------------
class TestScenarioAttribution:
    def test_per_group_reports_over_a_factor_sweep(self):
        from repro.core.attribution import AttributionReport
        from repro.scenarios import ScenarioAttributionStudy

        base = load_scenario("colocated_antagonist")
        doc = scenario_to_jsonable(base)
        for fleet in doc["fleets"]:
            fleet["measurement_samples_per_instance"] = 300
            fleet["warmup_samples"] = 50
        scenario = scenario_from_json(doc)
        study = ScenarioAttributionStudy(
            scenario,
            taus=(0.9,),
            samples_per_experiment=500,
            n_boot=16,
        )
        # keep_raw is forced on: the fits need raw latencies
        assert study.scenario.keep_raw

        by_group = study.run_experiments()
        assert set(by_group) == {("front", "cache")}
        assert [e.coded for e in by_group[("front", "cache")]] == [(0,), (1,)]

        reports = study.analyze(by_group)
        report = reports[("front", "cache")]
        assert isinstance(report, AttributionReport)
        assert report.names == ["antagonist"]
        assert report.taus == (0.9,)
        # the antagonist's main effect on its own group is positive
        assert report.fits[0.9].coef("antagonist") > 0

    def test_factorless_scenario_rejected(self):
        from repro.scenarios import ScenarioAttributionStudy

        with pytest.raises(ValueError, match="no factors"):
            ScenarioAttributionStudy(tiny_scenario())


# ----------------------------------------------------------------------
# the curated library
# ----------------------------------------------------------------------
class TestLibrary:
    EXPECTED = {
        "colocated_antagonist",
        "cross_rack_shift",
        "diurnal_flash_crowd",
        "heterogeneous_pool",
        "mcrouter_fanout",
    }

    def test_expected_scenarios_present(self):
        assert self.EXPECTED <= set(list_scenarios())

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_every_scenario_loads_validates_and_compiles(self, name):
        spec = load_scenario(name)
        assert spec.name == name
        assert spec.description
        specs = compile_scenario(spec)
        assert specs
        assert len({s.digest() for s in specs}) == len(specs)

    def test_unknown_name_lists_the_library(self):
        with pytest.raises(KeyError, match="colocated_antagonist"):
            load_scenario("does_not_exist")

    def test_multi_pool_scenarios_really_are_multi_pool(self):
        fanout = load_scenario("mcrouter_fanout")
        assert len(fanout.pools) == 2
        assert sum(p.count for p in fanout.pools) == 17
        hetero = load_scenario("heterogeneous_pool")
        hw = {p.name: p.hardware for p in hetero.pools}
        assert hw["fastpool"] != hw["slowpool"]


# ----------------------------------------------------------------------
# the CLI surface
# ----------------------------------------------------------------------
class TestScenarioCli:
    def test_list_prints_the_library(self, capsys):
        from repro.cli import main

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in TestLibrary.EXPECTED:
            assert name in out

    def test_validate_whole_library(self, capsys):
        from repro.cli import main

        assert main(["scenario", "validate"]) == 0
        assert "INVALID" not in capsys.readouterr().out

    def test_validate_flags_a_broken_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(minimal_doc(replication=2)))
        assert main(["scenario", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_run_executes_a_scenario_file(self, tmp_path, capsys):
        from repro.cli import main

        doc = {
            "name": "cli_smoke",
            "pools": [
                {"name": "pa", "workload": MEMCACHED},
                {"name": "pb", "workload": MEMCACHED},
            ],
            "fleets": [
                {
                    "name": "fa",
                    "target": "pa",
                    "instances": 1,
                    "connections_per_instance": 4,
                    "target_utilization": 0.4,
                    "warmup_samples": 50,
                    "measurement_samples_per_instance": 200,
                },
                {
                    "name": "fb",
                    "target": "pb",
                    "instances": 1,
                    "connections_per_instance": 4,
                    "target_utilization": 0.4,
                    "warmup_samples": 50,
                    "measurement_samples_per_instance": 200,
                },
            ],
        }
        path = tmp_path / "cli_smoke.json"
        path.write_text(json.dumps(doc))
        assert main(["scenario", "run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cli_smoke" in out
        assert "(fa, pa):" in out and "(fb, pb):" in out
