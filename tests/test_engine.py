"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import Simulator, SimulationError


class TestScheduling:
    def test_schedule_runs_callback_at_right_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        seen = []
        for t in (30.0, 10.0, 20.0):
            sim.at(t, seen.append, t)
        sim.run()
        assert seen == [10.0, 20.0, 30.0]

    def test_same_timestamp_fifo_order(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.at(7.0, seen.append, i)
        sim.run()
        assert seen == list(range(10))

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_into_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda: None)

    def test_zero_delay_runs_at_current_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.0, lambda: sim.schedule(0.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [3.0]

    def test_events_scheduled_during_execution_run(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 5:
                sim.schedule(1.0, chain, depth + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert seen == [0, 1, 2, 3, 4, 5]
        assert sim.now == 6.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        ev = sim.schedule(5.0, seen.append, 1)
        ev.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        ev = sim.schedule(5.0, lambda: None)
        ev.cancel()
        ev.cancel()
        sim.run()

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        ev1 = sim.schedule(5.0, lambda: None)
        sim.schedule(6.0, lambda: None)
        ev1.cancel()
        assert sim.pending == 1

    def test_drain_cancels_batch(self):
        sim = Simulator()
        seen = []
        events = [sim.schedule(float(i + 1), seen.append, i) for i in range(5)]
        sim.drain(events[:3])
        sim.run()
        assert seen == [3, 4]


class TestRunControl:
    def test_run_until_advances_clock_exactly(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run_until(12.5)
        assert sim.now == 12.5

    def test_run_until_does_not_run_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, seen.append, "early")
        sim.schedule(20.0, seen.append, "late")
        sim.run_until(10.0)
        assert seen == ["early"]
        sim.run()
        assert seen == ["early", "late"]

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_run_until_boundary_event_included(self):
        sim = Simulator()
        seen = []
        sim.schedule(10.0, seen.append, 1)
        sim.run_until(10.0)
        assert seen == [1]

    def test_stop_halts_run(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(2.0, sim.stop)
        sim.schedule(3.0, seen.append, 3)
        sim.run()
        assert seen == [1]
        sim.run()
        assert seen == [1, 3]

    def test_max_events_limit(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.schedule(float(i + 1), seen.append, i)
        sim.run(max_events=4)
        assert seen == [0, 1, 2, 3]

    def test_step_returns_false_when_drained(self):
        sim = Simulator()
        assert sim.step() is False

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.peek() == 2.0

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 7


class TestProcesses:
    def test_process_advances_with_yields(self):
        sim = Simulator()
        seen = []

        def proc():
            seen.append(sim.now)
            yield 10.0
            seen.append(sim.now)
            yield 5.0
            seen.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert seen == [0.0, 10.0, 15.0]

    def test_process_yield_none_resumes_same_time(self):
        sim = Simulator()
        seen = []

        def proc():
            yield 5.0
            seen.append(sim.now)
            yield None
            seen.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert seen == [5.0, 5.0]

    def test_process_kill_stops_it(self):
        sim = Simulator()
        seen = []

        def proc():
            while True:
                yield 1.0
                seen.append(sim.now)

        p = sim.spawn(proc())
        sim.run(max_events=3)
        p.kill()
        sim.run()
        assert len(seen) == 3
        assert not p.alive

    def test_process_negative_yield_rejected(self):
        sim = Simulator()

        def proc():
            yield -1.0

        with pytest.raises(SimulationError):
            sim.spawn(proc())

    def test_process_completion_marks_dead(self):
        sim = Simulator()

        def proc():
            yield 1.0

        p = sim.spawn(proc())
        sim.run()
        assert not p.alive


class TestDeterminism:
    def test_identical_schedules_produce_identical_traces(self):
        def build_and_run():
            sim = Simulator()
            trace = []

            def tick(i):
                trace.append((sim.now, i))
                if i < 50:
                    sim.schedule(1.5, tick, i + 1)

            for j in range(5):
                sim.schedule(float(j), tick, 0)
            sim.run()
            return trace

        assert build_and_run() == build_and_run()


class TestEventPooling:
    """Fired events are recycled only when the kernel holds the sole
    remaining reference; anything a caller can still touch is left
    alone."""

    def test_fired_events_are_recycled(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert len(sim._pool) > 0
        before = len(sim._pool)
        sim.schedule(1.0, lambda: None)
        assert len(sim._pool) == before - 1  # reused, not newly allocated

    def test_held_event_is_not_recycled(self):
        sim = Simulator()
        held = sim.schedule(1.0, lambda: None)
        sim.run()
        assert held not in sim._pool
        # The held handle still reflects the fired state (late cancel
        # must be a no-op, not a tombstone on a recycled object).
        assert held.cancelled

    def test_late_cancel_after_fire_is_safe(self):
        sim = Simulator()
        seen = []
        held = sim.schedule(1.0, seen.append, 1)
        sim.run()
        held.cancel()  # fired already; must not corrupt pending
        assert sim.pending == 0
        ev = sim.schedule(2.0, seen.append, 2)
        ev.cancel()
        sim.run()
        assert seen == [1]
        assert sim.pending == 0

    def test_cancelled_event_not_recycled_while_held(self):
        sim = Simulator()
        held = sim.schedule(5.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        held.cancel()
        sim.run()
        # The tombstone was popped but the object is still ours.
        assert held not in sim._pool
        assert held.cancelled

    def test_pool_reuse_preserves_results(self):
        sim = Simulator()
        seen = []

        def chain(i):
            if i < 200:
                sim.schedule(0.5, chain, i + 1)
            seen.append(i)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert seen == list(range(201))

    def test_pending_consistent_under_cancel_churn(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
        for ev in events[::2]:
            ev.cancel()
        assert sim.pending == 50
        sim.run_until(50.0)
        assert sim.pending == 50 - sum(1 for e in events[1::2] if e.time <= 50.0)
        sim.run()
        assert sim.pending == 0
