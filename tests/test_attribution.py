"""Tests for the attribution pipeline (factorial sweep + QR)."""

import dataclasses

import numpy as np
import pytest

from repro.core.attribution import (
    TREADMILL_FACTORS,
    AttributionConfig,
    AttributionStudy,
    apply_factors,
)
from repro.sim.cpu import GOVERNOR_ONDEMAND, GOVERNOR_PERFORMANCE
from repro.sim.machine import HardwareSpec
from repro.sim.memory import POLICY_INTERLEAVE, POLICY_SAME_NODE
from repro.sim.nic import AFFINITY_ALL_NODES, AFFINITY_SAME_NODE
from repro.workloads.memcached import MemcachedWorkload


class TestApplyFactors:
    def test_all_low_is_paper_baseline(self):
        hw = apply_factors(HardwareSpec(), (0, 0, 0, 0))
        assert hw.numa.policy == POLICY_SAME_NODE
        assert not hw.cpu.turbo_enabled
        assert hw.cpu.governor == GOVERNOR_ONDEMAND
        assert hw.nic.affinity == AFFINITY_SAME_NODE

    def test_all_high(self):
        hw = apply_factors(HardwareSpec(), (1, 1, 1, 1))
        assert hw.numa.policy == POLICY_INTERLEAVE
        assert hw.cpu.turbo_enabled
        assert hw.cpu.governor == GOVERNOR_PERFORMANCE
        assert hw.nic.affinity == AFFINITY_ALL_NODES

    def test_base_not_mutated(self):
        base = HardwareSpec()
        apply_factors(base, (1, 1, 1, 1))
        assert base.numa.policy == POLICY_SAME_NODE
        assert not base.cpu.turbo_enabled

    def test_other_fields_preserved(self):
        base = dataclasses.replace(HardwareSpec(), boot_quality_sigma=0.123)
        hw = apply_factors(base, (1, 0, 1, 0))
        assert hw.boot_quality_sigma == 0.123

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            apply_factors(HardwareSpec(), (0, 1))

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            apply_factors(HardwareSpec(), (0, 1, 2, 0))

    def test_factor_table_matches_paper(self):
        names = [f.name for f in TREADMILL_FACTORS]
        assert names == ["numa", "turbo", "dvfs", "nic"]
        levels = {f.name: (f.low, f.high) for f in TREADMILL_FACTORS}
        assert levels["numa"] == (POLICY_SAME_NODE, POLICY_INTERLEAVE)
        assert levels["dvfs"] == (GOVERNOR_ONDEMAND, GOVERNOR_PERFORMANCE)


@pytest.fixture(scope="module")
def small_study_report():
    """A tiny but real factorial study shared by the assertions below."""
    config = AttributionConfig(
        workload=MemcachedWorkload(),
        target_utilization=0.6,
        replications=2,
        num_instances=2,
        measurement_samples_per_instance=700,
        warmup_samples=150,
        n_boot=25,
        taus=(0.5, 0.99),
        seed=13,
    )
    return AttributionStudy(config).analyze()


class TestStudy:
    def test_experiment_count(self, small_study_report):
        assert len(small_study_report.experiments) == 16 * 2

    def test_all_configs_covered(self, small_study_report):
        seen = {tuple(e.coded) for e in small_study_report.experiments}
        assert len(seen) == 16

    def test_fits_present_for_all_taus(self, small_study_report):
        assert set(small_study_report.fits) == {0.5, 0.99}
        assert set(small_study_report.pseudo_r2) == {0.5, 0.99}

    def test_inference_columns_filled(self, small_study_report):
        fit = small_study_report.fits[0.99]
        assert fit.stderr is not None
        assert fit.p_values is not None
        assert len(fit.columns) == 16

    def test_estimated_latency_is_coefficient_sum(self, small_study_report):
        """The paper's Table IV walk-through: a config's estimate is
        the intercept plus its qualified coefficients."""
        report = small_study_report
        fit = report.fits[0.5]
        coded = (1, 1, 0, 0)
        manual = (
            fit.coef("(Intercept)")
            + fit.coef("numa")
            + fit.coef("turbo")
            + fit.coef("numa:turbo")
        )
        assert report.estimated_latency(coded, 0.5) == pytest.approx(manual)

    def test_all_config_estimates_complete(self, small_study_report):
        estimates = small_study_report.all_config_estimates(0.99)
        assert len(estimates) == 16
        assert all(v > 0 for v in estimates.values())

    def test_factor_average_impact_consistent(self, small_study_report):
        report = small_study_report
        impact = report.factor_average_impact("numa", 0.99)
        est = report.all_config_estimates(0.99)
        manual = np.mean([v for c, v in est.items() if c[0] == 1]) - np.mean(
            [v for c, v in est.items() if c[0] == 0]
        )
        assert impact == pytest.approx(manual)

    def test_unknown_factor_rejected(self, small_study_report):
        with pytest.raises(KeyError):
            small_study_report.factor_average_impact("cache", 0.99)

    def test_best_config_minimizes_estimate(self, small_study_report):
        report = small_study_report
        best = report.best_config(0.99)
        estimates = report.all_config_estimates(0.99)
        assert estimates[best] == min(estimates.values())

    def test_table_rows_structure(self, small_study_report):
        rows = small_study_report.table_rows(0.99)
        assert len(rows) == 16
        assert rows[0]["term"] == "(Intercept)"
        for row in rows:
            assert set(row) == {"term", "estimate_us", "stderr_us", "p_value"}
            assert 0.0 <= row["p_value"] <= 1.0


class TestConfigValidation:
    def test_bad_utilization_rejected(self):
        with pytest.raises(ValueError):
            AttributionConfig(workload=MemcachedWorkload(), target_utilization=1.5)

    def test_zero_replications_rejected(self):
        with pytest.raises(ValueError):
            AttributionConfig(workload=MemcachedWorkload(), replications=0)


class TestFactorScreening:
    """Section IV-B: null-hypothesis screening of candidate factors."""

    def test_real_factors_screen_in(self, small_study_report):
        from repro.core.attribution import AttributionConfig, AttributionStudy
        from repro.workloads.memcached import MemcachedWorkload

        study = AttributionStudy(
            AttributionConfig(workload=MemcachedWorkload(), seed=13)
        )
        p_values = study.screen_factors(
            small_study_report.experiments, tau=0.95, n_perm=150
        )
        assert set(p_values) == {"numa", "turbo", "dvfs", "nic"}
        for p in p_values.values():
            assert 0.0 < p <= 1.0
        # At least one of the strong factors must screen in even on a
        # tiny study.
        assert min(p_values.values()) < 0.1
