"""Tests for the per-quantile latency breakdown."""

import numpy as np
import pytest

from repro.core.breakdown import breakdown_at_quantile
from repro.core.bench import BenchConfig, TestBench
from repro.core.treadmill import TreadmillConfig, TreadmillInstance
from repro.workloads.memcached import MemcachedWorkload


def synthetic_components(n=20_000, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "server": rng.exponential(50.0, size=n),
        "network": np.full(n, 12.0),
        "client": np.full(n, 31.0),
    }


class TestBreakdown:
    def test_total_matches_quantile_of_sum(self):
        comps = synthetic_components()
        bd = breakdown_at_quantile(comps, 0.99)
        total = np.sum(list(comps.values()), axis=0)
        assert bd.total_us == pytest.approx(np.quantile(total, 0.99))

    def test_tail_attributed_to_variable_component(self):
        """With constant network/client, the p99 overage must be
        attributed to the server."""
        bd = breakdown_at_quantile(synthetic_components(), 0.99)
        assert bd.dominant() == "server"
        assert bd.components_us["network"] == pytest.approx(12.0)
        assert bd.components_us["client"] == pytest.approx(31.0)

    def test_shares_sum_to_one(self):
        bd = breakdown_at_quantile(synthetic_components(), 0.95)
        assert sum(bd.share(c) for c in bd.components_us) == pytest.approx(1.0)

    def test_component_means_sum_to_conditioned_total(self):
        comps = synthetic_components()
        bd = breakdown_at_quantile(comps, 0.9, window=0.01)
        summed = sum(bd.components_us.values())
        assert summed == pytest.approx(bd.total_us, rel=0.05)

    def test_median_vs_tail_attribution_differ(self):
        """At the median the fixed client path dominates; at the tail
        the server queueing does — the paper's whole point about
        needing per-quantile attribution."""
        comps = synthetic_components()
        mid = breakdown_at_quantile(comps, 0.5)
        tail = breakdown_at_quantile(comps, 0.99)
        assert tail.share("server") > mid.share("server")

    def test_validation(self):
        comps = synthetic_components(n=100)
        with pytest.raises(ValueError):
            breakdown_at_quantile({}, 0.5)
        with pytest.raises(ValueError):
            breakdown_at_quantile(comps, 1.5)
        with pytest.raises(ValueError):
            breakdown_at_quantile(comps, 0.99, window=0.5)
        with pytest.raises(ValueError):
            breakdown_at_quantile({"a": [1.0], "b": [1.0, 2.0]}, 0.5)

    def test_degenerate_distribution(self):
        comps = {"a": np.full(50, 10.0), "b": np.full(50, 5.0)}
        bd = breakdown_at_quantile(comps, 0.9, window=0.05)
        assert bd.components_us["a"] == pytest.approx(10.0)


class TestEndToEnd:
    def test_breakdown_from_real_measurement(self):
        bench = TestBench(BenchConfig(workload=MemcachedWorkload(), seed=9))
        rate = bench.server.arrival_rate_for_utilization(0.75) * 1e6
        inst = TreadmillInstance(
            bench,
            "tm0",
            TreadmillConfig(
                rate_rps=rate,
                connections=16,
                warmup_samples=200,
                measurement_samples=3000,
                keep_components=True,
            ),
        )
        inst.start()
        bench.run_to_completion([inst])
        comps = inst.report().components
        mid = breakdown_at_quantile(comps, 0.5)
        tail = breakdown_at_quantile(comps, 0.99)
        # At high utilization the server owns the tail.
        assert tail.dominant() == "server"
        assert tail.share("server") > mid.share("server")
        # The client path is the ~30 us kernel constant at both points.
        assert mid.components_us["client"] == pytest.approx(31.0, abs=5.0)
