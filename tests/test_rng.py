"""Unit tests for named RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry, derive_seed


class TestRngRegistry:
    def test_same_name_returns_same_generator(self):
        reg = RngRegistry(seed=1)
        assert reg.stream("a") is reg.stream("a")

    def test_different_names_are_independent(self):
        reg = RngRegistry(seed=1)
        a = reg.stream("a").random(100)
        b = reg.stream("b").random(100)
        assert not np.allclose(a, b)

    def test_reproducible_across_registries(self):
        a = RngRegistry(seed=42).stream("arrival").random(10)
        b = RngRegistry(seed=42).stream("arrival").random(10)
        assert np.array_equal(a, b)

    def test_order_independent_derivation(self):
        """Creating streams in a different order must not change draws."""
        reg1 = RngRegistry(seed=7)
        reg1.stream("x")
        first = reg1.stream("y").random(5)
        reg2 = RngRegistry(seed=7)
        second = reg2.stream("y").random(5)  # no "x" created first
        assert np.array_equal(first, second)

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("s").random(20)
        b = RngRegistry(seed=2).stream("s").random(20)
        assert not np.allclose(a, b)

    def test_seed_type_checked(self):
        with pytest.raises(TypeError):
            RngRegistry(seed="abc")

    def test_names_lists_created_streams(self):
        reg = RngRegistry(seed=0)
        reg.stream("b")
        reg.stream("a")
        assert list(reg.names()) == ["a", "b"]
        assert "a" in reg and "c" not in reg


class TestScopedRng:
    def test_child_prefixes_stream_names(self):
        reg = RngRegistry(seed=3)
        scoped = reg.child("server")
        direct = reg.stream("server/service")
        assert scoped.stream("service") is direct

    def test_nested_children(self):
        reg = RngRegistry(seed=3)
        inner = reg.child("a").child("b")
        assert inner.stream("c") is reg.stream("a/b/c")

    def test_scoped_streams_isolated_between_scopes(self):
        reg = RngRegistry(seed=3)
        a = reg.child("client0").stream("arrival").random(10)
        b = reg.child("client1").stream("arrival").random(10)
        assert not np.allclose(a, b)


class TestDeriveSeed:
    def test_deterministic(self):
        s1 = derive_seed(5, "name")
        s2 = derive_seed(5, "name")
        g1 = np.random.Generator(np.random.PCG64(s1))
        g2 = np.random.Generator(np.random.PCG64(s2))
        assert np.array_equal(g1.random(5), g2.random(5))

    def test_name_sensitivity(self):
        g1 = np.random.Generator(np.random.PCG64(derive_seed(5, "a")))
        g2 = np.random.Generator(np.random.PCG64(derive_seed(5, "b")))
        assert not np.allclose(g1.random(20), g2.random(20))
