"""Rendering tests: every artifact's report renders complete text.

These reuse the module-scoped quick studies already cached by the
other experiment tests when run in the same session; standalone they
cost a few quick runs.
"""

import pytest

from repro.experiments import (
    fig01_outstanding,
    fig02_client_bias,
    fig04_hysteresis,
    fig05_low_util,
    fig07_memcached_estimates,
    fig08_factor_impact,
    fig11_goodness,
    tab01_features,
    tab04_regression,
)


class TestRenders:
    def test_tab01_render(self):
        text = tab01_features.render(tab01_features.run())
        assert "Query Interarrival Generation" in text
        assert "Processor" in text

    def test_fig01_render_has_all_controllers(self):
        result = fig01_outstanding.run(scale="quick")
        text = fig01_outstanding.render(result)
        for label in result.cdfs:
            assert label in text

    def test_fig02_render_names_clients(self):
        result = fig02_client_bias.run(scale="quick")
        text = fig02_client_bias.render(result)
        for name in result.per_client_p99:
            assert name in text
        assert "pooled" in text

    def test_fig04_render_lists_runs(self):
        result = fig04_hysteresis.run(scale="quick")
        text = fig04_hysteresis.render(result)
        assert "Run #0" in text
        assert "max deviation" in text

    def test_fig05_render_includes_saturation_handling(self):
        result = fig05_low_util.run(scale="quick")
        text = fig05_low_util.render(result)
        assert "treadmill" in text
        assert "kernel-path offset" in text

    def test_fig07_render_all_sixteen_configs(self, request):
        result = fig07_memcached_estimates.run(scale="quick", seed=17)
        text = fig07_memcached_estimates.render(result)
        assert text.count("numa-") == 16
        assert "p99 high" in text

    def test_fig08_render_four_factors(self):
        result = fig08_factor_impact.run(scale="quick", seed=17)
        text = fig08_factor_impact.render(result)
        for factor in ("numa", "turbo", "dvfs", "nic"):
            assert factor in text

    def test_fig11_render_min_r2(self):
        result = fig11_goodness.run(scale="quick", seed=17)
        text = fig11_goodness.render(result)
        assert "minimum pseudo-R" in text

    def test_tab04_render_full_grid(self):
        result = tab04_regression.run(scale="quick", seed=17)
        text = tab04_regression.render(result)
        assert "p50 Est" in text and "p99 p-val" in text
        assert "(Intercept)" in text
