"""Tests for the load-dependent backend pool."""

import numpy as np
import pytest

from repro.core.bench import BenchConfig, TestBench
from repro.core.treadmill import TreadmillConfig, TreadmillInstance
from repro.sim.backends import BackendPool, BackendPoolConfig
from repro.sim.engine import Simulator
from repro.workloads.mcrouter import McrouterWorkload


class TestPoolMechanics:
    def make(self, servers=2, service=10.0, rtt=5.0, seed=0):
        sim = Simulator()
        pool = BackendPool(
            sim,
            BackendPoolConfig(servers=servers, service_mean_us=service, rtt_us=rtt),
            np.random.default_rng(seed),
        )
        return sim, pool

    def test_wait_includes_rtt_floor(self):
        sim, pool = self.make(rtt=5.0)
        assert pool.sample_wait_us() >= 5.0

    def test_idle_pool_has_no_queueing(self):
        sim, pool = self.make()
        pool.sample_wait_us()
        sim.run_until(100_000.0)  # backends fully drain
        pool.sample_wait_us()
        assert pool.mean_queue_us() == 0.0

    def test_burst_queues_behind_in_flight_work(self):
        """Many simultaneous requests to a small pool must queue."""
        sim, pool = self.make(servers=1, service=10.0)
        waits = [pool.sample_wait_us() for _ in range(20)]
        # Later requests wait behind earlier service times.
        assert waits[-1] > waits[0]
        assert pool.mean_queue_us() > 0.0

    def test_bigger_pool_less_queueing(self):
        def total_wait(servers):
            sim, pool = self.make(servers=servers, seed=3)
            return sum(pool.sample_wait_us() for _ in range(50))

        assert total_wait(16) < total_wait(1)

    def test_utilization_bounded(self):
        sim, pool = self.make()
        for _ in range(10):
            pool.sample_wait_us()
        sim.run_until(10.0)
        assert 0.0 <= pool.utilization() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BackendPoolConfig(servers=0)
        with pytest.raises(ValueError):
            BackendPoolConfig(service_mean_us=0.0)
        with pytest.raises(ValueError):
            BackendPoolConfig(rtt_us=-1.0)


class TestMcrouterIntegration:
    def run_router(self, utilization, pool_servers, seed=6, samples=2000):
        bench_probe = TestBench(
            BenchConfig(workload=McrouterWorkload(), seed=seed)
        )
        rate = bench_probe.server.arrival_rate_for_utilization(utilization) * 1e6

        bench = TestBench(BenchConfig(workload=McrouterWorkload(), seed=seed))
        pool = BackendPool(
            bench.sim,
            BackendPoolConfig(servers=pool_servers),
            bench.rng.stream("backends"),
        )
        bench.config.workload.backend_pool = pool
        inst = TreadmillInstance(
            bench,
            "tm0",
            TreadmillConfig(
                rate_rps=rate,
                connections=8,
                warmup_samples=200,
                measurement_samples=samples,
                keep_raw=True,
            ),
        )
        inst.start()
        bench.run_to_completion([inst])
        return pool, inst.report()

    def test_pool_routes_all_requests(self):
        pool, report = self.run_router(0.3, pool_servers=8)
        assert pool.requests_routed >= report.responses_recorded

    def test_backend_queueing_grows_with_router_load(self):
        """The point of the pool: backend waits are load-dependent."""
        pool_light, _ = self.run_router(0.15, pool_servers=2)
        pool_heavy, _ = self.run_router(0.6, pool_servers=2)
        assert pool_heavy.mean_queue_us() > pool_light.mean_queue_us()

    def test_small_pool_inflates_router_tail(self):
        _, small = self.run_router(0.5, pool_servers=1, seed=7)
        _, big = self.run_router(0.5, pool_servers=32, seed=7)
        p99_small = float(np.quantile(small.raw_samples, 0.99))
        p99_big = float(np.quantile(big.raw_samples, 0.99))
        assert p99_small > p99_big
