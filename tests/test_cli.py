"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_run_scale_choices(self):
        args = build_parser().parse_args(["run", "fig1", "--scale", "quick"])
        assert args.artifact == "fig1"
        assert args.scale == "quick"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig1", "--scale", "enormous"])


class TestCommands:
    def test_list_prints_all_artifacts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for artifact in ("fig1", "fig12", "tab1", "tab4"):
            assert artifact in out

    def test_hardware_prints_table2(self, capsys):
        assert main(["hardware"]) == 0
        out = capsys.readouterr().out
        assert "Processor" in out
        assert "NUMA" in out

    def test_run_tab1(self, capsys):
        assert main(["run", "tab1", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Treadmill" in out
        assert "regenerated at scale=quick" in out

    def test_run_fig1_quick(self, capsys):
        assert main(["run", "fig1", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Open-Loop" in out


class TestOutFile:
    def test_run_writes_report_file(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "tab1.txt"
        assert main(["run", "tab1", "--scale", "quick", "--out", str(out)]) == 0
        text = out.read_text()
        assert "Treadmill" in text
        assert "Table I" in text
