"""Package-surface tests: public APIs are exported and documented."""

import inspect

import pytest

import repro
import repro.core as core
import repro.experiments as experiments
import repro.loadtesters as loadtesters
import repro.sim as sim
import repro.stats as stats
import repro.workloads as workloads


PACKAGES = [repro, core, loadtesters, sim, stats, workloads, experiments]


class TestExports:
    @pytest.mark.parametrize("pkg", PACKAGES, ids=lambda p: p.__name__)
    def test_all_names_resolve(self, pkg):
        for name in getattr(pkg, "__all__", []):
            assert hasattr(pkg, name), f"{pkg.__name__}.__all__ lists missing {name}"

    @pytest.mark.parametrize("pkg", PACKAGES, ids=lambda p: p.__name__)
    def test_package_docstring(self, pkg):
        assert pkg.__doc__ and len(pkg.__doc__.strip()) > 20

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestDocstrings:
    @pytest.mark.parametrize(
        "obj",
        [
            sim.Simulator,
            sim.ServerMachine,
            sim.ClientMachine,
            sim.HardwareSpec,
            sim.MachineTelemetry,
            core.TreadmillInstance,
            core.MeasurementProcedure,
            core.AttributionStudy,
            core.OpenLoopController,
            core.ClosedLoopController,
            stats.AdaptiveHistogram,
            stats.FactorialDesign,
            workloads.MemcachedWorkload,
            workloads.McrouterWorkload,
            workloads.SearchLeafWorkload,
            loadtesters.CloudSuiteTester,
            loadtesters.MutilateTester,
            loadtesters.Wrk2Tester,
        ],
        ids=lambda o: o.__name__,
    )
    def test_public_classes_documented(self, obj):
        assert obj.__doc__ and len(obj.__doc__.strip()) > 30

    @pytest.mark.parametrize(
        "fn",
        [
            stats.fit_quantile_regression,
            stats.fit_with_inference,
            stats.pseudo_r2,
            stats.order_statistic_ci,
            core.aggregate_quantile,
            core.pooled_quantile,
            core.breakdown_at_quantile,
            core.fanout_latency_quantile,
            core.workload_from_json,
            core.apply_factors,
        ],
        ids=lambda f: f.__name__,
    )
    def test_public_functions_documented(self, fn):
        doc = inspect.getdoc(fn)
        assert doc and len(doc) > 30


class TestTopLevelConvenience:
    def test_headline_api_importable_from_root(self):
        # The README's quickstart imports must work verbatim.
        from repro import MeasurementProcedure, ProcedureConfig  # noqa: F401
        from repro import AttributionConfig, AttributionStudy  # noqa: F401
        from repro.workloads import MemcachedWorkload  # noqa: F401
