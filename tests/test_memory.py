"""Unit tests for the NUMA memory model."""

import numpy as np
import pytest

from repro.sim.cpu import CpuComplex, CpuConfig, Job
from repro.sim.engine import Simulator
from repro.sim.memory import (
    NumaConfig,
    NumaMemory,
    POLICY_INTERLEAVE,
    POLICY_SAME_NODE,
)


def make_memory(policy=POLICY_SAME_NODE, nodes=2, seed=0, **kwargs):
    cfg = NumaConfig(policy=policy, **kwargs)
    return NumaMemory(cfg, nodes, np.random.default_rng(seed))


def busy_core(utilization_target=0.0):
    """A core on a socket with a controllable smoothed utilization."""
    sim = Simulator()
    cpu = CpuComplex(sim, CpuConfig(governor="performance", thermal_tau_us=50.0))
    core = cpu.cores[0]
    if utilization_target > 0:
        # Drive the whole socket busy for a while, then let the
        # estimator observe it.
        for _ in range(200):
            for c in cpu.sockets[0].cores:
                c.submit(Job(work_us=20.0))
        sim.run()
    return sim, core


class TestNumaConfig:
    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            NumaConfig(policy="random")

    def test_remote_below_local_rejected(self):
        with pytest.raises(ValueError):
            NumaConfig(local_access_us=0.2, remote_access_us=0.1)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            NumaConfig(interleave_remote_fraction=1.5)

    def test_bad_stall_prob_rejected(self):
        with pytest.raises(ValueError):
            NumaConfig(stall_prob_k=2.0)


class TestPlacement:
    def test_same_node_places_on_preferred_node(self):
        mem = make_memory(POLICY_SAME_NODE)
        for _ in range(20):
            p = mem.place_buffer()
            assert not p.interleaved
            assert p.home_node == mem.config.preferred_node

    def test_interleave_marks_interleaved_with_jittered_fraction(self):
        mem = make_memory(POLICY_INTERLEAVE)
        fracs = [mem.place_buffer().remote_fraction for _ in range(50)]
        base = mem.config.interleave_remote_fraction
        assert all(abs(f - base) <= 0.05 + 1e-9 for f in fracs)
        assert len(set(fracs)) > 1  # per-boot jitter exists

    def test_single_node_machine_all_local(self):
        mem = make_memory(POLICY_INTERLEAVE, nodes=1)
        p = mem.place_buffer()
        assert mem.remote_fraction(p, 0) == 0.0


class TestRemoteFraction:
    def test_same_node_local_socket_fully_local(self):
        mem = make_memory(POLICY_SAME_NODE)
        p = mem.place_buffer()
        assert mem.remote_fraction(p, 0) == 0.0

    def test_same_node_other_socket_fully_remote(self):
        mem = make_memory(POLICY_SAME_NODE)
        p = mem.place_buffer()
        assert mem.remote_fraction(p, 1) == 1.0

    def test_interleave_majority_remote_for_everyone(self):
        """Finding 6: under interleave the majority of accesses are
        remote regardless of the accessing socket."""
        mem = make_memory(POLICY_INTERLEAVE)
        p = mem.place_buffer()
        assert mem.remote_fraction(p, 0) > 0.5
        assert mem.remote_fraction(p, 1) > 0.5


class TestAccessCost:
    def test_local_cost_linear_in_accesses(self):
        mem = make_memory(POLICY_SAME_NODE, stall_prob_k=0.0)
        _, core = busy_core()
        p = mem.place_buffer()
        c10 = mem.access_cost_us(p, core, 10)
        c20 = mem.access_cost_us(p, core, 20)
        assert c20 == pytest.approx(2 * c10)
        assert c10 == pytest.approx(10 * mem.config.local_access_us)

    def test_remote_base_cost_exceeds_local(self):
        mem = make_memory(POLICY_SAME_NODE, stall_prob_k=0.0)
        _, core = busy_core()  # core 0 is on socket 0
        local = mem.access_cost_us(mem.place_buffer(), core, 10)
        # A buffer placed same-node is remote for socket-1 cores.
        remote_core = core.socket.cores[0]
        # Fake a socket-1 view by moving the placement's home node.
        p = mem.place_buffer()
        p.home_node = 1
        remote = mem.access_cost_us(p, core, 10)
        assert remote > local

    def test_no_stalls_on_idle_socket(self):
        """Stall probability scales with utilization: an idle socket
        never stalls, so the cost is deterministic."""
        mem = make_memory(POLICY_INTERLEAVE)
        _, core = busy_core(0.0)
        p = mem.place_buffer()
        costs = {mem.access_cost_us(p, core, 10) for _ in range(200)}
        assert len(costs) == 1

    def test_stalls_appear_under_load(self):
        """Finding 6: load magnifies the remote penalty (stall events)."""
        mem = make_memory(POLICY_INTERLEAVE, stall_prob_k=0.5, stall_mean_us=50.0)
        _, core = busy_core(0.9)
        p = mem.place_buffer()
        costs = [mem.access_cost_us(p, core, 10) for _ in range(500)]
        base = min(costs)
        stalled = [c for c in costs if c > base + 1.0]
        assert stalled, "expected some contention stalls at high utilization"
        assert np.mean(costs) > base

    def test_fully_local_never_stalls(self):
        mem = make_memory(POLICY_SAME_NODE, stall_prob_k=0.5, stall_mean_us=50.0)
        _, core = busy_core(0.9)
        p = mem.place_buffer()  # home node 0 == core's socket -> local
        costs = {mem.access_cost_us(p, core, 10) for _ in range(200)}
        assert len(costs) == 1

    def test_interleave_mean_cost_exceeds_same_node_average(self):
        """The net numa effect: averaged over sockets, interleave costs
        more than same-node (majority-remote vs half-remote)."""
        rng_seed = 3
        mem_same = make_memory(POLICY_SAME_NODE, seed=rng_seed, stall_prob_k=0.0)
        mem_il = make_memory(POLICY_INTERLEAVE, seed=rng_seed, stall_prob_k=0.0)
        _, core = busy_core()
        same_costs = []
        for socket_idx in (0, 1):
            p = mem_same.place_buffer()
            frac = mem_same.remote_fraction(p, socket_idx)
            same_costs.append(
                10 * ((1 - frac) * 0.08 + frac * mem_same.config.remote_access_us)
            )
        il = mem_il.place_buffer()
        il_cost = 10 * (
            (1 - il.remote_fraction) * 0.08
            + il.remote_fraction * mem_il.config.remote_access_us
        )
        assert il_cost > np.mean(same_costs)
