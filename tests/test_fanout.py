"""Tests for the cluster fan-out tail analysis."""

import numpy as np
import pytest

from repro.core.fanout import (
    fanout_degradation,
    fanout_latency_quantile,
    required_leaf_quantile,
    simulate_fanout,
)


RNG = np.random.default_rng(0)
SAMPLES = RNG.exponential(100.0, size=50_000)


class TestFanoutQuantile:
    def test_fanout_one_is_plain_quantile(self):
        assert fanout_latency_quantile(SAMPLES, 1, 0.99) == pytest.approx(
            np.quantile(SAMPLES, 0.99)
        )

    def test_monotone_in_fanout(self):
        values = [fanout_latency_quantile(SAMPLES, n, 0.99) for n in (1, 4, 16, 64)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_matches_exponential_theory(self):
        """For exp(mean) leaves, max-of-n q-quantile is
        ``-mean * ln(1 - q^(1/n))``."""
        mean = 100.0
        for n in (2, 10, 50):
            expected = -mean * np.log(1.0 - 0.99 ** (1.0 / n))
            got = fanout_latency_quantile(SAMPLES, n, 0.99)
            assert got == pytest.approx(expected, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            fanout_latency_quantile([], 2, 0.5)
        with pytest.raises(ValueError):
            fanout_latency_quantile(SAMPLES, 0, 0.5)
        with pytest.raises(ValueError):
            fanout_latency_quantile(SAMPLES, 2, 1.0)


class TestDegradation:
    def test_ratios_normalized_to_single_server(self):
        table = fanout_degradation(SAMPLES, [1, 10, 100])
        assert table[1][1] == pytest.approx(1.0)
        assert table[10][1] > 1.0
        assert table[100][1] > table[10][1]

    def test_the_tail_at_scale_story(self):
        """At 100-way fan-out the cluster p99 is governed by the leaf
        p99.99 — a materially slower quantile."""
        cluster = fanout_degradation(SAMPLES, [100])[100][0]
        leaf_p9999 = np.quantile(SAMPLES, required_leaf_quantile(100))
        assert cluster == pytest.approx(leaf_p9999, rel=1e-9)
        assert cluster > 1.5 * np.quantile(SAMPLES, 0.99)


class TestRequiredLeafQuantile:
    def test_known_values(self):
        assert required_leaf_quantile(1) == pytest.approx(0.99)
        assert required_leaf_quantile(100) == pytest.approx(0.99 ** 0.01)
        assert required_leaf_quantile(100) > 0.9998

    def test_validation(self):
        with pytest.raises(ValueError):
            required_leaf_quantile(0)
        with pytest.raises(ValueError):
            required_leaf_quantile(10, cluster_q=1.5)


class TestMonteCarloAgreement:
    def test_simulation_matches_analytic_composition(self):
        sim = simulate_fanout(SAMPLES, fanout=16, n_requests=20_000, rng=RNG)
        analytic = fanout_latency_quantile(SAMPLES, 16, 0.9)
        assert np.quantile(sim, 0.9) == pytest.approx(analytic, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_fanout(SAMPLES, 4, 0)
