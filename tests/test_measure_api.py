"""Tests for the versioned MeasurementBackend API (repro.measure).

Covers the registry and capability surface, scoped option defaults,
the ``measure_spec`` dispatcher, digest neutrality of the default
backend, cache gating by the ``deterministic`` capability, the
``repro.run`` facade, and the deprecation shims of the old spellings.
"""

import dataclasses
import warnings

import pytest

import repro
from repro.exec.cache import ResultCache
from repro.exec.executors import SerialExecutor, _cacheable
from repro.exec.spec import RunSpec, run_spec
from repro.measure import api as mapi
from repro.measure import (
    BenchCapabilities,
    MeasurementBackend,
    available_measurement_backends,
    backend_defaults,
    make_measurement_backend,
    measure_spec,
    register_measurement_backend,
    set_backend_defaults,
)
from repro.measure.api import (
    MEASUREMENT_API_VERSION,
    backend_is_deterministic,
    get_backend_defaults,
    measurement_backend_info,
)
from repro.workloads import MemcachedWorkload


def small_spec(**overrides):
    kwargs = dict(
        workload=MemcachedWorkload(),
        total_rate_rps=20_000.0,
        num_instances=1,
        connections_per_instance=4,
        warmup_samples=30,
        measurement_samples_per_instance=150,
        seed=7,
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


# ----------------------------------------------------------------------
# fake third-party backends (registry extension path)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class FakeOptions:
    marker: str = "x"


class _FakeRun:
    def __init__(self, spec, payload):
        self.spec = spec
        self.payload = payload

    def drive(self):
        from repro.exec.spec import RunResult

        result = RunResult(
            run_index=self.spec.run_index,
            reports=[],
            metrics={0.5: 1.0},
            server_utilization=0.0,
            client_utilizations={},
            spec_digest=self.spec.digest(),
        )
        result.payload = self.payload
        return result


class FakeBackend:
    def __init__(self, options, deterministic=True):
        self.options = options
        self.deterministic = deterministic
        self.prepared = 0
        self.closed = False

    def prepare(self, spec):
        self.prepared += 1
        return _FakeRun(spec, self.options.marker)

    def capabilities(self):
        return BenchCapabilities(
            backend="fake", deterministic=self.deterministic
        )

    def close(self):
        self.closed = True


@pytest.fixture
def clean_registry():
    """Snapshot/restore the registry and defaults around a test."""
    saved_reg = dict(mapi._REGISTRY)
    saved_defaults = {k: dict(v) for k, v in mapi._OPTION_DEFAULTS.items()}
    saved_instances = dict(mapi._INSTANCES)
    yield
    mapi._REGISTRY.clear()
    mapi._REGISTRY.update(saved_reg)
    mapi._OPTION_DEFAULTS.clear()
    mapi._OPTION_DEFAULTS.update(saved_defaults)
    mapi._INSTANCES.clear()
    mapi._INSTANCES.update(saved_instances)


class TestRegistry:
    def test_builtins_are_registered(self):
        names = available_measurement_backends()
        assert "sim" in names and "live" in names

    def test_api_is_versioned(self):
        # v3: the live backend executes scenario specs (pool_targets) and
        # capabilities().scenarios is no longer a sim-only promise.
        assert MEASUREMENT_API_VERSION == 3

    def test_unknown_backend_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            measurement_backend_info("no-such-backend")

    def test_register_rejects_non_dataclass_options(self):
        with pytest.raises(TypeError, match="dataclass"):
            register_measurement_backend("bad", lambda o: None, dict)

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError):
            register_measurement_backend("", lambda o: None, FakeOptions)

    def test_third_party_registration(self, clean_registry):
        register_measurement_backend(
            "fake", lambda o: FakeBackend(o), FakeOptions, summary="test"
        )
        info = measurement_backend_info("fake")
        assert info.options is FakeOptions
        backend = make_measurement_backend("fake", marker="y")
        assert isinstance(backend, MeasurementBackend)  # runtime Protocol
        assert backend.options.marker == "y"


class TestCapabilities:
    def test_sim_capabilities(self):
        caps = make_measurement_backend("sim").capabilities()
        assert caps.backend == "sim"
        assert caps.deterministic
        assert caps.scenarios
        assert caps.utilization_targeting
        assert not caps.wall_clock

    def test_live_capabilities(self):
        caps = make_measurement_backend("live").capabilities()
        assert caps.backend == "live"
        assert not caps.deterministic
        assert caps.wall_clock
        assert caps.fault_hookable
        assert caps.scenarios  # v3: fleets route to real endpoints
        assert not caps.utilization_targeting

    def test_determinism_lookup(self):
        assert backend_is_deterministic("sim")
        assert not backend_is_deterministic("live")
        assert not backend_is_deterministic("never-registered")

    def test_backends_satisfy_protocol(self):
        for name in ("sim", "live"):
            assert isinstance(make_measurement_backend(name), MeasurementBackend)


class TestOptionDefaults:
    def test_set_and_get(self, clean_registry):
        set_backend_defaults("live", target="tcp://10.0.0.5:7799")
        assert get_backend_defaults("live")["target"] == "tcp://10.0.0.5:7799"

    def test_unknown_option_raises(self):
        with pytest.raises(TypeError, match="unknown option"):
            set_backend_defaults("live", no_such_option=1)

    def test_scoped_defaults_restore(self, clean_registry):
        set_backend_defaults("live", connect_timeout_s=9.0)
        with backend_defaults("live", target="tcp://h:1"):
            assert get_backend_defaults("live")["target"] == "tcp://h:1"
            assert get_backend_defaults("live")["connect_timeout_s"] == 9.0
        assert "target" not in get_backend_defaults("live")
        assert get_backend_defaults("live")["connect_timeout_s"] == 9.0

    def test_defaults_reach_the_built_backend(self, clean_registry):
        with backend_defaults("live", target="tcp://example:1234"):
            backend = make_measurement_backend("live")
            assert backend.options.target == "tcp://example:1234"

    def test_options_dataclass_and_kwargs_conflict(self):
        from repro.live.driver import LiveOptions

        with pytest.raises(TypeError, match="not both"):
            make_measurement_backend(
                "live", options=LiveOptions(), target="tcp://h:1"
            )

    def test_wrong_options_type(self):
        from repro.live.driver import LiveOptions

        with pytest.raises(TypeError, match="expects"):
            make_measurement_backend("sim", options=LiveOptions())


class TestDispatch:
    def test_measure_spec_runs_sim(self):
        result = measure_spec(small_spec())
        assert set(result.metrics) == {0.5, 0.95, 0.99}
        assert result.metrics[0.5] > 0

    def test_default_backend_is_sim(self):
        assert small_spec().backend == "sim"

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="available"):
            measure_spec(small_spec(backend="no-such"))

    def test_scenario_spec_refused_without_capability(self, clean_registry):
        register_measurement_backend("fake", lambda o: FakeBackend(o), FakeOptions)

        class FakeScenarioSpec:
            backend = "fake"
            scenario = object()

        with pytest.raises(ValueError, match="scenario"):
            measure_spec(FakeScenarioSpec())

    def test_dispatch_routes_by_name(self, clean_registry):
        register_measurement_backend("fake", lambda o: FakeBackend(o), FakeOptions)
        spec = small_spec(backend="fake")
        out = measure_spec(spec)
        assert out.payload == "x"
        assert out.spec_digest == spec.digest()

    def test_backend_instances_are_memoized(self, clean_registry):
        built = []

        def factory(options):
            backend = FakeBackend(options)
            built.append(backend)
            return backend

        register_measurement_backend("fake", factory, FakeOptions)
        measure_spec(small_spec(backend="fake"))
        measure_spec(small_spec(backend="fake", seed=8))
        assert len(built) == 1
        assert built[0].prepared == 2


class TestDigestNeutrality:
    def test_sim_backend_is_digest_neutral(self):
        spec = small_spec()
        assert spec.digest() == spec.replace(backend="sim").digest()

    def test_non_default_backend_changes_digest(self):
        spec = small_spec()
        assert spec.digest() != spec.replace(backend="live").digest()

    def test_backend_validation(self):
        with pytest.raises(ValueError, match="backend"):
            small_spec(backend="")

    def test_describe_mentions_only_non_default_backend(self):
        assert "backend" not in small_spec().describe()
        assert small_spec(backend="live").describe()["backend"] == "live"


class TestCacheGating:
    def test_cacheable_helper(self):
        assert _cacheable(small_spec())
        assert not _cacheable(small_spec(backend="live"))
        assert not _cacheable(small_spec(backend="never-registered"))

    def test_deterministic_fake_backend_is_cached(self, clean_registry, tmp_path):
        register_measurement_backend(
            "fake", lambda o: FakeBackend(o, deterministic=True), FakeOptions
        )
        cache = ResultCache(tmp_path)
        spec = small_spec(backend="fake")
        with SerialExecutor(cache=cache) as ex:
            (first,) = ex.run([spec])
            (second,) = ex.run([spec])
        assert not first.from_cache and second.from_cache
        assert second.spec_digest == first.spec_digest
        assert cache.get(spec) is not None

    def test_nondeterministic_backend_never_cached(self, clean_registry, tmp_path):
        backends = []

        def factory(options):
            backend = FakeBackend(options, deterministic=False)
            backends.append(backend)
            return backend

        register_measurement_backend("fake", factory, FakeOptions)
        cache = ResultCache(tmp_path)
        spec = small_spec(backend="fake")
        with SerialExecutor(cache=cache) as ex:
            ex.run([spec])
            ex.run([spec])
        assert cache.get(spec) is None
        assert backends[0].prepared == 2  # both runs actually executed


class TestFacade:
    def test_run_single_spec(self):
        spec = small_spec()
        result = repro.run(spec)
        assert result.spec_digest == spec.digest()

    def test_run_backend_override(self, clean_registry):
        register_measurement_backend("fake", lambda o: FakeBackend(o), FakeOptions)
        spec = small_spec()
        out = repro.run(spec, backend="fake")
        assert out.spec_digest == spec.replace(backend="fake").digest()
        assert spec.backend == "sim"  # original spec untouched

    def test_run_scenario(self):
        from repro.scenarios import scenario_from_json

        scenario = scenario_from_json(
            {
                "name": "tiny",
                "seed": 3,
                "pools": [{"name": "p", "workload": {"workload": "memcached"}}],
                "fleets": [
                    {
                        "name": "f",
                        "target": "p",
                        "instances": 1,
                        "connections_per_instance": 4,
                        "rate_rps": 20_000.0,
                        "warmup_samples": 30,
                        "measurement_samples_per_instance": 150,
                    }
                ],
            }
        )
        results = repro.run(scenario, executor="serial")
        assert len(results) == 1
        assert results[0].metrics[0.5] > 0


class TestDeprecatedSpellings:
    def test_run_spec_warns_and_delegates(self):
        spec = small_spec()
        with pytest.warns(DeprecationWarning, match="repro.run"):
            legacy = run_spec(spec)
        fresh = measure_spec(spec)
        assert legacy.metrics == fresh.metrics

    def test_run_scenario_spec_warns(self):
        from repro.scenarios.runtime import run_scenario_spec

        spec = small_spec()
        with pytest.warns(DeprecationWarning):
            legacy = run_scenario_spec(spec)
        assert legacy.metrics == measure_spec(spec).metrics

    def test_measure_spec_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            measure_spec(small_spec())
