"""Tests for the programmatic findings report."""

import pytest

from repro.experiments import findings


@pytest.fixture(scope="module")
def result():
    # Shares the cached quick-scale sweeps with the other experiment
    # test modules when run in one session.
    return findings.run(scale="quick", seed=17)


class TestFindings:
    def test_all_eight_checked(self, result):
        assert [c.number for c in result.checks] == list(range(1, 9))

    def test_each_check_has_evidence(self, result):
        for check in result.checks:
            assert check.claim
            assert len(check.measured) > 10

    def test_majority_hold_even_at_quick_scale(self, result):
        assert result.holding >= 6

    def test_robust_findings_hold(self, result):
        """Findings 1, 2, 5, and 6 rest on strong signals and must hold
        at any scale."""
        by_number = {c.number: c for c in result.checks}
        for n in (1, 2, 5, 6):
            assert by_number[n].holds, by_number[n].measured

    def test_render_table(self, result):
        text = findings.render(result)
        assert "Finding 1" in text and "Finding 8" in text
        assert "/8 findings hold" in text
