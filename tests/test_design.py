"""Unit and property tests for the factorial design machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.design import (
    Factor,
    FactorialDesign,
    interaction_names,
    model_matrix,
)


FACTORS = [
    Factor("numa", "same-node", "interleave"),
    Factor("turbo", "off", "on"),
    Factor("dvfs", "ondemand", "performance"),
    Factor("nic", "same-node", "all-nodes"),
]


class TestFactor:
    def test_label_and_code_round_trip(self):
        f = FACTORS[0]
        assert f.label(0) == "same-node"
        assert f.label(1) == "interleave"
        assert f.code("same-node") == 0
        assert f.code("interleave") == 1

    def test_invalid_code_rejected(self):
        with pytest.raises(ValueError):
            FACTORS[0].label(2)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            FACTORS[0].code("mystery")

    def test_identical_levels_rejected(self):
        with pytest.raises(ValueError):
            Factor("x", "a", "a")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Factor("", "a", "b")


class TestFactorialDesign:
    def test_enumerates_all_configs(self):
        d = FactorialDesign(FACTORS)
        configs = d.configs()
        assert len(configs) == 16
        assert len(set(configs)) == 16
        assert all(len(c) == 4 for c in configs)

    def test_config_dict_translates_levels(self):
        d = FactorialDesign(FACTORS)
        levels = d.config_dict((1, 0, 1, 0))
        assert levels == {
            "numa": "interleave",
            "turbo": "off",
            "dvfs": "performance",
            "nic": "same-node",
        }

    def test_config_label_matches_paper_format(self):
        d = FactorialDesign(FACTORS)
        assert (
            d.config_label((0, 1, 0, 1))
            == "numa-low,turbo-high,dvfs-low,nic-high"
        )

    def test_wrong_length_config_rejected(self):
        d = FactorialDesign(FACTORS)
        with pytest.raises(ValueError):
            d.config_dict((0, 1))

    def test_duplicate_factor_names_rejected(self):
        with pytest.raises(ValueError):
            FactorialDesign([Factor("a", "x", "y"), Factor("a", "p", "q")])

    def test_empty_design_rejected(self):
        with pytest.raises(ValueError):
            FactorialDesign([])

    def test_schedule_balanced(self):
        d = FactorialDesign(FACTORS)
        sched = d.schedule(3, np.random.default_rng(0))
        assert len(sched) == 48
        for cfg in d.configs():
            assert sched.count(cfg) == 3

    def test_schedule_randomized(self):
        d = FactorialDesign(FACTORS)
        a = d.schedule(2, np.random.default_rng(1))
        b = d.schedule(2, np.random.default_rng(2))
        assert a != b

    def test_schedule_zero_reps_rejected(self):
        d = FactorialDesign(FACTORS)
        with pytest.raises(ValueError):
            d.schedule(0, np.random.default_rng(0))


class TestInteractionNames:
    def test_full_order_count(self):
        names = interaction_names(["a", "b", "c", "d"])
        assert len(names) == 15  # 2^4 - 1

    def test_paper_term_order(self):
        names = interaction_names(["numa", "turbo", "dvfs", "nic"])
        assert names[0] == "numa"
        assert "numa:turbo" in names
        assert names[-1] == "numa:turbo:dvfs:nic"
        # Main effects come before any interaction.
        assert names.index("nic") < names.index("numa:turbo")

    def test_max_order_truncates(self):
        names = interaction_names(["a", "b", "c"], max_order=2)
        assert "a:b:c" not in names
        assert "a:b" in names

    def test_bad_max_order_rejected(self):
        with pytest.raises(ValueError):
            interaction_names(["a"], max_order=2)


class TestModelMatrix:
    def test_intercept_column_of_ones(self):
        X, cols = model_matrix([(0, 0), (1, 1)], ["a", "b"])
        assert cols[0] == "(Intercept)"
        assert np.array_equal(X[:, 0], [1.0, 1.0])

    def test_saturated_matrix_full_rank(self):
        d = FactorialDesign(FACTORS)
        X, cols = model_matrix(d.configs(), d.names)
        assert X.shape == (16, 16)
        assert np.linalg.matrix_rank(X) == 16

    def test_interaction_columns_are_products(self):
        runs = [(0, 0), (0, 1), (1, 0), (1, 1)]
        X, cols = model_matrix(runs, ["a", "b"])
        ia = cols.index("a")
        ib = cols.index("b")
        iab = cols.index("a:b")
        assert np.allclose(X[:, iab], X[:, ia] * X[:, ib])

    def test_non_binary_levels_rejected(self):
        with pytest.raises(ValueError):
            model_matrix([(0, 2)], ["a", "b"])

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            model_matrix([(0, 1, 1)], ["a", "b"])

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_every_interaction_column_is_member_product(self, k, seed):
        """Property: each column equals the elementwise product of its
        member factors' columns (Equation 1's structure)."""
        rng = np.random.default_rng(seed)
        names = [f"f{i}" for i in range(k)]
        runs = rng.integers(0, 2, size=(12, k))
        X, cols = model_matrix(runs, names)
        for j, col_name in enumerate(cols):
            if col_name == "(Intercept)":
                continue
            members = col_name.split(":")
            expected = np.ones(12)
            for m in members:
                expected *= runs[:, names.index(m)]
            assert np.allclose(X[:, j], expected)
