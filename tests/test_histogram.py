"""Unit and property tests for the adaptive histogram."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.histogram import AdaptiveHistogram


class TestValidation:
    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveHistogram(num_bins=1)
        with pytest.raises(ValueError):
            AdaptiveHistogram(calibration_size=1)
        with pytest.raises(ValueError):
            AdaptiveHistogram(overflow_rebin_fraction=0.0)
        with pytest.raises(ValueError):
            AdaptiveHistogram(range_margin=0.5)

    def test_nan_and_negative_samples_rejected(self):
        h = AdaptiveHistogram()
        with pytest.raises(ValueError):
            h.add(float("nan"))
        with pytest.raises(ValueError):
            h.add(-1.0)

    def test_empty_histogram_queries_rejected(self):
        h = AdaptiveHistogram()
        for fn in (h.mean, h.min, h.max, h.cdf_points):
            with pytest.raises(ValueError):
                fn()
        with pytest.raises(ValueError):
            h.quantile(0.5)


class TestCalibration:
    def test_calibrating_until_threshold(self):
        h = AdaptiveHistogram(calibration_size=10)
        for v in range(9):
            h.add(float(v + 1))
        assert h.calibrating
        h.add(10.0)
        assert not h.calibrating

    def test_bounds_derived_from_calibration(self):
        h = AdaptiveHistogram(calibration_size=10, range_margin=2.0)
        for v in range(10):
            h.add(10.0 + v)
        lo, hi = h.bounds
        assert lo == pytest.approx(10.0)
        assert hi == pytest.approx(19.0 * 2.0)

    def test_quantiles_exact_during_calibration(self):
        h = AdaptiveHistogram(calibration_size=100)
        data = list(range(50))
        h.extend(map(float, data))
        assert h.quantile(0.5) == pytest.approx(np.quantile(data, 0.5))


class TestAccuracy:
    def test_mean_exact_regardless_of_binning(self):
        h = AdaptiveHistogram(calibration_size=10)
        rng = np.random.default_rng(0)
        data = rng.exponential(100.0, size=5000)
        h.extend(data)
        assert h.mean() == pytest.approx(data.mean())

    def test_min_max_exact(self):
        h = AdaptiveHistogram(calibration_size=10)
        data = [5.0, 1.0, 9.0, 3.0] * 10
        h.extend(data)
        assert h.min() == 1.0
        assert h.max() == 9.0

    def test_quantiles_close_to_numpy(self):
        h = AdaptiveHistogram(num_bins=512, calibration_size=500)
        rng = np.random.default_rng(1)
        data = rng.lognormal(4.0, 0.8, size=20_000)
        h.extend(data)
        for q in (0.5, 0.9, 0.99):
            exact = np.quantile(data, q)
            assert h.quantile(q) == pytest.approx(exact, rel=0.05)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=20, max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_quantile_within_data_range(self, data):
        h = AdaptiveHistogram(num_bins=16, calibration_size=5)
        h.extend(data)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            v = h.quantile(q)
            # Binned estimates interpolate inside the covered range,
            # which never exceeds [min, margin * max].
            assert h.min() - 1e-6 <= v <= max(h.max(), h.bounds[1]) + 1e-6

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=1e4), min_size=100, max_size=1000
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_quantile_monotone_in_q(self, data):
        h = AdaptiveHistogram(num_bins=64, calibration_size=20)
        h.extend(data)
        qs = [0.1, 0.3, 0.5, 0.7, 0.9, 0.99]
        values = h.quantiles(qs)
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_count_tracks_all_samples(self):
        h = AdaptiveHistogram(calibration_size=10)
        h.extend(float(i) for i in range(137))
        assert h.count == 137


class TestRebinning:
    def test_growing_latency_triggers_rebin(self):
        """The paper's scenario: latency climbs past the calibrated
        range at high utilization; a static histogram would clip, the
        adaptive one re-bins."""
        h = AdaptiveHistogram(
            num_bins=64, calibration_size=50, overflow_rebin_fraction=0.01
        )
        h.extend(float(v % 50 + 1) for v in range(50))  # calibrate on 1..50
        h.extend(float(v) for v in range(1000, 3000, 10))  # 20x the range
        assert h.rebin_events >= 1
        assert h.bounds[1] >= 2990.0

    def test_no_samples_lost_across_rebins(self):
        h = AdaptiveHistogram(num_bins=32, calibration_size=20)
        data = list(np.linspace(1, 10, 20)) + list(np.linspace(100, 5000, 300))
        h.extend(data)
        assert h.count == len(data)
        xs, ps = h.cdf_points()
        assert ps[-1] == pytest.approx(1.0)

    def test_tail_quantiles_survive_rebin(self):
        h = AdaptiveHistogram(num_bins=256, calibration_size=100)
        rng = np.random.default_rng(2)
        calm = rng.uniform(10, 50, size=100)
        spike = rng.uniform(1000, 2000, size=2000)
        data = np.concatenate([calm, spike])
        h.extend(data)
        assert h.quantile(0.99) == pytest.approx(np.quantile(data, 0.99), rel=0.1)

    def test_overflow_kept_raw_until_rebin(self):
        h = AdaptiveHistogram(
            num_bins=16, calibration_size=10, overflow_rebin_fraction=0.9
        )
        h.extend(float(i + 1) for i in range(10))
        h.add(1e6)  # way outside, but below the re-bin fraction
        assert h.rebin_events == 0
        assert h.quantile(1.0) == pytest.approx(1e6)


class TestCdfAndMerge:
    def test_cdf_points_monotone(self):
        h = AdaptiveHistogram(calibration_size=50)
        rng = np.random.default_rng(3)
        h.extend(rng.exponential(50, size=2000))
        xs, ps = h.cdf_points()
        assert (np.diff(xs) >= -1e9).all()
        assert (np.diff(ps) >= 0).all()
        assert 0 <= ps[0] <= ps[-1] == pytest.approx(1.0)

    def test_merge_preserves_total_count(self):
        a = AdaptiveHistogram(calibration_size=10)
        b = AdaptiveHistogram(calibration_size=10)
        a.extend(float(i) for i in range(100))
        b.extend(float(i) for i in range(50))
        merged = a.merge(b)
        assert merged.count == 150

    def test_merge_quantile_between_inputs(self):
        a = AdaptiveHistogram(calibration_size=10)
        b = AdaptiveHistogram(calibration_size=10)
        a.extend([10.0] * 100)
        b.extend([100.0] * 100)
        merged = a.merge(b)
        assert 10.0 <= merged.quantile(0.5) <= 100.0


class TestSerialization:
    def test_round_trip_preserves_queries(self):
        import json

        h = AdaptiveHistogram(num_bins=64, calibration_size=20)
        rng = np.random.default_rng(5)
        data = rng.lognormal(4.0, 1.0, size=3000)
        h.extend(data)
        # Through actual JSON, to prove serializability.
        restored = AdaptiveHistogram.from_state(json.loads(json.dumps(h.state())))
        assert restored.count == h.count
        assert restored.mean() == pytest.approx(h.mean())
        for q in (0.1, 0.5, 0.9, 0.99):
            assert restored.quantile(q) == pytest.approx(h.quantile(q))

    def test_round_trip_during_calibration(self):
        h = AdaptiveHistogram(calibration_size=100)
        h.extend([1.0, 5.0, 3.0])
        restored = AdaptiveHistogram.from_state(h.state())
        assert restored.calibrating
        assert restored.count == 3
        assert restored.quantile(0.5) == h.quantile(0.5)

    def test_restored_histogram_accepts_new_samples(self):
        h = AdaptiveHistogram(num_bins=32, calibration_size=10)
        h.extend(float(i + 1) for i in range(50))
        restored = AdaptiveHistogram.from_state(h.state())
        restored.add(25.0)
        assert restored.count == 51

    def test_empty_histogram_round_trip(self):
        h = AdaptiveHistogram()
        restored = AdaptiveHistogram.from_state(h.state())
        assert restored.count == 0
        assert restored.calibrating


class TestVectorizedQuantiles:
    """quantiles(qs) must equal [quantile(q) for q in qs] bit for bit —
    the batch path is a pure speedup, never a different estimator."""

    @staticmethod
    def _fill(h, rng, n):
        for x in rng.lognormal(4.0, 1.0, n).tolist():
            h.add(x)

    @pytest.mark.parametrize("n", [10, 200, 5000])
    def test_batch_equals_scalar(self, n):
        h = AdaptiveHistogram(num_bins=64, calibration_size=100)
        self._fill(h, np.random.default_rng(n), n)
        qs = [0.0, 0.001, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0]
        assert h.quantiles(qs) == [h.quantile(q) for q in qs]

    def test_batch_equals_scalar_with_overflow(self):
        h = AdaptiveHistogram(num_bins=32, calibration_size=50)
        self._fill(h, np.random.default_rng(0), 60)
        for x in (1e6, 2e6, 3e6):  # far past the calibrated range
            h.add(x)
        qs = np.linspace(0.0, 1.0, 101).tolist()
        assert h.quantiles(qs) == [h.quantile(q) for q in qs]

    def test_batch_equals_scalar_while_calibrating(self):
        h = AdaptiveHistogram(num_bins=32, calibration_size=1000)
        self._fill(h, np.random.default_rng(1), 100)
        qs = [0.1, 0.5, 0.99]
        assert h.quantiles(qs) == [h.quantile(q) for q in qs]

    def test_record_many_equals_scalar_adds(self):
        rng = np.random.default_rng(2)
        data = rng.lognormal(4.0, 1.0, 3000)
        a = AdaptiveHistogram(num_bins=64, calibration_size=100)
        b = AdaptiveHistogram(num_bins=64, calibration_size=100)
        for x in data.tolist():
            a.add(x)
        b.record_many(data)
        qs = [0.01, 0.5, 0.95, 0.999]
        assert a.count == b.count
        assert a.quantiles(qs) == b.quantiles(qs)

    def test_nan_quantile_rejected(self):
        h = AdaptiveHistogram(num_bins=32, calibration_size=10)
        self._fill(h, np.random.default_rng(3), 50)
        with pytest.raises(ValueError):
            h.quantiles([0.5, float("nan")])
        with pytest.raises(ValueError):
            h.quantiles([-0.1])
