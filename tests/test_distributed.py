"""Tests for the distributed executor stack.

Four layers, tested separately so failures localize:

* the wire protocol (framing, handshake, task references),
* `_Batch` — the lease/requeue/dedup state machine (fake clock, no
  sockets),
* the `Coordinator` against hand-driven fake workers (digest-mismatch
  rejection, worker crash mid-run, late results),
* end-to-end `LocalClusterExecutor` with real worker subprocesses —
  including the CI determinism gate (3 workers, bit-identical to
  `SerialExecutor`) and worker-kill convergence.
"""

import os
import pickle
import socket
import threading
import time

import pytest

from repro.core.procedure import MeasurementProcedure, ProcedureConfig
from repro.exec import (
    ClusterExecutor,
    ClusterOptions,
    ExecError,
    LocalClusterExecutor,
    ResultCache,
    RunSpec,
    SerialExecutor,
    Telemetry,
    make_executor,
)
from repro.exec import protocol as proto
from repro.exec.distributed import Coordinator, _Batch, digest_of
from repro.exec.spec import spec_digest
from repro.exec.worker import serve
from repro.workloads.memcached import MemcachedWorkload


# ----------------------------------------------------------------------
# module-level toy tasks (importable by worker subprocesses)
# ----------------------------------------------------------------------
def _double(arg):
    return arg * 2


def _slow_double(arg):
    time.sleep(0.25)
    return arg * 2


def _raises(arg):
    raise ValueError(f"deterministic failure on {arg!r}")


def quick_spec(**overrides):
    defaults = dict(
        workload=MemcachedWorkload(),
        target_utilization=0.5,
        num_instances=2,
        connections_per_instance=8,
        warmup_samples=100,
        measurement_samples_per_instance=300,
        keep_raw=True,
        seed=1,
        run_index=0,
    )
    defaults.update(overrides)
    return RunSpec(**defaults)


def quick_config(**overrides):
    defaults = dict(
        workload=MemcachedWorkload(),
        target_utilization=0.5,
        num_instances=2,
        connections_per_instance=8,
        warmup_samples=100,
        measurement_samples_per_instance=300,
        min_runs=2,
        max_runs=3,
        seed=1,
    )
    defaults.update(overrides)
    return ProcedureConfig(**defaults)


# ----------------------------------------------------------------------
# protocol: framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            proto.send_msg(a, {"type": "hello", "payload": list(range(100))})
            msg = proto.recv_msg(b)
            assert msg == {"type": "hello", "payload": list(range(100))}
        finally:
            a.close()
            b.close()

    def test_empty_and_sequential_frames(self):
        a, b = socket.socketpair()
        try:
            proto.send_frame(a, b"")
            proto.send_frame(a, b"xyz")
            assert proto.recv_frame(b) == b""
            assert proto.recv_frame(b) == b"xyz"
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert proto.recv_msg(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            # Declare 100 bytes, deliver 3, hang up.
            a.sendall(b"\x00\x00\x00\x64abc")
            a.close()
            with pytest.raises(proto.ProtocolError):
                proto.recv_frame(b)
        finally:
            b.close()

    def test_oversized_declared_frame_rejected_before_allocation(self):
        a, b = socket.socketpair()
        try:
            a.sendall((proto.MAX_FRAME + 1).to_bytes(4, "big"))
            with pytest.raises(proto.FrameTooLarge):
                proto.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_send_rejected(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(proto.FrameTooLarge):
                proto.send_frame(a, b"x" * (proto.MAX_FRAME + 1))
        finally:
            a.close()
            b.close()

    def test_undecodable_frame_raises(self):
        a, b = socket.socketpair()
        try:
            proto.send_frame(a, b"not a pickle")
            with pytest.raises(proto.ProtocolError):
                proto.recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_non_dict_message_rejected(self):
        a, b = socket.socketpair()
        try:
            proto.send_frame(a, pickle.dumps([1, 2, 3]))
            with pytest.raises(proto.ProtocolError):
                proto.recv_msg(b)
        finally:
            a.close()
            b.close()


class TestHandshake:
    def test_matching_versions_welcomed(self):
        reply = proto.handshake_reply(proto.hello("w1"))
        assert reply["type"] == "welcome"
        assert reply["protocol"] == proto.PROTOCOL_VERSION

    def test_protocol_mismatch_rejected(self):
        msg = proto.hello("w1")
        msg["protocol"] = proto.PROTOCOL_VERSION + 1
        reply = proto.handshake_reply(msg)
        assert reply["type"] == "reject"
        assert "protocol version" in reply["reason"]

    def test_spec_schema_mismatch_rejected(self):
        msg = proto.hello("w1")
        msg["spec_schema"] = -1
        reply = proto.handshake_reply(msg)
        assert reply["type"] == "reject"
        assert "schema" in reply["reason"]

    def test_non_hello_rejected(self):
        assert proto.handshake_reply({"type": "get"})["type"] == "reject"


class TestTaskReference:
    def test_round_trip(self):
        ref = proto.task_reference(_double)
        assert proto.resolve_task(ref) is _double

    def test_run_spec_reference(self):
        from repro.exec.spec import run_spec

        assert proto.resolve_task("repro.exec.spec:run_spec") is run_spec
        assert proto.task_reference(run_spec) == "repro.exec.spec:run_spec"

    def test_lambda_rejected(self):
        with pytest.raises(ValueError):
            proto.task_reference(lambda x: x)

    def test_malformed_reference_rejected(self):
        with pytest.raises(ValueError):
            proto.resolve_task("no-colon")

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            proto.resolve_task("repro.exec.protocol:PROTOCOL_VERSION")


# ----------------------------------------------------------------------
# the lease state machine (no sockets, fake clock)
# ----------------------------------------------------------------------
def _batch(n=3, lease_s=10.0, max_attempts=3, steal=True):
    digests = {i: spec_digest(i) for i in range(n)}
    return _Batch(range(n), digests, lease_s, max_attempts, steal)


class TestBatch:
    def test_issue_and_complete(self):
        batch = _batch(2)
        l0 = batch.next_task(now=0.0, conn_id=1)
        l1 = batch.next_task(now=0.0, conn_id=2)
        assert {l0.index, l1.index} == {0, 1}
        status, index, attempt = batch.complete(
            l0.lease_id, batch.digests[l0.index], ""
        )
        assert (status, index, attempt) == ("ok", l0.index, 1)
        assert not batch.finished
        batch.complete(l1.lease_id, batch.digests[l1.index], "")
        assert batch.finished

    def test_lease_expiry_requeues(self):
        batch = _batch(1, lease_s=5.0)
        lease = batch.next_task(now=100.0, conn_id=1)
        assert batch.expire(now=104.9) == []
        assert batch.expire(now=105.1) == [lease.index]
        # the spec is pending again and issuable to another worker
        again = batch.next_task(now=106.0, conn_id=2)
        assert again.index == lease.index
        assert again.lease_id != lease.lease_id

    def test_expiry_exhausts_attempts(self):
        batch = _batch(1, lease_s=1.0, max_attempts=2)
        batch.next_task(now=0.0, conn_id=1)
        batch.expire(now=2.0)
        assert batch.failed is None
        batch.next_task(now=3.0, conn_id=1)
        batch.expire(now=5.0)
        assert batch.failed is not None
        assert "giving up" in batch.failed

    def test_late_result_after_expiry_still_accepted(self):
        """Equal spec => equal result: late work is not wasted work."""
        batch = _batch(1, lease_s=1.0)
        lease = batch.next_task(now=0.0, conn_id=1)
        batch.expire(now=2.0)  # requeued
        status, index, _ = batch.complete(lease.lease_id, batch.digests[0], "")
        assert status == "ok" and index == 0
        assert batch.finished
        # the requeued copy is never issued again
        assert batch.next_task(now=3.0, conn_id=2) is None

    def test_digest_mismatch_rejected_and_requeued(self):
        batch = _batch(1)
        lease = batch.next_task(now=0.0, conn_id=1)
        status, _, _ = batch.complete(lease.lease_id, "deadbeef", "")
        assert status == "mismatch"
        assert 0 not in batch.done
        retry = batch.next_task(now=1.0, conn_id=2)
        assert retry.index == 0

    def test_result_digest_mismatch_rejected(self):
        """The result's own spec_digest is verified, not just the echo."""
        batch = _batch(1)
        lease = batch.next_task(now=0.0, conn_id=1)
        status, _, _ = batch.complete(
            lease.lease_id, batch.digests[0], "f" * 64
        )
        assert status == "mismatch"

    def test_repeated_mismatch_fails_batch(self):
        batch = _batch(1, max_attempts=2)
        for _ in range(2):
            lease = batch.next_task(now=0.0, conn_id=1)
            batch.complete(lease.lease_id, "deadbeef", "")
        assert batch.failed is not None

    def test_duplicate_result_discarded(self):
        batch = _batch(1, steal=True)
        original = batch.next_task(now=0.0, conn_id=1)
        stolen = batch.next_task(now=0.0, conn_id=2)  # queue empty -> steal
        assert stolen is not None and stolen.stolen
        assert stolen.index == original.index
        s1, _, _ = batch.complete(stolen.lease_id, batch.digests[0], "")
        s2, _, _ = batch.complete(original.lease_id, batch.digests[0], "")
        assert (s1, s2) == ("ok", "duplicate")

    def test_steal_bounded_to_one_duplicate(self):
        batch = _batch(1, steal=True)
        batch.next_task(now=0.0, conn_id=1)
        assert batch.next_task(now=0.0, conn_id=2) is not None
        assert batch.next_task(now=0.0, conn_id=3) is None

    def test_no_steal_when_disabled(self):
        batch = _batch(1, steal=False)
        batch.next_task(now=0.0, conn_id=1)
        assert batch.next_task(now=0.0, conn_id=2) is None

    def test_drop_connection_requeues_only_that_workers_leases(self):
        batch = _batch(2)
        l0 = batch.next_task(now=0.0, conn_id=1)
        l1 = batch.next_task(now=0.0, conn_id=2)
        lost = batch.drop_connection(1)
        assert lost == [l0.index]
        assert batch.leases[l1.lease_id].active
        retry = batch.next_task(now=1.0, conn_id=2)
        assert retry.index == l0.index

    def test_unknown_lease_is_unknown(self):
        batch = _batch(1)
        assert batch.complete(999, "", "")[0] == "unknown"

    def test_task_error_fails_fast(self):
        batch = _batch(2)
        lease = batch.next_task(now=0.0, conn_id=1)
        batch.task_error(lease.lease_id, "ValueError('boom')", "tb")
        assert batch.failed is not None
        assert "boom" in batch.failed


# ----------------------------------------------------------------------
# coordinator against hand-driven fake workers
# ----------------------------------------------------------------------
class FakeWorker:
    """A raw protocol client, for driving the coordinator by hand."""

    def __init__(self, address, hello_msg=None):
        self.sock = socket.create_connection(address, timeout=5.0)
        proto.send_msg(self.sock, hello_msg or proto.hello("fake"))
        self.welcome = proto.recv_msg(self.sock)

    def get(self):
        proto.send_msg(self.sock, {"type": "get"})
        return proto.recv_msg(self.sock)

    def get_task(self, tries=100):
        """Poll until a task arrives (the batch may not be open yet)."""
        for _ in range(tries):
            msg = self.get()
            if msg["type"] == "task":
                return msg
            time.sleep(0.02)
        raise AssertionError("no task issued")

    def send_result(self, task, result, digest=None):
        proto.send_msg(
            self.sock,
            {
                "type": "result",
                "task_id": task["task_id"],
                "digest": task["digest"] if digest is None else digest,
                "result": result,
                "wall_s": 0.0,
                "worker": "fake",
            },
        )
        return proto.recv_msg(self.sock)

    def close(self):
        self.sock.close()


def _run_in_thread(executor, specs):
    holder = {}

    def target():
        try:
            holder["results"] = executor.run(specs)
        except BaseException as err:  # pragma: no cover - assertion helper
            holder["error"] = err

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, holder


@pytest.fixture
def bare_cluster():
    """A ClusterExecutor with no spawned workers (external-worker mode)."""
    ex = ClusterExecutor(
        options=ClusterOptions(workers=1, lease_s=5.0, max_attempts=3),
        task=_double,
    )
    ex.start()
    try:
        yield ex
    finally:
        ex.close()


class TestCoordinator:
    def test_fake_worker_completes_batch(self, bare_cluster):
        thread, holder = _run_in_thread(bare_cluster, [1, 2, 3])
        worker = FakeWorker(bare_cluster.address)
        assert worker.welcome["type"] == "welcome"
        try:
            for _ in range(3):
                task = worker.get_task()
                assert task["task_ref"].endswith(":_double")
                ack = worker.send_result(task, task["spec"] * 2)
                assert ack["type"] == "ack"
            thread.join(timeout=5.0)
            assert holder.get("results") == [2, 4, 6]
        finally:
            worker.close()

    def test_version_skewed_worker_rejected_at_connect(self, bare_cluster):
        bad_hello = proto.hello("skewed")
        bad_hello["spec_schema"] = -1
        worker = FakeWorker(bare_cluster.address, hello_msg=bad_hello)
        try:
            assert worker.welcome["type"] == "reject"
        finally:
            worker.close()

    def test_digest_mismatch_rejected_then_requeued(self, bare_cluster):
        thread, holder = _run_in_thread(bare_cluster, [5])
        worker = FakeWorker(bare_cluster.address)
        try:
            task = worker.get_task()
            reply = worker.send_result(task, 10, digest="deadbeef")
            assert reply["type"] == "reject"
            # same spec comes around again; an honest result completes it
            retry = worker.get_task()
            assert retry["digest"] == task["digest"]
            assert worker.send_result(retry, 10)["type"] == "ack"
            thread.join(timeout=5.0)
            assert holder.get("results") == [10]
        finally:
            worker.close()

    def test_worker_crash_mid_run_requeues_immediately(self, bare_cluster):
        """A dropped connection (worker death) requeues its lease at
        once — no need to wait out the lease timer."""
        thread, holder = _run_in_thread(bare_cluster, [7])
        crasher = FakeWorker(bare_cluster.address)
        task = crasher.get_task()
        crasher.close()  # dies holding the lease
        survivor = FakeWorker(bare_cluster.address)
        try:
            retry = survivor.get_task()
            assert retry["digest"] == task["digest"]
            assert survivor.send_result(retry, 14)["type"] == "ack"
            thread.join(timeout=5.0)
            assert holder.get("results") == [14]
        finally:
            survivor.close()

    def test_repeated_worker_death_exhausts_attempts(self):
        ex = ClusterExecutor(
            options=ClusterOptions(workers=1, lease_s=5.0, max_attempts=2),
            task=_double,
        )
        ex.start()
        try:
            thread, holder = _run_in_thread(ex, [9])
            for _ in range(2):
                worker = FakeWorker(ex.address)
                worker.get_task()
                worker.close()
            thread.join(timeout=5.0)
            assert isinstance(holder.get("error"), ExecError)
        finally:
            ex.close()

    def test_in_process_serve_loop_with_max_tasks(self, bare_cluster):
        """The worker's serve() loop is exercised in-process."""
        thread, holder = _run_in_thread(bare_cluster, [1, 2, 3, 4])
        host, port = bare_cluster.address
        done = serve(host, port, name="in-process", max_tasks=4)
        thread.join(timeout=5.0)
        assert done == 4
        assert holder.get("results") == [2, 4, 6, 8]


# ----------------------------------------------------------------------
# end-to-end: LocalClusterExecutor with real worker subprocesses
# ----------------------------------------------------------------------
class TestLocalCluster:
    def test_cluster_determinism_vs_serial_three_workers(self):
        """The CI gate: 3 local workers produce bit-identical metric
        samples to the serial reference, in submission order."""
        with SerialExecutor() as ex:
            serial = MeasurementProcedure(quick_config(), executor=ex).run()
        with LocalClusterExecutor(workers=3) as ex:
            assert ex.capabilities().distributed
            cluster = MeasurementProcedure(quick_config(), executor=ex).run()
        assert serial.estimates == cluster.estimates
        assert serial.dispersion == cluster.dispersion
        assert [r.metrics for r in serial.runs] == [r.metrics for r in cluster.runs]

    def test_cluster_preserves_submission_order(self):
        specs = [quick_spec(run_index=i) for i in range(4)]
        with LocalClusterExecutor(workers=2) as ex:
            results = ex.run(specs)
        assert [r.run_index for r in results] == [0, 1, 2, 3]
        assert all(r.spec_digest == s.digest() for r, s in zip(results, specs))

    def test_killing_a_worker_mid_batch_still_converges(self):
        """Acceptance: kill -9 a worker while the batch runs; lease
        requeue + respawn still deliver every result, correctly."""
        ex = LocalClusterExecutor(
            workers=2, lease_s=3.0, max_attempts=5, task=_slow_double
        )
        try:
            ex.start()

            def assassin():
                time.sleep(0.6)
                ex._procs[0].kill()

            threading.Thread(target=assassin, daemon=True).start()
            results = ex.run(list(range(8)))
            assert results == [i * 2 for i in range(8)]
        finally:
            ex.close()

    def test_cluster_writes_through_result_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = quick_spec()
        with LocalClusterExecutor(workers=1, cache=cache) as ex:
            first = ex.run([spec])[0]
            telemetry = Telemetry()
            second = ex.run([spec], progress=telemetry)[0]
        assert not first.from_cache and second.from_cache
        assert telemetry.cache_hits == 1
        assert first.metrics == second.metrics

    def test_deterministic_task_error_fails_fast(self):
        with LocalClusterExecutor(workers=1, task=_raises) as ex:
            with pytest.raises(ExecError, match="deterministic failure"):
                ex.run([1])

    def test_make_executor_cluster_backend(self):
        ex = make_executor("cluster", workers=2, lease_s=30.0)
        try:
            assert isinstance(ex, LocalClusterExecutor)
            assert ex.options.workers == 2
            caps = ex.capabilities()
            assert caps.backend == "cluster"
            assert caps.distributed and caps.parallel and caps.deterministic
        finally:
            ex.close()

    def test_lambda_task_rejected_up_front(self):
        with pytest.raises(ValueError, match="remote workers"):
            LocalClusterExecutor(workers=1, task=lambda s: s)

    def test_coordinator_address_exposed_for_external_workers(self):
        ex = ClusterExecutor(task=_double)
        try:
            assert ex.address is None
            coordinator = ex.start()
            host, port = ex.address
            assert port > 0
            assert coordinator.connected_workers() == 0
        finally:
            ex.close()
