"""Unit tests for inter-arrival processes."""

import numpy as np
import pytest

from repro.core.arrival import (
    BurstyArrivals,
    DeterministicArrivals,
    LognormalArrivals,
    PoissonArrivals,
    arrival_from_spec,
)


RNG = np.random.default_rng(0)


def gaps(process, n=20_000, seed=1):
    rng = np.random.default_rng(seed)
    return np.array([process.next_gap_us(rng) for _ in range(n)])


class TestPoisson:
    def test_mean_gap_matches_rate(self):
        p = PoissonArrivals(rate_rps=100_000)
        assert p.mean_gap_us == pytest.approx(10.0)
        assert gaps(p).mean() == pytest.approx(10.0, rel=0.05)

    def test_exponential_shape(self):
        """CV of exponential gaps is 1."""
        g = gaps(PoissonArrivals(50_000))
        assert g.std() / g.mean() == pytest.approx(1.0, rel=0.05)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestDeterministic:
    def test_constant_gaps(self):
        p = DeterministicArrivals(10_000)
        g = gaps(p, n=100)
        assert np.allclose(g, 100.0)


class TestLognormal:
    def test_mean_and_cv(self):
        p = LognormalArrivals(10_000, cv=2.0)
        g = gaps(p, n=100_000)
        assert g.mean() == pytest.approx(100.0, rel=0.05)
        assert g.std() / g.mean() == pytest.approx(2.0, rel=0.1)

    def test_bad_cv_rejected(self):
        with pytest.raises(ValueError):
            LognormalArrivals(1000, cv=0.0)


class TestBursty:
    def test_average_rate_preserved(self):
        p = BurstyArrivals(10_000, burst_factor=5.0, burst_fraction=0.1)
        g = gaps(p, n=200_000)
        assert g.mean() == pytest.approx(100.0, rel=0.15)

    def test_burstier_than_poisson(self):
        bursty = gaps(
            BurstyArrivals(10_000, burst_factor=10.0, burst_fraction=0.1), n=100_000
        )
        poisson = gaps(PoissonArrivals(10_000), n=100_000)
        assert bursty.std() / bursty.mean() > poisson.std() / poisson.mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(1000, burst_factor=1.0)
        with pytest.raises(ValueError):
            BurstyArrivals(1000, burst_fraction=0.0)


class TestSpecs:
    @pytest.mark.parametrize(
        "process",
        [
            PoissonArrivals(1000),
            DeterministicArrivals(1000),
            LognormalArrivals(1000, cv=1.5),
            BurstyArrivals(1000, burst_factor=3.0),
        ],
        ids=lambda p: type(p).__name__,
    )
    def test_round_trip(self, process):
        rebuilt = arrival_from_spec(process.spec())
        assert type(rebuilt) is type(process)
        assert rebuilt.rate_rps == process.rate_rps

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            arrival_from_spec({"type": "weibull", "rate_rps": 1})

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError):
            arrival_from_spec({"type": "poisson"})

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            arrival_from_spec("poisson")
