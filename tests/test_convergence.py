"""Unit tests for convergence detection."""

import math

import numpy as np
import pytest

from repro.stats.convergence import MeanConvergence, RunningQuantileTracker


class TestRunningQuantileTracker:
    def test_trajectory_checkpoints(self):
        t = RunningQuantileTracker(0.5, checkpoint_every=10)
        t.extend(range(35))
        assert len(t.trajectory) == 3
        assert t.sample_counts == [10, 20, 30]

    def test_current_matches_numpy(self):
        t = RunningQuantileTracker(0.9, checkpoint_every=5)
        data = np.random.default_rng(0).exponential(10.0, size=100)
        t.extend(data)
        assert t.current() == pytest.approx(np.quantile(data, 0.9))

    def test_current_without_samples_rejected(self):
        with pytest.raises(ValueError):
            RunningQuantileTracker(0.5).current()

    def test_stationary_stream_stabilizes(self):
        rng = np.random.default_rng(1)
        t = RunningQuantileTracker(0.9, checkpoint_every=500)
        t.extend(rng.exponential(10.0, size=10_000))
        assert t.stable(window=5, rel_tol=0.05)

    def test_shifting_stream_not_stable(self):
        t = RunningQuantileTracker(0.9, checkpoint_every=100)
        rng = np.random.default_rng(2)
        # The distribution keeps drifting upward.
        for i in range(20):
            t.extend(rng.exponential(10.0 * (i + 1), size=100))
        assert not t.stable(window=5, rel_tol=0.05)

    def test_not_stable_before_window_filled(self):
        t = RunningQuantileTracker(0.5, checkpoint_every=10)
        t.extend(range(20))
        assert not t.stable(window=5)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            RunningQuantileTracker(0.0)
        with pytest.raises(ValueError):
            RunningQuantileTracker(0.5, checkpoint_every=0)


class TestMeanConvergence:
    def test_not_converged_below_min_runs(self):
        rule = MeanConvergence(min_runs=4)
        for v in (100.0, 101.0, 99.0):
            rule.add(v)
        assert not rule.converged()

    def test_tight_runs_converge(self):
        rule = MeanConvergence(rel_tol=0.05, min_runs=3)
        for v in (100.0, 101.0, 99.5, 100.2):
            rule.add(v)
        assert rule.converged()

    def test_wild_runs_do_not_converge(self):
        rule = MeanConvergence(rel_tol=0.05, min_runs=3)
        for v in (100.0, 300.0, 50.0, 220.0):
            rule.add(v)
        assert not rule.converged()

    def test_max_runs_forces_stop(self):
        rule = MeanConvergence(rel_tol=0.001, min_runs=2, max_runs=5)
        for v in (1.0, 100.0, 1.0, 100.0, 1.0):
            rule.add(v)
        assert rule.converged()  # hit the cap despite high variance

    def test_half_width_infinite_with_one_run(self):
        rule = MeanConvergence()
        rule.add(10.0)
        assert math.isinf(rule.half_width())

    def test_half_width_zero_for_identical_runs(self):
        rule = MeanConvergence(min_runs=2)
        rule.add(5.0)
        rule.add(5.0)
        assert rule.half_width() == 0.0
        assert rule.converged()

    def test_mean(self):
        rule = MeanConvergence()
        rule.add(10.0)
        rule.add(20.0)
        assert rule.mean() == 15.0

    def test_nonfinite_metric_rejected(self):
        rule = MeanConvergence()
        with pytest.raises(ValueError):
            rule.add(float("nan"))

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            MeanConvergence(rel_tol=0.0)
        with pytest.raises(ValueError):
            MeanConvergence(min_runs=1)
        with pytest.raises(ValueError):
            MeanConvergence(min_runs=5, max_runs=3)
        with pytest.raises(ValueError):
            MeanConvergence(confidence=0.0)

    def test_empty_mean_rejected(self):
        with pytest.raises(ValueError):
            MeanConvergence().mean()
