"""Unit tests for the packet-capture (tcpdump) model."""

import numpy as np

from repro.sim.tcpdump import PacketCapture
from repro.workloads.base import Request


def stamped_request(req_id, t_send, t_recv):
    req = Request(req_id=req_id, conn_id=0, op="get")
    req.t_nic_send = t_send
    req.t_nic_recv = t_recv
    return req


class TestPacketCapture:
    def test_matches_request_to_response(self):
        cap = PacketCapture("c0")
        req = stamped_request(1, 10.0, 75.0)
        cap.record_tx(req)
        cap.record_rx(req)
        assert cap.latencies_us == [65.0]

    def test_multiple_interleaved_requests(self):
        cap = PacketCapture()
        reqs = [stamped_request(i, float(i), float(i) + 50.0 + i) for i in range(5)]
        for r in reqs:
            cap.record_tx(r)
        for r in reversed(reqs):  # out-of-order responses
            cap.record_rx(r)
        assert sorted(cap.latencies_us) == [50.0, 51.0, 52.0, 53.0, 54.0]

    def test_unmatched_rx_counted_not_recorded(self):
        cap = PacketCapture()
        cap.record_rx(stamped_request(9, 0.0, 10.0))
        assert cap.latencies_us == []
        assert cap.unmatched_rx == 1

    def test_in_flight_tracks_outstanding(self):
        cap = PacketCapture()
        a, b = stamped_request(1, 0.0, 5.0), stamped_request(2, 1.0, 6.0)
        cap.record_tx(a)
        cap.record_tx(b)
        assert cap.in_flight == 2
        cap.record_rx(a)
        assert cap.in_flight == 1

    def test_disabled_capture_records_nothing(self):
        cap = PacketCapture()
        cap.enabled = False
        req = stamped_request(1, 0.0, 9.0)
        cap.record_tx(req)
        cap.record_rx(req)
        assert cap.latencies_us == []

    def test_reset_clears_state(self):
        cap = PacketCapture()
        req = stamped_request(1, 0.0, 9.0)
        cap.record_tx(req)
        cap.record_rx(req)
        cap.reset()
        assert cap.latencies_us == []
        assert cap.in_flight == 0

    def test_samples_array(self):
        cap = PacketCapture()
        for i in range(3):
            r = stamped_request(i, 0.0, float(i + 1))
            cap.record_tx(r)
            cap.record_rx(r)
        assert np.array_equal(cap.samples(), [1.0, 2.0, 3.0])

    def test_merge_pools_across_hosts(self):
        caps = []
        for h in range(3):
            cap = PacketCapture(f"h{h}")
            r = stamped_request(h, 0.0, 10.0 * (h + 1))
            cap.record_tx(r)
            cap.record_rx(r)
            caps.append(cap)
        merged = PacketCapture.merge(caps)
        assert sorted(merged.tolist()) == [10.0, 20.0, 30.0]

    def test_merge_empty_list(self):
        assert PacketCapture.merge([]).size == 0
