"""Integration tests for the multi-instance multi-run procedure."""

import numpy as np
import pytest

from repro.core.procedure import MeasurementProcedure, ProcedureConfig
from repro.workloads.memcached import MemcachedWorkload


def quick_config(**overrides):
    defaults = dict(
        workload=MemcachedWorkload(),
        target_utilization=0.5,
        num_instances=2,
        connections_per_instance=8,
        warmup_samples=100,
        measurement_samples_per_instance=600,
        min_runs=2,
        max_runs=3,
        keep_raw=True,
        seed=1,
    )
    defaults.update(overrides)
    return ProcedureConfig(**defaults)


class TestConfigValidation:
    def test_requires_exactly_one_load_spec(self):
        with pytest.raises(ValueError):
            ProcedureConfig(workload=MemcachedWorkload())
        with pytest.raises(ValueError):
            ProcedureConfig(
                workload=MemcachedWorkload(),
                total_rate_rps=1000,
                target_utilization=0.5,
            )

    def test_primary_quantile_must_be_tracked(self):
        with pytest.raises(ValueError):
            ProcedureConfig(
                workload=MemcachedWorkload(),
                target_utilization=0.5,
                quantiles=(0.5,),
                primary_quantile=0.99,
            )

    def test_zero_instances_rejected(self):
        with pytest.raises(ValueError):
            ProcedureConfig(
                workload=MemcachedWorkload(), target_utilization=0.5, num_instances=0
            )


class TestRunOnce:
    def test_metrics_present_and_ordered(self):
        proc = MeasurementProcedure(quick_config())
        result = proc.run_once(0)
        assert result.metrics[0.5] <= result.metrics[0.95] <= result.metrics[0.99]

    def test_utilization_near_target(self):
        proc = MeasurementProcedure(quick_config(target_utilization=0.5))
        result = proc.run_once(0)
        assert result.server_utilization == pytest.approx(0.5, abs=0.12)

    def test_clients_lightly_utilized(self):
        proc = MeasurementProcedure(quick_config())
        result = proc.run_once(0)
        assert all(u < 0.3 for u in result.client_utilizations.values())

    def test_absolute_rate_mode(self):
        proc = MeasurementProcedure(
            quick_config(target_utilization=None, total_rate_rps=100_000)
        )
        result = proc.run_once(0)
        assert result.metrics[0.5] > 0

    def test_raw_and_ground_truth_available(self):
        proc = MeasurementProcedure(quick_config())
        result = proc.run_once(0)
        assert result.raw_samples().size >= 1200
        assert result.ground_truth().size >= 1200

    def test_independent_runs_differ(self):
        proc = MeasurementProcedure(quick_config())
        a = proc.run_once(0)
        b = proc.run_once(1)
        assert a.metrics[0.99] != b.metrics[0.99]

    def test_same_run_index_reproducible(self):
        proc = MeasurementProcedure(quick_config())
        a = proc.run_once(0)
        b = proc.run_once(0)
        assert a.metrics[0.99] == b.metrics[0.99]


class TestRepeatUntilConverged:
    def test_respects_min_and_max_runs(self):
        proc = MeasurementProcedure(quick_config(min_runs=2, max_runs=3))
        result = proc.run()
        assert 2 <= len(result.runs) <= 3

    def test_estimates_are_across_run_means(self):
        proc = MeasurementProcedure(quick_config())
        result = proc.run()
        per_run = result.per_run(0.99)
        assert result.estimates[0.99] == pytest.approx(np.mean(per_run))

    def test_dispersion_reported(self):
        proc = MeasurementProcedure(quick_config())
        result = proc.run()
        assert result.dispersion[0.99] >= 0.0

    def test_histogram_only_mode_works(self):
        """Without keep_raw, metrics come from the adaptive histogram."""
        proc = MeasurementProcedure(quick_config(keep_raw=False))
        result = proc.run_once(0)
        assert result.metrics[0.99] > result.metrics[0.5] > 0
