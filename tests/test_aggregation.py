"""Unit tests for cross-client aggregation (sound path and pitfall)."""

import numpy as np
import pytest

from repro.core.aggregation import (
    aggregate_quantile,
    client_share_by_latency,
    per_instance_quantiles,
    pooled_quantile,
)


def balanced_clients(seed=0):
    rng = np.random.default_rng(seed)
    return {f"c{i}": rng.exponential(50.0, size=2000) for i in range(4)}


def with_outlier(seed=0):
    samples = balanced_clients(seed)
    rng = np.random.default_rng(seed + 1)
    samples["outlier"] = rng.exponential(50.0, size=2000) + rng.exponential(
        400.0, size=2000
    )
    return samples


class TestPerInstance:
    def test_per_instance_quantiles(self):
        samples = balanced_clients()
        metrics = per_instance_quantiles(samples, 0.99)
        for name, arr in samples.items():
            assert metrics[name] == pytest.approx(np.quantile(arr, 0.99))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            per_instance_quantiles({}, 0.5)
        with pytest.raises(ValueError):
            per_instance_quantiles({"c": []}, 0.5)


class TestAggregateQuantile:
    def test_mean_combiner(self):
        samples = balanced_clients()
        expected = np.mean(
            [np.quantile(a, 0.99) for a in samples.values()]
        )
        assert aggregate_quantile(samples, 0.99, "mean") == pytest.approx(expected)

    def test_median_combiner_robust_to_outlier(self):
        samples = with_outlier()
        med = aggregate_quantile(samples, 0.99, "median")
        outlier_p99 = np.quantile(samples["outlier"], 0.99)
        assert med < outlier_p99 / 2

    def test_unknown_combiner_rejected(self):
        with pytest.raises(ValueError):
            aggregate_quantile(balanced_clients(), 0.5, "harmonic")

    def test_max_min_combiners(self):
        samples = balanced_clients()
        assert aggregate_quantile(samples, 0.5, "max") >= aggregate_quantile(
            samples, 0.5, "min"
        )


class TestPooledQuantileBias:
    def test_pooled_tracks_outlier_client(self):
        """The Fig. 2 bias: the pooled p99 is far above the robust
        per-instance aggregate when one client is skewed."""
        samples = with_outlier()
        pooled = pooled_quantile(samples, 0.99)
        sound = aggregate_quantile(samples, 0.99, "median")
        assert pooled > 1.5 * sound

    def test_pooled_equals_sound_for_identical_clients(self):
        rng = np.random.default_rng(5)
        base = rng.exponential(50.0, size=40_000)
        samples = {f"c{i}": base.copy() for i in range(4)}
        pooled = pooled_quantile(samples, 0.99)
        sound = aggregate_quantile(samples, 0.99, "mean")
        assert pooled == pytest.approx(sound, rel=0.02)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pooled_quantile({}, 0.5)


class TestClientShare:
    def test_shares_sum_to_one_in_occupied_bins(self):
        samples = with_outlier()
        shares = client_share_by_latency(samples, num_bins=30)
        names = [k for k in shares if k != "edges"]
        totals = np.sum([shares[n] for n in names], axis=0)
        occupied = totals > 0
        assert np.allclose(totals[occupied], 1.0)

    def test_outlier_owns_the_tail(self):
        samples = with_outlier()
        shares = client_share_by_latency(samples, num_bins=30)
        # The topmost occupied bins should be dominated by the outlier.
        names = [k for k in shares if k != "edges"]
        totals = np.sum([shares[n] for n in names], axis=0)
        top = np.where(totals > 0)[0][-3:]
        assert shares["outlier"][top].mean() > 0.9

    def test_bad_bins_rejected(self):
        with pytest.raises(ValueError):
            client_share_by_latency(balanced_clients(), num_bins=1)

    def test_edges_ascending(self):
        shares = client_share_by_latency(balanced_clients(), num_bins=20)
        assert (np.diff(shares["edges"]) > 0).all()
