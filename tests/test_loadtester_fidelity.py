"""Fidelity tests: each baseline tool exhibits exactly the Table I
flaws attributed to it, and none it shouldn't have.

These complement test_loadtesters.py (mechanics) by checking the
*diagnosis*: the feature matrix's claims are true of our models.
"""

import numpy as np
import pytest

from repro.core.bench import BenchConfig, TestBench
from repro.loadtesters import (
    FEATURES,
    CloudSuiteTester,
    FabanTester,
    MutilateTester,
    YcsbTester,
)
from repro.workloads.memcached import MemcachedWorkload


def make_bench(seed=0):
    return TestBench(BenchConfig(workload=MemcachedWorkload(), seed=seed))


def run(tester, bench):
    tester.start()
    bench.run_to_completion([tester])
    return tester.report()


class TestInterarrivalRow:
    """Closed-loop tools cap outstanding requests; open-loop ones don't."""

    def max_outstanding_of(self, tester_cls, **kwargs):
        bench = make_bench(seed=44)
        rate = bench.server.arrival_rate_for_utilization(0.85) * 1e6
        tester = tester_cls(bench, rate, measurement_samples=2000, **kwargs)
        run(tester, bench)
        peaks = []
        for client in tester.clients:
            levels, _ = client.controller.tracker.distribution()
            peaks.append(int(levels.max()))
        return sum(peaks), tester

    def test_mutilate_structurally_capped(self):
        total_peak, tester = self.max_outstanding_of(MutilateTester)
        assert total_peak <= tester.max_outstanding
        assert not FEATURES["Query Interarrival Generation"]["Mutilate"]

    def test_ycsb_structurally_capped(self):
        total_peak, tester = self.max_outstanding_of(YcsbTester, threads=16)
        assert total_peak <= 16
        assert not FEATURES["Query Interarrival Generation"]["YCSB"]

    def test_faban_structurally_capped(self):
        total_peak, tester = self.max_outstanding_of(FabanTester)
        assert total_peak <= tester.max_outstanding
        assert not FEATURES["Query Interarrival Generation"]["Faban"]

    def test_cloudsuite_not_capped(self):
        """CloudSuite's flaw is the client, not the controller: its
        open-loop in-flight count can exceed its connection count."""
        bench = make_bench(seed=44)
        # Drive it near (but under) its capacity so queueing builds.
        rate = CloudSuiteTester(
            make_bench(), 1000, measurement_samples=10
        ).clients[0].machine.spec.capacity_rps * 0.9
        tester = CloudSuiteTester(bench, rate, measurement_samples=2000, connections=8)
        run(tester, bench)
        levels, _ = tester.clients[0].controller.tracker.distribution()
        assert levels.max() > 8
        assert FEATURES["Query Interarrival Generation"]["CloudSuite"]


class TestClientQueueingRow:
    """Single-client tools saturate their machine; multi-client don't."""

    def test_cloudsuite_single_client(self):
        bench = make_bench()
        tester = CloudSuiteTester(bench, 1000, measurement_samples=10)
        assert len(tester.clients) == 1
        assert not FEATURES["Client-side Queueing Bias"]["CloudSuite"]

    def test_ycsb_single_client(self):
        bench = make_bench()
        tester = YcsbTester(bench, 1000, measurement_samples=10)
        assert len(tester.clients) == 1
        assert not FEATURES["Client-side Queueing Bias"]["YCSB"]

    def test_mutilate_and_faban_multi_client(self):
        for cls, kwargs in ((MutilateTester, {}), (FabanTester, {})):
            bench = make_bench()
            tester = cls(bench, 10_000, measurement_samples=10, **kwargs)
            assert len(tester.clients) >= 4
            assert FEATURES["Client-side Queueing Bias"][tester.tool.capitalize()
                if tester.tool != "mutilate" else "Mutilate"]


class TestAggregationRow:
    def test_ycsb_quantizes_away_the_microseconds(self):
        bench = make_bench(seed=45)
        rate = bench.server.arrival_rate_for_utilization(0.3) * 1e6
        tester = YcsbTester(bench, rate, measurement_samples=1000)
        report = run(tester, bench)
        raw = np.concatenate(list(report.samples_by_client.values()))
        # True sub-millisecond latencies; reported values cannot
        # distinguish anything below 1 ms.
        assert np.quantile(raw, 0.5) < 500.0
        assert np.unique(report.reported_samples).size < np.unique(raw).size / 10

    def test_mutilate_preserves_raw_samples(self):
        bench = make_bench(seed=45)
        rate = bench.server.arrival_rate_for_utilization(0.3) * 1e6
        tester = MutilateTester(bench, rate, measurement_samples=1000)
        report = run(tester, bench)
        raw = np.concatenate(list(report.samples_by_client.values()))
        assert np.array_equal(np.sort(report.reported_samples), np.sort(raw))
        assert FEATURES["Statistical Aggregation"]["Mutilate"]
