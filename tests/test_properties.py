"""Deeper hypothesis property tests across the core data structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.stats.design import model_matrix
from repro.stats.histogram import AdaptiveHistogram
from repro.stats.quantreg import fit_quantile_regression, pinball_loss


class TestEngineProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_events_always_fire_in_sorted_order(self, times):
        sim = Simulator()
        fired = []
        for t in times:
            sim.at(t, fired.append, t)
        sim.run()
        assert fired == sorted(times)
        assert sim.events_processed == len(times)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=50),
        st.integers(min_value=0, max_value=49),
    )
    @settings(max_examples=50, deadline=None)
    def test_cancellation_removes_exactly_one_event(self, delays, cancel_idx):
        sim = Simulator()
        fired = []
        events = [
            sim.schedule(d, fired.append, i) for i, d in enumerate(delays)
        ]
        victim = cancel_idx % len(events)
        events[victim].cancel()
        sim.run()
        assert victim not in fired
        assert len(fired) == len(delays) - 1


class TestHistogramProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=2000,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_count_and_mean_always_exact(self, data):
        h = AdaptiveHistogram(num_bins=32, calibration_size=8)
        h.extend(data)
        assert h.count == len(data)
        assert h.mean() == pytest.approx(np.mean(data), rel=1e-9, abs=1e-9)
        assert h.min() == min(data)
        assert h.max() == max(data)

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=1e5), min_size=200, max_size=2000
        ),
        st.floats(min_value=0.05, max_value=0.99),
    )
    @settings(max_examples=40, deadline=None)
    def test_binned_quantile_tracks_exact_quantile(self, data, q):
        h = AdaptiveHistogram(num_bins=512, calibration_size=64)
        h.extend(data)
        exact = float(np.quantile(data, q))
        spread = max(data) - min(data)
        # The estimate is within a few bin widths of the exact value.
        tolerance = max(4 * spread / 512, 4 * h.bounds[1] / 512, 1e-6)
        assert abs(h.quantile(q) - exact) <= tolerance + 0.05 * exact


class TestQuantRegProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_saturated_and_lp_agree_on_random_factorials(self, seed):
        rng = np.random.default_rng(seed)
        rows = []
        ys = []
        for a in (0, 1):
            for b in (0, 1):
                n = int(rng.integers(20, 60))
                rows.extend([(a, b)] * n)
                ys.extend(
                    (
                        50.0
                        + 30.0 * a
                        - 10.0 * b
                        + rng.exponential(5.0, size=n)
                    ).tolist()
                )
        X, cols = model_matrix(rows, ["a", "b"])
        y = np.array(ys)
        sat = fit_quantile_regression(X, y, 0.5, method="saturated")
        lp = fit_quantile_regression(X, y, 0.5, method="lp")
        # Both minimize the same piecewise-linear loss; optima may
        # differ within flat regions, so compare losses, not coefs.
        assert sat.loss == pytest.approx(lp.loss, rel=0.01, abs=0.05)

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_pinball_minimized_at_empirical_quantile(self, tau, seed):
        rng = np.random.default_rng(seed)
        y = rng.exponential(10.0, size=400)
        q = float(np.quantile(y, tau))
        at_quantile = pinball_loss(y, np.full_like(y, q), tau)
        for delta in (-2.0, 2.0):
            assert at_quantile <= pinball_loss(
                y, np.full_like(y, q + delta), tau
            ) + 1e-9

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_prediction_interpolates_cell_quantiles(self, seed):
        """For a saturated design, predictions equal the per-cell
        empirical quantiles."""
        rng = np.random.default_rng(seed)
        rows, ys = [], []
        cells = {}
        for a in (0, 1):
            samples = 40.0 + 20.0 * a + rng.normal(0, 3.0, size=50)
            rows.extend([(a,)] * 50)
            ys.extend(samples.tolist())
            cells[a] = np.quantile(samples, 0.5)
        X, _ = model_matrix(rows, ["a"])
        fit = fit_quantile_regression(X, np.array(ys), 0.5, method="saturated")
        for a in (0, 1):
            Xa, _ = model_matrix([(a,)], ["a"])
            assert fit.predict(Xa)[0] == pytest.approx(cells[a], abs=0.7)


class TestModelMatrixProperties:
    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_full_factorial_matrix_always_invertible(self, k):
        import itertools

        runs = list(itertools.product((0, 1), repeat=k))
        X, cols = model_matrix(runs, [f"f{i}" for i in range(k)])
        assert X.shape == (2**k, 2**k)
        assert np.linalg.matrix_rank(X) == 2**k
