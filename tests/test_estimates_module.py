"""Tests for the shared Figs. 7-10 estimates module surface."""

import pytest

from repro.experiments.estimates import (
    EstimatesResult,
    render_estimates,
    render_impacts,
    run_estimates,
)


@pytest.fixture(scope="module")
def result():
    return run_estimates("memcached", scale="quick", seed=17)


class TestEstimatesResult:
    def test_reports_for_both_loads(self, result):
        assert set(result.reports) == {"low", "high"}

    def test_config_label_round_trip(self, result):
        label = result.config_label((1, 0, 1, 0))
        assert label == "numa-high,turbo-low,dvfs-high,nic-low"

    def test_best_config_in_design(self, result):
        best = result.best_config("high")
        assert len(best) == 4
        assert all(c in (0, 1) for c in best)

    def test_factor_impacts_have_all_factors(self, result):
        impacts = result.factor_impacts("high", 0.99)
        assert set(impacts) == {"numa", "turbo", "dvfs", "nic"}

    def test_impacts_consistent_with_estimates(self, result):
        """The average impact equals the mean difference over the
        estimate table — the Figs. 7->8 derivation."""
        import numpy as np

        est = result.config_estimates("high", 0.95)
        manual = np.mean([v for c, v in est.items() if c[1] == 1]) - np.mean(
            [v for c, v in est.items() if c[1] == 0]
        )
        assert result.factor_impacts("high", 0.95)["turbo"] == pytest.approx(manual)

    def test_renders_are_complete(self, result):
        est_text = render_estimates(result, "Figure 7")
        imp_text = render_impacts(result, "Figure 8")
        assert est_text.count("numa-") == 16
        assert all(f in imp_text for f in ("numa", "turbo", "dvfs", "nic"))
        assert "p99 high" in est_text and "p99 high" in imp_text
