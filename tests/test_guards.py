"""Tests for the measurement-validity guard layer (repro.guards) and
the self-healing live driver it audits.

The contract under test, in the order the ISSUE states it:

* every detector **fires on its fixture** and **stays quiet on the
  clean fixture** — a detector you cannot trigger on demand is a
  detector you cannot trust;
* verdicts are **bit-identical across executor backends** (serial /
  process / cluster) because they are computed inside the measurement
  and travel with the pickled result;
* **schema-3 cache entries stay readable**: results written before the
  guard layer come back with ``guards=None`` (un-audited), never an
  AttributeError;
* the **live driver self-heals**: dropped connections reconnect with
  seeded backoff, a stalled-then-recovered endpoint completes as a
  *degraded* run (guard warning) instead of raising, losing too many
  connections raises cleanly, and a wedged endpoint still trips the
  stall-ladder abort;
* **strict enforcement** (``repro.run(spec, strict_guards=True)``, CLI
  ``--strict-guards``) escalates a failed audit to
  ``GuardFailureError`` / exit code 4.
"""

import json
import pickle
import threading

import numpy as np
import pytest

import repro
from repro.exec.cache import ResultCache, cache_version
from repro.exec.executors import execute_specs
from repro.exec.spec import RunSpec
from repro.guards import (
    FAIL,
    PASS,
    SKIP,
    WARN,
    GuardFailureError,
    GuardReport,
    GuardThresholds,
    GuardVerdict,
    available_detectors,
    evaluate_run,
    guard_enforcement,
    guard_thresholds,
)
from repro.guards.fixtures import available_fixtures, fixture, run_fixture
from repro.live import LiveMeasurementError, RefServerConfig, serve_in_thread
from repro.measure import backend_defaults, measure_spec
from repro.workloads import MemcachedWorkload

_SEVERITY = {PASS: 0, SKIP: 0, WARN: 1, FAIL: 2}

#: One measurement per fixture for the whole module — the matrix asserts
#: several properties of the same deterministic result.
_FIXTURE_RESULTS = {}


def fixture_result(name):
    if name not in _FIXTURE_RESULTS:
        _FIXTURE_RESULTS[name] = run_fixture(name)
    return _FIXTURE_RESULTS[name]


def small_spec(**overrides):
    kwargs = dict(
        workload=MemcachedWorkload(),
        total_rate_rps=20_000,
        num_instances=2,
        warmup_samples=100,
        measurement_samples_per_instance=800,
        seed=7,
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


def live_spec(**overrides):
    kwargs = dict(
        workload=MemcachedWorkload(),
        total_rate_rps=2_000.0,
        num_instances=1,
        connections_per_instance=4,
        warmup_samples=30,
        measurement_samples_per_instance=150,
        seed=5,
        backend="live",
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


# ----------------------------------------------------------------------
# verdict / report / threshold units
# ----------------------------------------------------------------------
class TestVerdictApi:
    def test_verdict_validates_status(self):
        with pytest.raises(ValueError, match="status"):
            GuardVerdict(detector="d", status="meh", summary="")

    def test_evidence_is_frozen_and_sorted(self):
        v = GuardVerdict(
            detector="d", status=PASS, summary="", evidence={"b": 2, "a": 1}
        )
        assert v.evidence == (("a", 1), ("b", 2))
        assert v.evidence_dict() == {"a": 1, "b": 2}
        assert hash(v)  # hashable -> safely comparable across pickles

    def test_report_worst_status_wins(self):
        mk = lambda s: GuardVerdict(detector=s, status=s, summary="")
        assert GuardReport(verdicts=(mk(PASS), mk(SKIP))).status == PASS
        assert GuardReport(verdicts=(mk(PASS), mk(WARN))).status == WARN
        assert GuardReport(verdicts=(mk(WARN), mk(FAIL))).status == FAIL
        assert GuardReport(verdicts=(mk(WARN), mk(FAIL))).ok is False
        assert GuardReport(verdicts=(mk(WARN),)).ok is True  # warn passes

    def test_report_format_and_jsonable(self):
        report = GuardReport(
            verdicts=(
                GuardVerdict(
                    detector="thing",
                    status=WARN,
                    summary="drifted",
                    evidence={"z": 1.5},
                ),
            )
        )
        text = report.format(verbose=True)
        assert "guards: warn" in text and "drifted" in text and "z=1.5" in text
        blob = json.dumps(report.to_jsonable())
        assert json.loads(blob)["status"] == "warn"

    def test_thresholds_scope(self):
        from repro.guards import current_thresholds

        base = current_thresholds()
        with guard_thresholds(late_fraction_fail=0.5) as t:
            assert t.late_fraction_fail == 0.5
            assert current_thresholds() is t
        assert current_thresholds() is base

    def test_thresholds_validate(self):
        with pytest.raises(ValueError):
            GuardThresholds(late_fraction_warn=-0.1)
        with pytest.raises(ValueError, match="min_windows"):
            GuardThresholds(min_windows=1)

    def test_enforcement_mode_validates(self):
        from repro.guards import set_guard_enforcement

        with pytest.raises(ValueError, match="mode"):
            set_guard_enforcement("loose")

    def test_detector_errors_become_skip(self):
        # Guards never take down the measurement they audit: a result
        # with a hostile shape yields skip verdicts, not an exception.
        report = evaluate_run(spec=None, result=object())
        assert set(v.detector for v in report.verdicts) == set(
            available_detectors()
        )
        assert report.status in (PASS, SKIP, "pass")


# ----------------------------------------------------------------------
# the detector matrix: every fixture fires, the clean one stays quiet
# ----------------------------------------------------------------------
class TestDetectorMatrix:
    def test_every_detector_has_a_fixture(self):
        covered = {fixture(n).detector for n in available_fixtures()}
        assert set(available_detectors()) <= covered | {""}

    @pytest.mark.parametrize(
        "name", [n for n in available_fixtures() if fixture(n).detector]
    )
    def test_fixture_fires_its_detector(self, name):
        fx, result = fixture_result(name)
        verdict = result.guards.verdict(fx.detector)
        assert verdict is not None, f"{fx.detector} missing from report"
        assert _SEVERITY[verdict.status] >= _SEVERITY[fx.expect_at_least], (
            f"{name}: expected >= {fx.expect_at_least}, got "
            f"{verdict.status} ({verdict.summary})"
        )
        assert verdict.evidence, "a finding must carry evidence"
        assert verdict.pitfall, "a finding must name its pitfall"

    def test_clean_fixture_is_all_quiet(self):
        _, result = fixture_result("clean")
        report = result.guards
        assert report.status == PASS, report.format(verbose=True)
        assert report.failures() == () and report.warnings() == ()

    def test_verdicts_are_deterministic(self):
        # Same fixture twice -> bit-identical GuardReport objects.
        _, a = run_fixture("client_saturation")
        _, b = run_fixture("client_saturation")
        assert a.guards == b.guards
        assert pickle.dumps(a.guards) == pickle.dumps(b.guards)

    def test_coordinated_omission_structural_pass_on_sim(self):
        # The virtual-time simulator cannot coordinate-omit by
        # construction; the detector says so rather than skipping.
        _, result = fixture_result("clean")
        verdict = result.guards.verdict("coordinated_omission")
        assert verdict.status == PASS
        assert "structurally open-loop" in verdict.summary


# ----------------------------------------------------------------------
# executor identity: verdicts ride the pickles
# ----------------------------------------------------------------------
class TestExecutorIdentity:
    def test_guards_identical_across_backends(self):
        from repro.exec.api import make_executor

        spec = small_spec()
        reports = {}
        for backend in ("serial", "process", "cluster"):
            (result,) = execute_specs([spec], make_executor(backend))
            assert result.guards is not None
            reports[backend] = result.guards
        assert reports["serial"] == reports["process"] == reports["cluster"]
        assert (
            pickle.dumps(reports["serial"])
            == pickle.dumps(reports["process"])
            == pickle.dumps(reports["cluster"])
        )


# ----------------------------------------------------------------------
# cache compatibility: pre-guard entries stay readable, un-audited
# ----------------------------------------------------------------------
class TestCacheCompat:
    def test_schema3_entry_backfills_guards(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        result = measure_spec(spec)
        assert result.guards is not None
        entry = cache.put(spec, result)

        # Rewrite the entry as a schema-3 producer would have written
        # it: no guards attribute, no guard tape, version ...:3:...
        old = measure_spec(spec)
        del old.__dict__["guards"]
        for report in old.reports:
            del report.__dict__["phase_windows"]
            del report.__dict__["warmup_tail"]
        payload = pickle.dumps(old, protocol=pickle.HIGHEST_PROTOCOL)
        (entry / "outcome.pkl").write_bytes(payload)
        meta = json.loads((entry / "meta.json").read_text())
        lib, _, spec_schema = cache_version().rsplit(":", 2)
        meta["version"] = f"{lib}:3:{spec_schema}"
        import hashlib

        meta["checksum"] = hashlib.sha256(payload).hexdigest()
        (entry / "meta.json").write_text(json.dumps(meta))

        loaded = cache.get(spec)
        assert loaded is not None, "schema-3 entry must stay readable"
        assert loaded.guards is None  # un-audited, not invented
        for report in loaded.reports:
            assert report.phase_windows.shape == (0, 4)
            assert report.warmup_tail.size == 0
        # Un-audited cached results flow through procedure aggregation.
        assert loaded.metrics == result.metrics

    def test_schema2_entry_is_invalidated(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        entry = cache.put(spec, measure_spec(spec))
        meta = json.loads((entry / "meta.json").read_text())
        lib, _, spec_schema = cache_version().rsplit(":", 2)
        meta["version"] = f"{lib}:2:{spec_schema}"
        (entry / "meta.json").write_text(json.dumps(meta))
        assert cache.get(spec) is None  # deleted, not trusted


# ----------------------------------------------------------------------
# the self-healing live driver
# ----------------------------------------------------------------------
class _FiniteEchoServer:
    """A threaded echo server with a fixed budget: accepts at most
    ``max_accepts`` connections, serves ``serve_per_conn`` responses on
    each, then closes them — after which the endpoint is gone for good.
    """

    def __init__(self, max_accepts: int, serve_per_conn: int):
        import socket

        self.serve_per_conn = serve_per_conn
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.port = self._sock.getsockname()[1]
        self._remaining = max_accepts
        threading.Thread(target=self._accept_loop, daemon=True).start()

    def _accept_loop(self):
        while self._remaining > 0:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self._remaining -= 1
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()
        self._sock.close()

    def _serve(self, conn):
        from repro.live.protocol import decode_request, encode_response

        served = 0
        buf = b""
        try:
            while served < self.serve_per_conn:
                data = conn.recv(4096)
                if not data:
                    return
                buf += data
                while b"\n" in buf and served < self.serve_per_conn:
                    line, buf = buf.split(b"\n", 1)
                    seq = decode_request(line + b"\n")
                    if seq is not None:
                        conn.sendall(encode_response(seq))
                        served += 1
        except OSError:
            pass
        finally:
            conn.close()

    def close(self):
        self._remaining = 0
        try:
            self._sock.close()
        except OSError:
            pass


class TestLiveSelfHealing:
    def run_live(self, target, spec, **options):
        with backend_defaults("live", target=target, **options):
            return measure_spec(spec)

    def test_dropped_connections_reconnect_and_degrade(self):
        # 180 requests over 4 connections is ~45 per connection; a
        # drop_after of 25 guarantees every connection dies (and heals)
        # at least once.
        srv = serve_in_thread(
            RefServerConfig(
                service={"type": "constant", "value": 500.0}, drop_after=25
            )
        )
        try:
            result = self.run_live(srv.target, live_spec())
        finally:
            srv.stop()
        health = result.live_health
        assert health["dropped_connections"] >= 1
        assert health["reconnects"] >= 1
        assert health["lost_connections"] == 0  # healed, not lost
        assert health["degraded"] is True
        verdict = result.guards.verdict("degradation")
        assert verdict.status == WARN
        assert "salvaged" in verdict.summary
        # The measurement itself still completed in full.
        assert sum(r.responses_recorded for r in result.reports) == 150

    def test_stall_plus_dropped_connection_completes_degraded(self):
        # The ISSUE's acceptance scenario: a 250 ms server stall plus a
        # dropped connection mid-run completes as a degraded result
        # (guard warning) instead of raising.
        stall_s = 0.25
        srv = serve_in_thread(
            RefServerConfig(
                service={"type": "constant", "value": 500.0}, drop_after=100
            )
        )
        spec = live_spec(
            total_rate_rps=1_000.0,
            warmup_samples=50,
            measurement_samples_per_instance=500,
        )
        timer = threading.Timer(0.2, srv.stall, args=(stall_s,))
        try:
            timer.start()
            result = self.run_live(srv.target, spec, stall_warn_s=0.1)
        finally:
            timer.cancel()
            srv.stop()
        assert sum(r.responses_recorded for r in result.reports) == 500
        health = result.live_health
        assert health["degraded"] is True
        assert health["dropped_connections"] >= 1
        # Degradation is a warning, never a fail: salvage keeps the
        # result, the audit keeps the evidence.  (Other detectors may
        # independently flag the stall — that is their job.)
        assert result.guards.verdict("degradation").status == WARN

    def test_losing_too_many_connections_raises_cleanly(self):
        # A listener that accepts exactly the initial 4 connections and
        # serves 20 responses on each before closing: every reconnect
        # is refused, losses cross the 25% salvage bound, and the
        # driver must raise rather than keep measuring a shadow of the
        # offered load.  Fully deterministic — no timers.
        srv = _FiniteEchoServer(max_accepts=4, serve_per_conn=20)
        spec = live_spec(measurement_samples_per_instance=3_000)
        try:
            with pytest.raises(LiveMeasurementError, match="lost"):
                with backend_defaults(
                    "live",
                    target=f"tcp://127.0.0.1:{srv.port}",
                    health_probe=False,  # probes would consume accepts
                    reconnect_attempts=2,
                    reconnect_backoff_base_s=0.01,
                    reconnect_backoff_cap_s=0.05,
                    max_lost_connection_fraction=0.25,
                    progress_timeout_s=5.0,
                ):
                    measure_spec(spec)
        finally:
            srv.close()

    def test_health_probe_fails_fast_on_dead_endpoint(self):
        import socket

        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]
        with backend_defaults(
            "live", target=f"tcp://127.0.0.1:{port}", connect_timeout_s=1.0
        ):
            with pytest.raises(LiveMeasurementError, match="cannot connect"):
                measure_spec(live_spec())

    def test_stall_ladder_still_aborts_on_wedged_endpoint(self):
        import socket
        import time

        wedge = socket.create_server(("127.0.0.1", 0))
        port = wedge.getsockname()[1]
        try:
            t0 = time.monotonic()
            with backend_defaults(
                "live",
                target=f"tcp://127.0.0.1:{port}",
                progress_timeout_s=1.0,
                stall_warn_s=0.2,
                stall_probe_s=0.5,
            ):
                with pytest.raises(
                    LiveMeasurementError, match="no response progress"
                ):
                    measure_spec(live_spec())
            assert time.monotonic() - t0 < 5.0
        finally:
            wedge.close()

    def test_watchdog_options_reachable_and_validated(self):
        from repro.live.driver import LiveOptions

        opts = LiveOptions(stall_warn_s=0.5, stall_probe_s=2.0)
        assert opts.stall_warn_s == 0.5
        with pytest.raises(ValueError):
            LiveOptions(max_lost_connection_fraction=1.5)
        with pytest.raises(ValueError):
            LiveOptions(reconnect_attempts=-1)

    def test_clean_live_run_not_degraded(self):
        srv = serve_in_thread(
            RefServerConfig(service={"type": "constant", "value": 500.0})
        )
        try:
            result = self.run_live(srv.target, live_spec())
        finally:
            srv.stop()
        assert result.live_health["degraded"] is False
        assert result.guards.verdict("degradation").status == PASS


class TestRefServerMisbehaviorModes:
    def test_config_validates(self):
        with pytest.raises(ValueError):
            RefServerConfig(drop_after=-1)
        with pytest.raises(ValueError):
            RefServerConfig(accept_delay_s=-0.1)
        with pytest.raises(ValueError):
            RefServerConfig(drift_us_per_request=-1.0)

    def test_service_drift_ramps(self):
        from repro.live.refserver import ReferenceServer

        srv = ReferenceServer(
            RefServerConfig(
                service={"type": "constant", "value": 100.0},
                drift_us_per_request=10.0,
            )
        )
        first = srv._completion_time(0.0)
        srv.requests_seen = 1_000
        later = srv._completion_time(0.0)
        assert later - first == pytest.approx(10.0 * 1_000 * 1e-6, rel=0.01)


# ----------------------------------------------------------------------
# strict enforcement: facade and CLI
# ----------------------------------------------------------------------
class TestStrictEnforcement:
    def test_facade_strict_raises_on_failing_fixture(self):
        from repro.guards.fixtures import build_fixture_spec

        spec = build_fixture_spec("client_saturation")
        with pytest.raises(GuardFailureError, match="client_saturation"):
            repro.run(spec, strict_guards=True)
        # Advisory (the default) returns the result, verdicts attached.
        result = repro.run(spec)
        assert result.guards.verdict("client_saturation").status == FAIL

    def test_enforcement_scope_raises_inside_measure(self):
        from repro.guards.fixtures import build_fixture_spec

        spec = build_fixture_spec("client_saturation")
        with guard_enforcement("strict"):
            with pytest.raises(GuardFailureError):
                measure_spec(spec)
        measure_spec(spec)  # advisory again outside the scope

    def test_cli_strict_guards_exit_code_4(self):
        from repro.cli import main

        assert (
            main(["guards", "run", "coordinated_omission", "--strict-guards"])
            == 4
        )

    def test_cli_guards_selftest_passes(self, capsys):
        from repro.cli import main

        assert main(["guards", "run", "coordinated_omission", "clean"]) == 0
        out = capsys.readouterr().out
        assert "[ok ]" in out and "MISS" not in out

    def test_cli_guards_list(self, capsys):
        from repro.cli import main

        assert main(["guards", "list"]) == 0
        out = capsys.readouterr().out
        for name in available_detectors():
            assert name in out

    def test_procedure_surfaces_guard_status(self):
        # ProcedureResult rolls per-run audits up to one status.
        from repro.core.procedure import (
            MeasurementProcedure,
            ProcedureConfig,
        )

        proc = MeasurementProcedure(
            ProcedureConfig(
                workload=MemcachedWorkload(),
                target_utilization=0.3,
                num_instances=2,
                warmup_samples=100,
                measurement_samples_per_instance=600,
                min_runs=2,
                max_runs=2,
            )
        )
        result = proc.run()
        assert result.guards_status in (PASS, WARN, FAIL)
        for run_index, verdict in result.guard_findings():
            assert isinstance(run_index, int)
            assert verdict.status in (WARN, FAIL)
