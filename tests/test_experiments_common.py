"""Tests for experiment machinery: scales, caching, rendering."""

import numpy as np
import pytest

from repro.experiments.common import (
    HIGH_LOAD,
    LOW_LOAD,
    SCALES,
    attribution_report,
    format_table,
    get_scale,
    make_workload,
)
from repro.workloads.mcrouter import McrouterWorkload
from repro.workloads.memcached import MemcachedWorkload


class TestScales:
    def test_three_presets(self):
        assert set(SCALES) == {"quick", "default", "paper"}

    def test_paper_scale_matches_paper_replications(self):
        assert SCALES["paper"].replications >= 30

    def test_scales_strictly_ordered_by_cost(self):
        def cost(s):
            return s.replications * s.instances * s.samples_per_instance

        assert cost(SCALES["quick"]) < cost(SCALES["default"]) < cost(SCALES["paper"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            get_scale("giga")

    def test_loads_match_paper_regime(self):
        assert 0 < LOW_LOAD < HIGH_LOAD < 1
        assert HIGH_LOAD == pytest.approx(0.7)  # Table IV's operating point


class TestMakeWorkload:
    def test_known_workloads(self):
        assert isinstance(make_workload("memcached"), MemcachedWorkload)
        assert isinstance(make_workload("mcrouter"), McrouterWorkload)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_workload("redis")


class TestStudyCache:
    def test_same_key_returns_same_object(self):
        a = attribution_report("memcached", 0.6, scale="quick", seed=99, taus=(0.5,))
        b = attribution_report("memcached", 0.6, scale="quick", seed=99, taus=(0.5,))
        assert a is b

    def test_different_seed_different_study(self):
        a = attribution_report("memcached", 0.6, scale="quick", seed=99, taus=(0.5,))
        b = attribution_report("memcached", 0.6, scale="quick", seed=98, taus=(0.5,))
        assert a is not b


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.2345], ["b", 12345.6]],
            title="My Table",
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]

    def test_float_formatting_rules(self):
        text = format_table(["v"], [[123.456], [1.234], [0.00123], [float("nan")]])
        assert "123" in text
        assert "1.2" in text
        assert "0.00123" in text
        assert "nan" in text

    def test_handles_non_numeric_cells(self):
        text = format_table(["a", "b"], [["x", True], ["y", None]])
        assert "True" in text and "None" in text
