"""Batched-RNG determinism: the hot path's batching invariant.

The vectorized hot path rests on one property — a block of ``n``
variates drawn from a stream is bit-identical to ``n`` sequential
scalar draws from the same stream — so block size can never change
results.  These tests pin that property at every layer: arrival
processes, workload distributions, :class:`BlockStream`, the workload
samplers, a full end-to-end run, and a frozen golden digest guarding
the whole pipeline against silent drift.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.core.arrival import (
    BurstyArrivals,
    DeterministicArrivals,
    LognormalArrivals,
    PoissonArrivals,
)
from repro.core.bench import BenchConfig, TestBench
from repro.core.treadmill import TreadmillConfig, TreadmillInstance
from repro.exec.spec import RunSpec, run_spec
from repro.workloads.generators import (
    Constant,
    Discrete,
    Exponential,
    GeneralizedPareto,
    Lognormal,
    OperationMix,
    Uniform,
)
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.sampling import BlockStream

SEEDS = [0, 7, 1234]

ARRIVAL_FACTORIES = [
    lambda: PoissonArrivals(50_000.0),
    lambda: DeterministicArrivals(50_000.0),
    lambda: LognormalArrivals(50_000.0, cv=1.5),
    lambda: BurstyArrivals(50_000.0, burst_factor=4.0, burst_fraction=0.2),
]

DISTRIBUTIONS = [
    Constant(5.0),
    Uniform(1.0, 9.0),
    Exponential(4.0),
    Lognormal(mean=100.0, sigma=1.0),
    GeneralizedPareto(scale=10.0, alpha=2.5),
    Discrete([1.0, 2.0, 8.0], [0.5, 0.3, 0.2]),
]


class TestArrivalBatchingInvariant:
    """next_gaps_us(rng, n) == n sequential next_gap_us calls, bit for bit."""

    @pytest.mark.parametrize("make", ARRIVAL_FACTORIES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_block_equals_sequential(self, make, seed):
        # Fresh process objects on both sides: BurstyArrivals carries
        # mutable phase state that must evolve identically.
        batched = make().next_gaps_us(np.random.default_rng(seed), 257)
        scalar_proc = make()
        rng = np.random.default_rng(seed)
        scalar = [scalar_proc.next_gap_us(rng) for _ in range(257)]
        assert batched.tolist() == scalar

    @pytest.mark.parametrize("make", ARRIVAL_FACTORIES)
    def test_block_size_split_irrelevant(self, make):
        # Drawing 7 then 13 must equal drawing 20 at once (induction
        # step of the invariant: refill boundaries cannot matter).
        a_proc, rng_a = make(), np.random.default_rng(99)
        split = np.concatenate(
            [a_proc.next_gaps_us(rng_a, 7), a_proc.next_gaps_us(rng_a, 13)]
        )
        whole = make().next_gaps_us(np.random.default_rng(99), 20)
        assert split.tolist() == whole.tolist()

    @pytest.mark.parametrize("make", ARRIVAL_FACTORIES)
    def test_rejects_empty_block(self, make):
        with pytest.raises(ValueError):
            make().next_gaps_us(np.random.default_rng(0), 0)


class TestDistributionBlockInvariant:
    @pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=lambda d: type(d).__name__)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_block_equals_sequential(self, dist, seed):
        batched = dist.sample_block(np.random.default_rng(seed), 129)
        rng = np.random.default_rng(seed)
        scalar = [dist.sample(rng) for _ in range(129)]
        assert list(batched) == scalar

    @pytest.mark.parametrize("seed", SEEDS)
    def test_operation_mix_block_equals_sequential(self, seed):
        mix = OperationMix({"get": 0.9, "set": 0.1})
        batched = mix.sample_block(np.random.default_rng(seed), 200)
        rng = np.random.default_rng(seed)
        assert batched == [mix.sample(rng) for _ in range(200)]


class TestBlockStream:
    @pytest.mark.parametrize("block", [1, 3, 512])
    def test_stream_matches_direct_draws(self, block):
        dist = Exponential(4.0)
        stream = BlockStream(dist.sample_block, np.random.default_rng(5), block)
        rng = np.random.default_rng(5)
        got = [stream.next() for _ in range(100)]
        # Scalar reference must consume the stream in block-sized
        # chunks too — that IS the equivalence under test: the chunked
        # consumption equals the unchunked one.
        want = [dist.sample(rng) for _ in range(100)]
        assert got == want

    def test_accounting(self):
        stream = BlockStream(Constant(1.0).sample_block, np.random.default_rng(0), 10)
        assert stream.draws == 0 and stream.hit_rate == 0.0
        for _ in range(25):
            stream.next()
        assert stream.draws == 25
        assert stream.refills == 3  # two full blocks + one partial
        assert stream.hit_rate == pytest.approx(1.0 - 3 / 25)

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            BlockStream(Constant(1.0).sample_block, np.random.default_rng(0), 0)


class TestSamplerBlockInvariance:
    """Workload samplers: block size must not change the value stream."""

    @staticmethod
    def _requests(block, n=150):
        wl = MemcachedWorkload()
        streams = {}

        def factory(purpose):
            seed = int(hashlib.sha256(purpose.encode()).hexdigest()[:8], 16)
            return streams.setdefault(purpose, np.random.default_rng(seed))

        sampler = wl.request_sampler(
            np.random.default_rng(1), stream_factory=factory, block=block
        )
        return [sampler(i, 0) for i in range(n)]

    @pytest.mark.parametrize("block", [1, 17])
    def test_request_sampler_block_invariant(self, block):
        base = self._requests(512)
        other = self._requests(block)
        for a, b in zip(base, other):
            assert (a.op, a.key_size, a.value_size, a.request_bytes) == (
                b.op,
                b.key_size,
                b.value_size,
                b.request_bytes,
            )

    @pytest.mark.parametrize("block", [1, 17])
    def test_profile_sampler_block_invariant(self, block):
        wl = MemcachedWorkload()
        reqs = self._requests(512)
        base = wl.profile_sampler(np.random.default_rng(2), block=512)
        other = wl.profile_sampler(np.random.default_rng(2), block=block)
        for req in reqs:
            assert base(req) == other(req)


class TestEndToEndBlockInvariance:
    """Two identical benches differing only in rng_block give identical runs."""

    @staticmethod
    def _run(rng_block):
        bench = TestBench(
            BenchConfig(workload=MemcachedWorkload(), seed=3), run_index=0
        )
        inst = TreadmillInstance(
            bench,
            "client0",
            TreadmillConfig(
                rate_rps=20_000.0,
                connections=4,
                warmup_samples=50,
                measurement_samples=400,
                keep_raw=True,
                rng_block=rng_block,
            ),
        )
        inst.start()
        bench.run_to_completion([inst])
        return inst.report()

    def test_metrics_identical_across_block_sizes(self):
        a = self._run(1)
        b = self._run(512)
        assert a.requests_sent == b.requests_sent
        assert a.responses_recorded == b.responses_recorded
        assert np.asarray(a.raw_samples).tolist() == np.asarray(b.raw_samples).tolist()
        assert (
            a.ground_truth_samples.tolist() == b.ground_truth_samples.tolist()
        )
        qs = [0.5, 0.9, 0.99]
        assert a.quantiles(qs) == b.quantiles(qs)


class TestGoldenDigest:
    """Frozen end-to-end digest: any change to the sampled value stream,
    the event ordering, or metric extraction shows up here.

    If this fails after an *intentional* semantic change, bump
    ``SPEC_SCHEMA`` in repro/exec/spec.py, document the drift there,
    and refreeze the digest below.
    """

    #: Schema-4 refreeze (partitionable kernel): per-source-host spine
    #: streams, instance self-stop at the final sample, deterministic
    #: antagonist shutdown — see the SPEC_SCHEMA changelog.
    GOLDEN = "fa6210374f2a5de0"

    #: The declarative twin of ``golden_spec()``: a 1-fleet x 1-pool
    #: scenario the compiler must lower to the *same* plain RunSpec —
    #: same digest, same cache key, same golden result digest.
    GOLDEN_SCENARIO = {
        "name": "degenerate",
        "seed": 11,
        "keep_raw": True,
        "pools": [{"name": "pool", "workload": {"workload": "memcached"}}],
        "fleets": [
            {
                "name": "fl",
                "target": "pool",
                "instances": 2,
                "connections_per_instance": 4,
                "target_utilization": 0.6,
                "warmup_samples": 100,
                "measurement_samples_per_instance": 500,
            }
        ],
    }

    @staticmethod
    def golden_spec() -> RunSpec:
        return RunSpec(
            workload=MemcachedWorkload(),
            target_utilization=0.6,
            num_instances=2,
            connections_per_instance=4,
            warmup_samples=100,
            measurement_samples_per_instance=500,
            keep_raw=True,
            seed=11,
        )

    @staticmethod
    def result_digest(result) -> str:
        blob = json.dumps(
            {
                "metrics": {repr(q): repr(v) for q, v in result.metrics.items()},
                "events": result.events_processed,
                "server_utilization": repr(result.server_utilization),
                "raw": [repr(x) for x in result.raw_samples().tolist()],
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    #: Frozen *spec* digest (the cache/dedup key).  Digest-neutral
    #: fields (``backend`` when "sim", ``scenario`` when None,
    #: ``partitions`` always) are excluded, so specs differing only in
    #: execution strategy share this digest and its cache entries.
    #: Refrozen at SPEC_SCHEMA 4 (partitionable kernel).
    GOLDEN_SPEC_DIGEST = (
        "1b5355e9ef8e2c9d3ef3144e723bb8c496b4a954db782251f275327f0b509006"
    )

    def test_full_run_digest_is_frozen(self):
        assert self.result_digest(run_spec(self.golden_spec())) == self.GOLDEN

    def test_spec_digest_is_frozen(self):
        assert self.golden_spec().digest() == self.GOLDEN_SPEC_DIGEST

    def test_backend_field_is_digest_neutral(self):
        explicit = self.golden_spec().replace(backend="sim")
        assert explicit.digest() == self.GOLDEN_SPEC_DIGEST

    def test_non_default_backend_changes_the_spec_digest(self):
        live = self.golden_spec().replace(backend="live")
        assert live.digest() != self.GOLDEN_SPEC_DIGEST

    def test_degenerate_scenario_lowers_to_the_golden_spec(self):
        """The bit-identity guarantee of the scenario compiler: the
        degenerate 1x1 scenario *is* the golden RunSpec — digest
        equality means cache entries and results are shared."""
        from repro.scenarios import compile_scenario, scenario_from_json

        (lowered,) = compile_scenario(scenario_from_json(self.GOLDEN_SCENARIO))
        assert lowered.scenario is None
        assert lowered.digest() == self.golden_spec().digest()

    def test_degenerate_scenario_reproduces_the_golden_digest(self):
        from repro.scenarios import compile_scenario, scenario_from_json

        (lowered,) = compile_scenario(scenario_from_json(self.GOLDEN_SCENARIO))
        assert self.result_digest(run_spec(lowered)) == self.GOLDEN
