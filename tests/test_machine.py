"""Unit tests for server and client machine assembly."""

import math

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.kernel import KernelConfig
from repro.sim.machine import ClientMachine, ClientSpec, HardwareSpec, ServerMachine
from repro.sim.rng import RngRegistry
from repro.workloads.base import Request
from repro.workloads.memcached import MemcachedWorkload


def make_server(seed=0, spec=None, workload=None):
    sim = Simulator()
    reg = RngRegistry(seed)
    server = ServerMachine(
        sim,
        spec or HardwareSpec(),
        workload or MemcachedWorkload(service_noise_sigma=0.0),
        reg.child("server"),
    )
    return sim, server


def simple_request(req_id=0, conn_id=0):
    return Request(req_id=req_id, conn_id=conn_id, op="get", value_size=100)


class TestHardwareSpec:
    def test_describe_has_table2_rows(self):
        rows = HardwareSpec().describe()
        assert set(rows) == {"Processor", "DRAM", "Ethernet", "Kernel"}


class TestServerLifecycle:
    def test_accept_before_boot_rejected(self):
        _, server = make_server()
        with pytest.raises(RuntimeError):
            server.accept(0)

    def test_duplicate_connection_rejected(self):
        _, server = make_server()
        server.boot()
        server.accept(0)
        with pytest.raises(ValueError):
            server.accept(0)

    def test_unknown_connection_rejected(self):
        sim, server = make_server()
        server.boot()
        with pytest.raises(KeyError):
            server.receive(simple_request(conn_id=99), lambda r: None)

    def test_boot_assigns_workers_round_robin(self):
        _, server = make_server()
        server.boot()
        conns = [server.accept(i) for i in range(server.spec.cpu.total_cores)]
        cores = {c.worker_core.index for c in conns}
        assert len(cores) == server.spec.cpu.total_cores

    def test_reboot_clears_connections(self):
        _, server = make_server()
        server.boot()
        server.accept(0)
        server.boot()
        server.accept(0)  # no duplicate error: state was cleared


class TestBootHysteresis:
    def test_boot_quality_varies_across_boots(self):
        qualities = set()
        for seed in range(6):
            _, server = make_server(seed=seed)
            server.boot()
            qualities.add(round(server.boot_quality, 6))
        assert len(qualities) > 1

    def test_boot_quality_near_one(self):
        _, server = make_server(seed=1)
        server.boot()
        assert 0.9 < server.boot_quality < 1.1

    def test_zero_sigma_gives_exactly_one(self):
        spec = HardwareSpec(boot_quality_sigma=0.0)
        _, server = make_server(spec=spec)
        server.boot()
        assert server.boot_quality == 1.0

    def test_thread_mapping_shuffled_per_seed(self):
        orders = set()
        for seed in range(6):
            _, server = make_server(seed=seed)
            server.boot()
            conns = [server.accept(i) for i in range(4)]
            orders.add(tuple(c.worker_core.index for c in conns))
        assert len(orders) > 1


class TestRequestPipeline:
    def run_request(self, seed=0):
        sim, server = make_server(seed=seed)
        server.boot()
        server.accept(0)
        done = []
        req = simple_request()
        sim.schedule(1.0, server.receive, req, lambda r: done.append(r))
        sim.run()
        return req, done

    def test_response_callback_fires(self):
        req, done = self.run_request()
        assert done == [req]

    def test_timestamps_monotone(self):
        req, _ = self.run_request()
        assert (
            req.t_server_nic_in
            <= req.t_service_start
            <= req.t_service_end
            <= req.t_server_nic_out
        )

    def test_server_latency_positive(self):
        req, _ = self.run_request()
        assert req.server_latency_us > 0

    def test_requests_served_counter(self):
        sim, server = make_server()
        server.boot()
        server.accept(0)
        for i in range(5):
            sim.schedule(
                i * 100.0, server.receive, simple_request(req_id=i), lambda r: None
            )
        sim.run()
        assert server.requests_served == 5

    def test_mcrouter_two_phase_pipeline(self):
        from repro.workloads.mcrouter import McrouterWorkload

        sim, server = make_server(workload=McrouterWorkload(service_noise_sigma=0.0))
        server.boot()
        server.accept(0)
        req = simple_request()
        done = []
        sim.schedule(0.0, server.receive, req, lambda r: done.append(r))
        sim.run()
        assert done
        # Two-phase service spans the backend wait.
        assert req.t_service_end - req.t_service_start > 0


class TestUtilizationSizing:
    def test_rate_positive_and_monotone_in_target(self):
        _, server = make_server()
        low = server.arrival_rate_for_utilization(0.1)
        high = server.arrival_rate_for_utilization(0.8)
        assert 0 < low < high

    def test_invalid_utilization_rejected(self):
        _, server = make_server()
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                server.arrival_rate_for_utilization(bad)

    def test_measured_utilization_zero_before_any_work(self):
        sim, server = make_server()
        assert server.measured_utilization() == 0.0


class TestClientMachine:
    def make_client(self, spec=None):
        sim = Simulator()
        wire = []
        client = ClientMachine(
            sim,
            spec or ClientSpec(),
            "c0",
            send_packet=wire.append,
        )
        return sim, client, wire

    def test_issue_stamps_user_send_time(self):
        sim, client, wire = self.make_client()
        req = simple_request()
        sim.schedule(3.0, client.issue, req)
        sim.run()
        assert req.t_user_send == pytest.approx(3.0)

    def test_tx_path_applies_cpu_then_kernel(self):
        spec = ClientSpec(tx_cpu_us=2.0, rx_cpu_us=2.0)
        sim, client, wire = self.make_client(spec)
        req = simple_request()
        client.issue(req)
        sim.run()
        expected = spec.tx_cpu_us + spec.kernel.client_tx_us
        assert req.t_nic_send == pytest.approx(expected)
        assert wire == [req]

    def test_rx_path_kernel_then_cpu(self):
        spec = ClientSpec(tx_cpu_us=1.0, rx_cpu_us=2.0)
        sim, client, _ = self.make_client(spec)
        req = simple_request()
        got = []
        client.response_handler = got.append
        client.deliver(req)
        sim.run()
        assert got == [req]
        assert req.t_user_recv - req.t_nic_recv == pytest.approx(
            spec.kernel.client_rx_us + spec.rx_cpu_us
        )

    def test_client_queueing_inflates_latency(self):
        """The CloudSuite mechanism: a backlogged generator thread
        delays both sends and receive callbacks."""
        spec = ClientSpec(tx_cpu_us=10.0, rx_cpu_us=10.0)
        sim, client, wire = self.make_client(spec)
        reqs = [simple_request(req_id=i) for i in range(10)]
        for r in reqs:
            client.issue(r)  # all at t=0: queue on the client core
        sim.run()
        # The last request's NIC timestamp reflects 10 queued tx costs.
        assert reqs[-1].t_nic_send >= 10 * spec.tx_cpu_us

    def test_capacity_rps(self):
        spec = ClientSpec(tx_cpu_us=4.0, rx_cpu_us=6.0)
        assert spec.capacity_rps == pytest.approx(1e6 / 10.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            ClientSpec(tx_cpu_us=-1.0)

    def test_kernel_round_trip_constant(self):
        k = KernelConfig()
        assert k.client_round_trip_us == pytest.approx(
            k.client_tx_us + k.client_rx_us
        )
