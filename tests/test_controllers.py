"""Unit tests for open/closed-loop controllers and the tracker."""

import numpy as np
import pytest

from repro.core.arrival import DeterministicArrivals, PoissonArrivals
from repro.core.controllers import (
    ClosedLoopController,
    OpenLoopController,
    OutstandingTracker,
)
from repro.sim.engine import Simulator


class FakeServer:
    """Responds to sends after a fixed delay."""

    def __init__(self, sim, controller_ref, latency_us=50.0):
        self.sim = sim
        self.latency_us = latency_us
        self.controller_ref = controller_ref

    def send(self, conn_id):
        self.sim.schedule(
            self.latency_us, lambda: self.controller_ref[0].on_response(conn_id)
        )


class TestOutstandingTracker:
    def test_time_weighted_distribution(self):
        sim = Simulator()
        t = OutstandingTracker(sim)
        t.increment()  # count 1 from t=0
        sim.run_until(10.0)
        t.increment()  # count 2 from t=10
        sim.run_until(30.0)
        t.decrement()  # count 1 from t=30
        sim.run_until(40.0)
        t.finalize()
        levels, probs = t.distribution()
        dist = dict(zip(levels.tolist(), probs.tolist()))
        assert dist[1] == pytest.approx(20 / 40)
        assert dist[2] == pytest.approx(20 / 40)

    def test_negative_count_rejected(self):
        sim = Simulator()
        t = OutstandingTracker(sim)
        with pytest.raises(ValueError):
            t.decrement()

    def test_cdf_monotone_and_ends_at_one(self):
        sim = Simulator()
        t = OutstandingTracker(sim)
        for _ in range(3):
            t.increment()
            sim.run_until(sim.now + 5.0)
        t.finalize()
        levels, cdf = t.cdf()
        assert (np.diff(cdf) >= 0).all()
        assert cdf[-1] == pytest.approx(1.0)

    def test_mean_and_quantile(self):
        sim = Simulator()
        t = OutstandingTracker(sim)
        t.increment()
        sim.run_until(100.0)
        t.finalize()
        assert t.mean() == pytest.approx(1.0)
        assert t.quantile(0.5) == 1


class TestOpenLoop:
    def build(self, rate=100_000, latency=50.0, arrival=None):
        sim = Simulator()
        ref = []
        server = FakeServer(sim, ref, latency_us=latency)
        ctrl = OpenLoopController(
            sim,
            arrival or PoissonArrivals(rate),
            server.send,
            connections=list(range(4)),
            rng=np.random.default_rng(0),
        )
        ref.append(ctrl)
        return sim, ctrl

    def test_sends_at_configured_rate(self):
        sim, ctrl = self.build(rate=100_000)
        ctrl.start()
        sim.run_until(100_000.0)  # 0.1 s
        expected = 100_000 * 0.1
        assert ctrl.sent == pytest.approx(expected, rel=0.1)
        ctrl.stop()
        sim.run()

    def test_send_schedule_independent_of_latency(self):
        """The open-loop property: server slowness must not slow sends."""
        sent = {}
        for latency in (10.0, 10_000.0):
            sim, ctrl = self.build(rate=50_000, latency=latency)
            ctrl.start()
            sim.run_until(50_000.0)
            sent[latency] = ctrl.sent
            ctrl.stop()
            sim.run()
        assert sent[10.0] == sent[10_000.0]

    def test_outstanding_unbounded_when_server_slow(self):
        sim, ctrl = self.build(rate=100_000, latency=5_000.0)
        ctrl.start()
        sim.run_until(20_000.0)
        # 0.1/us * 5000us = ~500 outstanding on average.
        assert ctrl.tracker.count > 100
        ctrl.stop()
        sim.run()

    def test_stop_halts_sending(self):
        sim, ctrl = self.build()
        ctrl.start()
        sim.run_until(1_000.0)
        ctrl.stop()
        sent = ctrl.sent
        sim.run()
        assert ctrl.sent == sent
        assert ctrl.completed == sent

    def test_double_start_rejected(self):
        sim, ctrl = self.build()
        ctrl.start()
        with pytest.raises(RuntimeError):
            ctrl.start()

    def test_empty_connections_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            OpenLoopController(
                sim, PoissonArrivals(1000), lambda c: None, [], np.random.default_rng(0)
            )

    def test_deterministic_arrival_precise_spacing(self):
        sim, ctrl = self.build(rate=10_000, arrival=DeterministicArrivals(10_000))
        ctrl.start()
        sim.run_until(10_000.0)
        assert ctrl.sent == pytest.approx(100, abs=2)
        ctrl.stop()
        sim.run()


class TestClosedLoop:
    def build(self, connections=4, latency=50.0, target_rate=None, think=0.0):
        sim = Simulator()
        ref = []
        server = FakeServer(sim, ref, latency_us=latency)
        ctrl = ClosedLoopController(
            sim,
            server.send,
            connections=list(range(connections)),
            rng=np.random.default_rng(0),
            think_time_us=think,
            target_rate_rps=target_rate,
        )
        ref.append(ctrl)
        return sim, ctrl

    def test_outstanding_capped_at_connection_count(self):
        """Fig. 1's structural truncation."""
        sim, ctrl = self.build(connections=4, latency=10_000.0)
        ctrl.start()
        sim.run_until(100_000.0)
        ctrl.tracker.finalize()
        levels, _ = ctrl.tracker.distribution()
        assert levels.max() <= 4
        ctrl.stop()
        sim.run()

    def test_throughput_limited_by_connections_and_latency(self):
        """Closed-loop max rate = N / latency, whatever the target."""
        sim, ctrl = self.build(connections=4, latency=100.0, target_rate=1e9)
        ctrl.start()
        sim.run_until(100_000.0)
        # 4 connections / 100us = 40k/s max -> 4000 in 0.1s.
        assert ctrl.sent <= 4200
        ctrl.stop()
        sim.run()

    def test_pacing_approximates_target_rate_when_feasible(self):
        sim, ctrl = self.build(connections=16, latency=50.0, target_rate=20_000)
        ctrl.start()
        sim.run_until(1_000_000.0)
        achieved = ctrl.completed / 1.0  # per second
        assert achieved == pytest.approx(20_000, rel=0.15)
        ctrl.stop()
        sim.run()

    def test_think_time_reduces_rate(self):
        rates = {}
        for think in (0.0, 200.0):
            sim, ctrl = self.build(connections=4, latency=50.0, think=think)
            ctrl.start()
            sim.run_until(100_000.0)
            rates[think] = ctrl.sent
            ctrl.stop()
            sim.run()
        assert rates[200.0] < rates[0.0]

    def test_stop_cancels_pending_thinks(self):
        sim, ctrl = self.build(connections=2, latency=10.0, think=1_000.0)
        ctrl.start()
        sim.run_until(5_000.0)
        ctrl.stop()
        sim.run()
        assert ctrl.tracker.count == 0

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ClosedLoopController(sim, lambda c: None, [], np.random.default_rng(0))
        with pytest.raises(ValueError):
            ClosedLoopController(
                sim, lambda c: None, [0], np.random.default_rng(0), think_time_us=-1
            )
        with pytest.raises(ValueError):
            ClosedLoopController(
                sim, lambda c: None, [0], np.random.default_rng(0), target_rate_rps=0
            )

    def test_max_outstanding_property(self):
        sim, ctrl = self.build(connections=7)
        assert ctrl.max_outstanding == 7
