"""Tests for the SLO capacity planner."""

import pytest

from repro.core.capacity import find_max_load
from repro.workloads.memcached import MemcachedWorkload


@pytest.fixture(scope="module")
def search():
    return find_max_load(
        MemcachedWorkload(),
        slo_us=160.0,
        quantile=0.99,
        tolerance=0.06,
        runs_per_probe=2,
        samples_per_instance=1000,
        seed=3,
    )


class TestSearch:
    def test_finds_a_feasible_operating_point(self, search):
        assert search.feasible
        assert 0.05 <= search.max_utilization < 0.92

    def test_operating_point_meets_slo(self, search):
        assert search.achieved_us <= search.slo_us
        assert 0.0 <= search.headroom_pct() <= 100.0

    def test_probes_monotone_in_load(self, search):
        """Within the bisection trace, higher utilization probes show
        higher (or comparable) tails — the monotonicity the search
        relies on, checked loosely against run noise."""
        probes = sorted(search.probes, key=lambda p: p.utilization)
        assert probes[-1].metric_us > probes[0].metric_us

    def test_bisection_brackets_the_boundary(self, search):
        """The best feasible point must sit below some infeasible probe."""
        infeasible = [p for p in search.probes if not p.meets_slo]
        assert infeasible
        assert all(p.utilization > search.max_utilization for p in infeasible)

    def test_probe_count_bounded_by_bisection(self, search):
        # lo + hi + at most ceil(log2((hi-lo)/tol)) midpoints.
        assert len(search.probes) <= 2 + 5


class TestEdges:
    def test_infeasible_slo(self):
        result = find_max_load(
            MemcachedWorkload(),
            slo_us=10.0,  # below the kernel path alone
            tolerance=0.2,
            runs_per_probe=1,
            samples_per_instance=400,
            seed=4,
        )
        assert not result.feasible
        assert result.max_utilization == 0.0

    def test_trivially_feasible_slo(self):
        result = find_max_load(
            MemcachedWorkload(),
            slo_us=100_000.0,
            tolerance=0.2,
            runs_per_probe=1,
            samples_per_instance=400,
            seed=5,
        )
        assert result.feasible
        assert result.max_utilization == pytest.approx(0.92)
        assert len(result.probes) == 2  # lo + hi, no bisection needed

    def test_validation(self):
        wl = MemcachedWorkload()
        with pytest.raises(ValueError):
            find_max_load(wl, slo_us=0.0)
        with pytest.raises(ValueError):
            find_max_load(wl, slo_us=100.0, quantile=1.5)
        with pytest.raises(ValueError):
            find_max_load(wl, slo_us=100.0, lo=0.9, hi=0.5)
        with pytest.raises(ValueError):
            find_max_load(wl, slo_us=100.0, tolerance=0.0)
