"""Tests for machine telemetry (and mechanism-level verification of
the NIC-affinity and thermal behaviours it exists to expose)."""

import dataclasses

import numpy as np
import pytest

from repro.core.bench import BenchConfig, TestBench
from repro.core.treadmill import TreadmillConfig, TreadmillInstance
from repro.sim.machine import HardwareSpec
from repro.sim.nic import AFFINITY_ALL_NODES, AFFINITY_SAME_NODE, NicConfig
from repro.sim.telemetry import MachineTelemetry
from repro.workloads.memcached import MemcachedWorkload


def loaded_bench(affinity=AFFINITY_SAME_NODE, seed=3, utilization=0.6, samples=2500):
    hardware = dataclasses.replace(
        HardwareSpec(), nic=NicConfig(affinity=affinity)
    )
    bench = TestBench(
        BenchConfig(workload=MemcachedWorkload(), hardware=hardware, seed=seed)
    )
    telemetry = MachineTelemetry(bench.server, period_us=500.0)
    telemetry.start()
    rate = bench.server.arrival_rate_for_utilization(utilization) * 1e6
    inst = TreadmillInstance(
        bench,
        "tm0",
        TreadmillConfig(
            rate_rps=rate, connections=16, warmup_samples=100, measurement_samples=samples
        ),
    )
    inst.start()
    # Telemetry reschedules itself forever; stop it before the final
    # drain or the event heap never empties.
    bench.run_until(lambda: inst.done)
    inst.stop()
    telemetry.stop()
    bench.sim.run()
    return bench, telemetry


class TestBasics:
    def test_samples_cover_all_cores(self):
        bench, telemetry = loaded_bench()
        cores = {s.core_index for s in telemetry.samples}
        assert cores == set(range(bench.server.spec.cpu.total_cores))

    def test_busy_fraction_bounded(self):
        _, telemetry = loaded_bench()
        assert all(0.0 <= s.busy_fraction <= 1.0 for s in telemetry.samples)

    def test_mean_busy_tracks_machine_utilization(self):
        bench, telemetry = loaded_bench()
        by_core = telemetry.mean_busy_by_core()
        telemetry_mean = np.mean(list(by_core.values()))
        assert telemetry_mean == pytest.approx(
            bench.server.measured_utilization(), abs=0.1
        )

    def test_double_start_rejected(self):
        bench, telemetry = loaded_bench()
        with pytest.raises(RuntimeError):
            telemetry.start()
            telemetry.start()

    def test_bad_period_rejected(self):
        bench = TestBench(BenchConfig(workload=MemcachedWorkload(), seed=1))
        with pytest.raises(ValueError):
            MachineTelemetry(bench.server, period_us=0.0)

    def test_core_series_shape(self):
        _, telemetry = loaded_bench()
        series = telemetry.core_series(0, "busy_fraction")
        assert series.size > 5


class TestMechanisms:
    def test_same_node_concentrates_irq_on_home_socket(self):
        """The nic factor's physical mechanism, observed directly."""
        _, telemetry = loaded_bench(affinity=AFFINITY_SAME_NODE)
        share = telemetry.irq_share_by_socket()
        assert share.get(0, 0.0) > 0.95

    def test_all_nodes_spreads_irq(self):
        _, telemetry = loaded_bench(affinity=AFFINITY_ALL_NODES)
        share = telemetry.irq_share_by_socket()
        assert 0.25 < share.get(1, 0.0) < 0.75

    def test_headroom_declines_from_cold_start(self):
        _, telemetry = loaded_bench(utilization=0.8)
        for socket in (0, 1):
            series = telemetry.headroom_series(socket)
            assert series.size > 5
            # Cold boot starts with full headroom; sustained load
            # erodes it.
            assert series[-1] < series[0]
            assert 0.0 <= series.min() <= series.max() <= 1.0

    def test_same_node_skews_busy_toward_socket0(self):
        _, telemetry = loaded_bench(affinity=AFFINITY_SAME_NODE)
        by_core = telemetry.mean_busy_by_core()
        socket0 = [s.busy_fraction for s in telemetry.samples if s.socket_index == 0]
        socket1 = [s.busy_fraction for s in telemetry.samples if s.socket_index == 1]
        assert np.mean(socket0) > np.mean(socket1)
