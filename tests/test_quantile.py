"""Unit tests for quantile estimation and confidence intervals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.quantile import (
    bootstrap_quantile_ci,
    order_statistic_ci,
    quantile,
    quantile_density,
    quantile_stderr,
    quantiles,
)


RNG = np.random.default_rng(0)


class TestPointEstimates:
    def test_matches_numpy(self):
        data = RNG.exponential(10.0, size=1000)
        assert quantile(data, 0.95) == pytest.approx(np.quantile(data, 0.95))

    def test_vectorized(self):
        data = RNG.normal(100.0, 10.0, size=500)
        qs = quantiles(data, [0.1, 0.5, 0.9])
        assert np.allclose(qs, np.quantile(data, [0.1, 0.5, 0.9]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantiles([], [0.5])

    def test_bad_q_rejected(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestOrderStatisticCI:
    def test_brackets_point_estimate(self):
        data = RNG.exponential(10.0, size=2000)
        lo, hi = order_statistic_ci(data, 0.95)
        point = np.quantile(data, 0.95)
        assert lo <= point <= hi

    def test_narrows_with_sample_size(self):
        small = RNG.exponential(10.0, size=200)
        large = RNG.exponential(10.0, size=20_000)
        lo_s, hi_s = order_statistic_ci(small, 0.9)
        lo_l, hi_l = order_statistic_ci(large, 0.9)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_coverage_approximately_nominal(self):
        """Distribution-free CI should cover the true quantile ~95% of
        the time (checked loosely over repeated draws)."""
        true_q = -np.log(1 - 0.9) * 10.0  # exponential(10) p90
        rng = np.random.default_rng(42)
        hits = 0
        trials = 200
        for _ in range(trials):
            data = rng.exponential(10.0, size=500)
            lo, hi = order_statistic_ci(data, 0.9, confidence=0.95)
            hits += lo <= true_q <= hi
        assert hits / trials > 0.85

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            order_statistic_ci([1.0, 2.0], 0.5, confidence=1.0)


class TestBootstrapCI:
    def test_brackets_point_estimate(self):
        data = RNG.lognormal(3.0, 1.0, size=1000)
        lo, hi = bootstrap_quantile_ci(data, 0.95, n_boot=300)
        assert lo <= np.quantile(data, 0.95) <= hi

    def test_reproducible_with_rng(self):
        data = RNG.exponential(5.0, size=300)
        a = bootstrap_quantile_ci(data, 0.9, rng=np.random.default_rng(1))
        b = bootstrap_quantile_ci(data, 0.9, rng=np.random.default_rng(1))
        assert a == b


class TestDensityAndStderr:
    def test_density_positive(self):
        data = RNG.normal(0.0, 1.0, size=2000)
        assert quantile_density(data, 0.5) > 0

    def test_density_matches_normal_at_median(self):
        data = np.random.default_rng(7).normal(0.0, 1.0, size=50_000)
        dens = quantile_density(data, 0.5)
        assert dens == pytest.approx(1 / np.sqrt(2 * np.pi), rel=0.1)

    def test_degenerate_data_infinite_density(self):
        assert quantile_density([5.0] * 10, 0.5) == np.inf
        assert quantile_stderr([5.0] * 10, 0.5) == 0.0

    def test_stderr_grows_with_quantile(self):
        """Finding 2: variance of a quantile estimate is inversely
        proportional to the density, so tail quantiles are noisier."""
        data = RNG.exponential(10.0, size=5000)
        assert quantile_stderr(data, 0.99) > quantile_stderr(data, 0.5)

    def test_stderr_shrinks_with_n(self):
        small = RNG.exponential(10.0, size=500)
        large = RNG.exponential(10.0, size=50_000)
        assert quantile_stderr(large, 0.9) < quantile_stderr(small, 0.9)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_ci_always_ordered(self, seed):
        data = np.random.default_rng(seed).exponential(10.0, size=300)
        lo, hi = order_statistic_ci(data, 0.95)
        assert lo <= hi
