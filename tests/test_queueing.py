"""Closed-form queueing formulas, plus validation of the simulator
against M/M/1 theory (where theory is exact)."""

import math

import numpy as np
import pytest

from repro.sim.cpu import CpuComplex, CpuConfig, Job
from repro.sim.engine import Simulator
from repro.stats.queueing import (
    erlang_c,
    mg1_mean_wait,
    mm1_mean_sojourn,
    mm1_outstanding_mean,
    mm1_outstanding_variance,
    mm1_sojourn_quantile,
    mm1_utilization,
    mmc_mean_wait,
)


class TestFormulas:
    def test_utilization(self):
        assert mm1_utilization(0.05, 10.0) == pytest.approx(0.5)

    def test_mean_sojourn(self):
        # rho = 0.5 -> E[T] = 2 E[S].
        assert mm1_mean_sojourn(0.05, 10.0) == pytest.approx(20.0)

    def test_sojourn_quantiles_exponential(self):
        mean = mm1_mean_sojourn(0.05, 10.0)
        assert mm1_sojourn_quantile(0.05, 10.0, 0.5) == pytest.approx(
            math.log(2) * mean
        )
        assert mm1_sojourn_quantile(0.05, 10.0, 0.99) == pytest.approx(
            math.log(100) * mean
        )

    def test_outstanding_moments(self):
        # Finding 1's formula.
        assert mm1_outstanding_mean(0.5) == pytest.approx(1.0)
        assert mm1_outstanding_variance(0.5) == pytest.approx(2.0)
        assert mm1_outstanding_variance(0.9) == pytest.approx(0.9 / 0.01)

    def test_variance_grows_superlinearly_with_utilization(self):
        """Finding 1: latency variance blows up as rho -> 1."""
        v = [mm1_outstanding_variance(r) for r in (0.5, 0.7, 0.9)]
        assert v[0] < v[1] < v[2]
        assert v[2] / v[1] > v[1] / v[0]

    def test_pk_reduces_to_mm1(self):
        # cv^2 = 1 (exponential service): W = rho E[S] / (1 - rho).
        assert mg1_mean_wait(0.05, 10.0, 1.0) == pytest.approx(
            mm1_mean_sojourn(0.05, 10.0) - 10.0
        )

    def test_pk_deterministic_halves_wait(self):
        assert mg1_mean_wait(0.05, 10.0, 0.0) == pytest.approx(
            mg1_mean_wait(0.05, 10.0, 1.0) / 2.0
        )

    def test_erlang_c_limits(self):
        assert erlang_c(4, 0.0) == 0.0
        # Single server: C(1, rho) = rho.
        assert erlang_c(1, 0.7) == pytest.approx(0.7)
        # More servers at the same per-server load wait less.
        assert erlang_c(8, 5.6) < erlang_c(1, 0.7)

    def test_mmc_reduces_to_mm1(self):
        assert mmc_mean_wait(1, 0.07, 10.0) == pytest.approx(
            mm1_mean_sojourn(0.07, 10.0) - 10.0
        )

    def test_unstable_queue_rejected(self):
        with pytest.raises(ValueError):
            mm1_mean_sojourn(0.2, 10.0)
        with pytest.raises(ValueError):
            erlang_c(2, 2.0)


class TestSimulatorAgainstTheory:
    """Drive a bare Core as an M/M/1 queue and compare against the
    closed forms — the strongest correctness check the substrate has."""

    RATE = 0.05  # per us
    SERVICE = 10.0  # us, exponential
    N = 40_000

    @pytest.fixture(scope="class")
    def sojourns(self):
        sim = Simulator()
        cpu = CpuComplex(
            sim, CpuConfig(sockets=1, cores_per_socket=1, governor="performance")
        )
        core = cpu.cores[0]
        rng = np.random.default_rng(11)
        sojourns = []

        def arrival(i):
            start = sim.now
            core.submit(
                Job(
                    work_us=float(rng.exponential(self.SERVICE)),
                    on_done=lambda d, s=start: sojourns.append(sim.now - s),
                )
            )
            if i + 1 < self.N:
                sim.schedule(float(rng.exponential(1.0 / self.RATE)), arrival, i + 1)

        sim.schedule(0.0, arrival, 0)
        sim.run()
        # Discard warm-up.
        return np.asarray(sojourns[2000:])

    def test_mean_sojourn_matches(self, sojourns):
        expected = mm1_mean_sojourn(self.RATE, self.SERVICE)
        assert sojourns.mean() == pytest.approx(expected, rel=0.08)

    def test_median_matches(self, sojourns):
        expected = mm1_sojourn_quantile(self.RATE, self.SERVICE, 0.5)
        assert np.quantile(sojourns, 0.5) == pytest.approx(expected, rel=0.1)

    def test_p99_matches(self, sojourns):
        expected = mm1_sojourn_quantile(self.RATE, self.SERVICE, 0.99)
        assert np.quantile(sojourns, 0.99) == pytest.approx(expected, rel=0.15)

    def test_utilization_matches(self, sojourns):
        # rho = lambda * E[S] = 0.5; busy fraction should agree.
        # (Recomputed from a fresh small run to keep fixtures simple.)
        sim = Simulator()
        cpu = CpuComplex(
            sim, CpuConfig(sockets=1, cores_per_socket=1, governor="performance")
        )
        core = cpu.cores[0]
        rng = np.random.default_rng(12)

        def arrival(i):
            core.submit(Job(work_us=float(rng.exponential(self.SERVICE))))
            if i + 1 < 5000:
                sim.schedule(float(rng.exponential(1.0 / self.RATE)), arrival, i + 1)

        sim.schedule(0.0, arrival, 0)
        sim.run()
        assert core.busy_us / sim.now == pytest.approx(0.5, abs=0.05)
