"""Unit tests for the NIC / RSS model."""

import pytest

from repro.sim.cpu import CpuComplex, CpuConfig
from repro.sim.engine import Simulator
from repro.sim.nic import (
    AFFINITY_ALL_NODES,
    AFFINITY_SAME_NODE,
    Nic,
    NicConfig,
)


def make_nic(affinity=AFFINITY_SAME_NODE, **kwargs):
    sim = Simulator()
    cpu = CpuComplex(sim, CpuConfig())
    return Nic(NicConfig(affinity=affinity, **kwargs), cpu), cpu


class TestConfig:
    def test_bad_affinity_rejected(self):
        with pytest.raises(ValueError):
            NicConfig(affinity="spread")

    def test_zero_queues_rejected(self):
        with pytest.raises(ValueError):
            NicConfig(num_queues=0)


class TestAffinityMap:
    def test_same_node_maps_all_queues_to_home_socket(self):
        nic, cpu = make_nic(AFFINITY_SAME_NODE)
        for core in nic.queue_to_core:
            assert core.socket.index == nic.config.home_socket

    def test_all_nodes_covers_both_sockets(self):
        nic, cpu = make_nic(AFFINITY_ALL_NODES)
        sockets = {core.socket.index for core in nic.queue_to_core}
        assert sockets == {0, 1}

    def test_all_nodes_spreads_evenly(self):
        nic, cpu = make_nic(AFFINITY_ALL_NODES, num_queues=16)
        counts = {}
        for core in nic.queue_to_core:
            counts[core.index] = counts.get(core.index, 0) + 1
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_queue_count_matches_config(self):
        nic, _ = make_nic(num_queues=8)
        assert len(nic.queue_to_core) == 8


class TestRss:
    def test_rss_deterministic_per_connection(self):
        nic, _ = make_nic()
        assert nic.rss_queue(42) == nic.rss_queue(42)
        assert nic.irq_core(42) is nic.irq_core(42)

    def test_rss_in_range(self):
        nic, _ = make_nic(num_queues=16)
        for conn in range(200):
            assert 0 <= nic.rss_queue(conn) < 16

    def test_rss_roughly_uniform(self):
        nic, _ = make_nic(num_queues=16)
        counts = [0] * 16
        for conn in range(3200):
            counts[nic.rss_queue(conn)] += 1
        assert min(counts) > 100  # expectation 200 each


class TestCosts:
    def test_home_socket_irq_cost_is_base(self):
        nic, cpu = make_nic(AFFINITY_SAME_NODE)
        core = cpu.cores_on_socket(0)[0]
        assert nic.irq_cost_us(core) == pytest.approx(nic.config.irq_rx_us)

    def test_remote_socket_irq_pays_dma_penalty(self):
        """The mechanism behind nic=all-nodes hurting at high load."""
        nic, cpu = make_nic(AFFINITY_ALL_NODES)
        remote_core = cpu.cores_on_socket(1)[0]
        assert nic.irq_cost_us(remote_core) == pytest.approx(
            nic.config.irq_rx_us + nic.config.remote_dma_penalty_us
        )

    def test_wake_cost_zero_same_core(self):
        nic, cpu = make_nic()
        core = cpu.cores[0]
        assert nic.wake_cost_us(core, core) == 0.0

    def test_wake_cost_ordering(self):
        nic, cpu = make_nic()
        same_socket = nic.wake_cost_us(cpu.cores[0], cpu.cores[1])
        cross_socket = nic.wake_cost_us(
            cpu.cores_on_socket(0)[0], cpu.cores_on_socket(1)[0]
        )
        assert 0.0 < same_socket < cross_socket
