"""Integration tests for the attribution artifacts (Table IV,
Figs. 7-12) at quick scale.

These share one pair of cached factorial sweeps (memcached low/high),
so the module costs roughly two quick studies, not six.
"""

import numpy as np
import pytest

from repro.experiments import fig11_goodness, fig12_improvement, tab04_regression
from repro.experiments.common import HIGH_LOAD, LOW_LOAD, attribution_report
from repro.experiments.estimates import run_estimates


SCALE = "quick"
# Quick-scale findings are seed-sensitive (8 runs per arm); this seed
# exhibits all the paper's directional findings under the current
# sampling scheme (SPEC_SCHEMA 3 stream layout).
SEED = 7


@pytest.fixture(scope="module")
def memcached_estimates():
    return run_estimates("memcached", scale=SCALE, seed=SEED)


class TestTab4:
    @pytest.fixture(scope="module")
    def result(self):
        return tab04_regression.run(scale=SCALE, seed=SEED)

    def test_intercept_positive_and_ordered_across_taus(self, result):
        i50 = result.coef("(Intercept)", 0.5)
        i95 = result.coef("(Intercept)", 0.95)
        i99 = result.coef("(Intercept)", 0.99)
        assert 0 < i50 < i95 < i99

    def test_stderr_grows_toward_tail(self, result):
        """Finding 2: quantile-estimate variance grows with the
        quantile, so Table IV's standard errors do too."""
        fit50 = result.report.fits[0.5]
        fit99 = result.report.fits[0.99]
        assert np.median(fit99.stderr) > np.median(fit50.stderr)

    def test_rows_render(self, result):
        text = tab04_regression.render(result)
        assert "numa:turbo:dvfs:nic" in text

    def test_some_terms_significant(self, result):
        assert result.significant_terms(0.5), "expected significant factors at p50"


class TestFig7Fig8:
    def test_sixteen_configs_estimated(self, memcached_estimates):
        est = memcached_estimates.config_estimates("high", 0.99)
        assert len(est) == 16

    def test_latency_spread_grows_with_load(self, memcached_estimates):
        """Finding 1: higher utilization -> more variance across
        configurations."""
        low = memcached_estimates.config_estimates("low", 0.99)
        high = memcached_estimates.config_estimates("high", 0.99)
        spread = lambda d: max(d.values()) - min(d.values())
        assert spread(high) > spread(low)

    def test_latency_grows_with_quantile(self, memcached_estimates):
        for coded, v50 in memcached_estimates.config_estimates("high", 0.5).items():
            v99 = memcached_estimates.config_estimates("high", 0.99)[coded]
            assert v99 > v50

    def test_numa_interleave_hurts_at_high_load(self, memcached_estimates):
        """Finding 6 at the Fig. 8 level."""
        impact = memcached_estimates.factor_impacts("high", 0.99)["numa"]
        assert impact > 0

    def test_turbo_helps_on_average(self, memcached_estimates):
        impact = memcached_estimates.factor_impacts("high", 0.99)["turbo"]
        assert impact < 0


class TestFig9Fig10:
    @pytest.fixture(scope="module")
    def mcrouter(self):
        return run_estimates("mcrouter", scale=SCALE, seed=SEED)

    def test_mcrouter_config_spread_narrower(self, mcrouter, memcached_estimates):
        """Fig. 9 vs Fig. 7: mcrouter's configurations span a much
        narrower latency range than memcached's (it is less sensitive
        to the memory-system factors)."""

        def spread(est, tau=0.95):
            values = est.config_estimates("high", tau).values()
            return max(values) - min(values)

        assert spread(mcrouter) < spread(memcached_estimates)

    def test_turbo_effect_damped_at_high_load_for_mcrouter(
        self, mcrouter, memcached_estimates
    ):
        """Finding 8: at high load the thermal headroom is gone, so
        turbo's benefit for mcrouter is small — noticeably smaller than
        the queueing-amplified benefit memcached still sees."""
        mcr = mcrouter.factor_impacts("high", 0.99)["turbo"]
        mc = memcached_estimates.factor_impacts("high", 0.99)["turbo"]
        assert mcr < 0.5  # still (weakly) beneficial
        assert abs(mcr) < abs(mc)

    def test_turbo_helps_mcrouter_at_low_load(self, mcrouter):
        """Finding 8's low-load side: deserialization is CPU-bound and
        headroom is plentiful, so turbo reduces the tail."""
        assert mcrouter.factor_impacts("low", 0.99)["turbo"] < 0.5

    def test_numa_matters_less_for_mcrouter(self, mcrouter, memcached_estimates):
        """Fig. 10 vs Fig. 8: the router touches little connection-
        buffer memory, so the numa factor's impact is a fraction of
        memcached's."""
        mcr = abs(mcrouter.factor_impacts("high", 0.95)["numa"])
        mc = abs(memcached_estimates.factor_impacts("high", 0.95)["numa"])
        assert mcr < mc

    def test_dvfs_dominates_at_low_load(self, mcrouter, memcached_estimates):
        """Finding 7: the ondemand governor's transition overhead makes
        dvfs the dominant factor at low load for both workloads."""
        for est in (mcrouter, memcached_estimates):
            impacts = est.factor_impacts("low", 0.99)
            assert impacts["dvfs"] < 0
            assert abs(impacts["dvfs"]) > abs(impacts["numa"])
            assert abs(impacts["dvfs"]) > abs(impacts["nic"])


class TestFig11:
    def test_r2_in_unit_interval_and_informative(self):
        result = fig11_goodness.run(scale=SCALE, seed=SEED)
        for value in result.r2.values():
            assert 0.0 <= value <= 1.0
        # The model must explain a nontrivial share of variance at the
        # median, where run-quantile noise is lowest.
        assert result.at("high", 0.5) > 0.3


class TestFig12:
    @pytest.fixture(scope="module")
    def result(self):
        return fig12_improvement.run(scale=SCALE, seed=SEED)

    def test_recommended_config_reduces_p99(self, result):
        assert result.latency_reduction_pct(0.99) > 5.0

    def test_variance_reduction_substantial(self, result):
        """The paper's headline shape: -43% latency, -93% variance.
        At quick scale the dispersion estimate itself is noisy (8 runs
        per arm), so the assertion is directional; the default-scale
        benchmark checks the magnitude."""
        assert result.variance_reduction_pct(0.99) > 10.0

    def test_p50_changes_less_than_p99(self, result):
        assert abs(result.latency_reduction_pct(0.5)) < abs(
            result.latency_reduction_pct(0.99)
        ) + 5.0

    def test_render_mentions_paper_numbers(self, result):
        assert "181" in fig12_improvement.render(result)
