"""Tests for per-request trace capture and CSV export."""

import csv
import io

import numpy as np
import pytest

from repro.core.bench import BenchConfig, TestBench
from repro.core.trace import RequestTrace, TRACE_FIELDS
from repro.core.treadmill import TreadmillConfig, TreadmillInstance
from repro.workloads.base import Request
from repro.workloads.memcached import MemcachedWorkload


def traced_run(limit=100_000, samples=800, seed=12):
    trace = RequestTrace(limit=limit)
    bench = TestBench(BenchConfig(workload=MemcachedWorkload(), seed=seed))
    rate = bench.server.arrival_rate_for_utilization(0.5) * 1e6
    inst = TreadmillInstance(
        bench,
        "tm0",
        TreadmillConfig(
            rate_rps=rate, connections=8, warmup_samples=0, measurement_samples=samples
        ),
        request_observer=trace.observe,
    )
    inst.start()
    bench.run_to_completion([inst])
    return trace


class TestCapture:
    def test_records_every_completed_request(self):
        trace = traced_run(samples=500)
        assert len(trace) >= 500
        assert trace.dropped == 0

    def test_limit_bounds_memory(self):
        trace = traced_run(limit=100, samples=500)
        assert len(trace) == 100
        assert trace.dropped > 0

    def test_latencies_positive(self):
        trace = traced_run(samples=300)
        lats = trace.latencies()
        assert (lats > 0).all()

    def test_slowest_sorted_descending(self):
        trace = traced_run(samples=500)
        worst = trace.slowest(10)
        lats = [r.user_latency_us for r in worst]
        assert lats == sorted(lats, reverse=True)
        assert lats[0] == trace.latencies().max()

    def test_interarrival_cv_near_one_for_poisson(self):
        """Treadmill promises exponential gaps; the trace verifies it."""
        trace = traced_run(samples=3000)
        assert trace.interarrival_cv() == pytest.approx(1.0, abs=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestTrace(limit=0)
        with pytest.raises(ValueError):
            RequestTrace().slowest(0)
        with pytest.raises(ValueError):
            RequestTrace().interarrival_cv()


class TestExport:
    def test_csv_round_trip(self, tmp_path):
        trace = traced_run(samples=200)
        path = tmp_path / "trace.csv"
        rows_written = trace.write_csv(path)
        with open(path) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == rows_written == len(trace)
        first = rows[0]
        assert set(first) == set(TRACE_FIELDS)
        # Timestamps are monotone along the pipeline.
        assert float(first["t_user_send"]) <= float(first["t_nic_send"])
        assert float(first["t_nic_send"]) <= float(first["t_server_nic_in"])
        assert float(first["t_nic_recv"]) <= float(first["t_user_recv"])

    def test_csv_string_header(self):
        trace = RequestTrace()
        text = trace.to_csv_string()
        reader = csv.reader(io.StringIO(text))
        assert next(reader) == TRACE_FIELDS

    def test_latency_columns_consistent(self, tmp_path):
        trace = traced_run(samples=100)
        path = tmp_path / "t.csv"
        trace.write_csv(path)
        with open(path) as f:
            for row in csv.DictReader(f):
                total = float(row["user_latency_us"])
                parts = (
                    float(row["server_latency_us"])
                    + float(row["network_latency_us"])
                    + float(row["client_latency_us"])
                )
                assert parts == pytest.approx(total, rel=1e-6)
