"""Unit tests for QR inference: pseudo-R², bootstrap, screening."""

import numpy as np
import pytest

from repro.stats.design import Factor, FactorialDesign
from repro.stats.inference import (
    ExperimentSample,
    expand_design,
    fit_with_inference,
    pseudo_r2,
    run_quantile_design,
    screen_factor,
)


def synthetic_experiments(effects, reps=8, samples=300, noise=5.0, seed=0):
    """2-factor factorial experiments with known cell medians."""
    rng = np.random.default_rng(seed)
    design = FactorialDesign([Factor("a", "lo", "hi"), Factor("b", "lo", "hi")])
    exps = []
    for cfg in design.configs():
        base = effects[cfg]
        for _ in range(reps):
            run_shift = rng.normal(0, noise * 0.2)  # hysteresis-like
            exps.append(
                ExperimentSample(
                    coded=cfg,
                    samples=base + run_shift + rng.exponential(noise, size=samples),
                )
            )
    return exps


EFFECTS = {(0, 0): 100.0, (1, 0): 150.0, (0, 1): 90.0, (1, 1): 160.0}


class TestExperimentSample:
    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSample(coded=(0,), samples=np.array([]))

    def test_samples_coerced_to_float_array(self):
        exp = ExperimentSample(coded=(1,), samples=[1, 2, 3])
        assert exp.samples.dtype == float


class TestDesignExpansion:
    def test_expand_repeats_rows_per_sample(self):
        exps = [
            ExperimentSample(coded=(0, 1), samples=[1.0, 2.0, 3.0]),
            ExperimentSample(coded=(1, 0), samples=[4.0]),
        ]
        X, y, cols = expand_design(exps, ["a", "b"])
        assert X.shape[0] == 4
        assert y.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_run_quantile_design_one_row_per_experiment(self):
        exps = synthetic_experiments(EFFECTS, reps=3)
        X, y, cols = run_quantile_design(exps, ["a", "b"], tau=0.9)
        assert X.shape[0] == len(exps)
        assert y.shape == (len(exps),)

    def test_run_quantile_response_is_experiment_quantile(self):
        exp = ExperimentSample(coded=(0, 0), samples=np.arange(101.0))
        _, y, _ = run_quantile_design([exp], ["a", "b"], tau=0.5)
        assert y[0] == pytest.approx(50.0)

    def test_empty_experiments_rejected(self):
        with pytest.raises(ValueError):
            expand_design([], ["a"])
        with pytest.raises(ValueError):
            run_quantile_design([], ["a"], 0.5)


class TestPseudoR2:
    def test_perfect_model_scores_one(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert pseudo_r2(y, y, 0.9) == 1.0

    def test_constant_model_scores_zero(self):
        rng = np.random.default_rng(0)
        y = rng.exponential(10.0, size=1000)
        const = np.full_like(y, np.quantile(y, 0.9))
        assert pseudo_r2(y, const, 0.9) == pytest.approx(0.0, abs=1e-6)

    def test_informative_model_beats_constant(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 2, size=2000)
        y = 100.0 * x + rng.normal(0, 1, size=2000)
        pred = 100.0 * x
        assert pseudo_r2(y, pred, 0.5) > 0.9

    def test_worse_than_constant_clamped_to_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        terrible = np.array([100.0, -100.0, 100.0])
        assert pseudo_r2(y, terrible, 0.5) == 0.0

    def test_degenerate_y(self):
        y = np.full(10, 5.0)
        assert pseudo_r2(y, y, 0.5) == 1.0
        assert pseudo_r2(y, y + 1.0, 0.5) == 0.0


class TestFitWithInference:
    def test_recovers_effects_with_inference(self):
        exps = synthetic_experiments(EFFECTS, reps=10, seed=2)
        fit, r2 = fit_with_inference(exps, ["a", "b"], tau=0.5, n_boot=80)
        # Median of cell (0,0) samples: base + exp median.
        assert fit.coef("a") == pytest.approx(50.0, abs=8.0)
        assert fit.coef("b") == pytest.approx(-10.0, abs=8.0)
        assert fit.stderr is not None and fit.p_values is not None
        assert len(fit.stderr) == len(fit.columns)

    def test_strong_effects_significant_weak_not(self):
        exps = synthetic_experiments(EFFECTS, reps=12, seed=3)
        fit, _ = fit_with_inference(exps, ["a", "b"], tau=0.5, n_boot=100)
        p = dict(zip(fit.columns, fit.p_values))
        assert p["a"] < 0.05  # +50 us effect
        assert p["a"] < p["a:b"] or p["a:b"] > 0.01

    def test_run_quantile_r2_exceeds_raw_r2(self):
        """The paper-style run-quantile response design filters the
        irreducible per-request noise, so its R² is higher."""
        exps = synthetic_experiments(EFFECTS, reps=8, seed=4)
        _, r2_runq = fit_with_inference(
            exps, ["a", "b"], tau=0.9, n_boot=0, response="run_quantile"
        )
        _, r2_raw = fit_with_inference(
            exps, ["a", "b"], tau=0.9, n_boot=0, response="raw"
        )
        assert r2_runq > r2_raw

    def test_zero_boot_skips_inference(self):
        exps = synthetic_experiments(EFFECTS, reps=3, seed=5)
        fit, _ = fit_with_inference(exps, ["a", "b"], tau=0.5, n_boot=0)
        assert fit.stderr is None and fit.p_values is None

    def test_unknown_response_rejected(self):
        exps = synthetic_experiments(EFFECTS, reps=2, seed=6)
        with pytest.raises(ValueError):
            fit_with_inference(exps, ["a", "b"], tau=0.5, response="magic")

    def test_reproducible_with_rng(self):
        exps = synthetic_experiments(EFFECTS, reps=4, seed=7)
        a, _ = fit_with_inference(
            exps, ["a", "b"], 0.9, n_boot=30, rng=np.random.default_rng(1)
        )
        b, _ = fit_with_inference(
            exps, ["a", "b"], 0.9, n_boot=30, rng=np.random.default_rng(1)
        )
        assert np.array_equal(a.stderr, b.stderr)


class TestScreenFactor:
    def test_real_effect_detected(self):
        exps = synthetic_experiments(EFFECTS, reps=10, seed=8)
        p = screen_factor(exps, factor_index=0, tau=0.5, n_perm=200)
        assert p < 0.05

    def test_null_factor_not_detected(self):
        null_effects = {(0, 0): 100.0, (1, 0): 100.0, (0, 1): 100.0, (1, 1): 100.0}
        exps = synthetic_experiments(null_effects, reps=10, seed=9)
        p = screen_factor(exps, factor_index=0, tau=0.5, n_perm=200)
        assert p > 0.05

    def test_single_level_rejected(self):
        exps = [ExperimentSample(coded=(0, 0), samples=[1.0, 2.0])] * 3
        with pytest.raises(ValueError):
            screen_factor(exps, factor_index=0, tau=0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            screen_factor([], 0, 0.5)
