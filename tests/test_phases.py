"""Unit tests for the warm-up/calibration/measurement phase machine."""

import pytest

from repro.core.phases import PhaseManager
from repro.stats.histogram import AdaptiveHistogram


class TestPhaseTransitions:
    def test_starts_in_warmup(self):
        pm = PhaseManager(warmup_samples=5, measurement_samples=10)
        assert pm.phase == "warm-up"

    def test_warmup_samples_discarded(self):
        pm = PhaseManager(warmup_samples=5, measurement_samples=10)
        for _ in range(5):
            pm.record(100.0)
        assert pm.collected == 0

    def test_calibration_follows_warmup(self):
        pm = PhaseManager(
            warmup_samples=2,
            measurement_samples=100,
            histogram=AdaptiveHistogram(calibration_size=10),
        )
        for _ in range(5):
            pm.record(50.0)
        assert pm.phase == "calibration"
        assert pm.collected == 3

    def test_measurement_after_calibration(self):
        pm = PhaseManager(
            warmup_samples=2,
            measurement_samples=100,
            histogram=AdaptiveHistogram(calibration_size=5),
        )
        for _ in range(10):
            pm.record(50.0)
        assert pm.phase == "measurement"

    def test_done_at_measurement_target(self):
        pm = PhaseManager(
            warmup_samples=2,
            measurement_samples=20,
            histogram=AdaptiveHistogram(calibration_size=5),
        )
        for i in range(22):
            assert not pm.done
            pm.record(float(i + 1))
        assert pm.done

    def test_zero_warmup_allowed(self):
        pm = PhaseManager(warmup_samples=0, measurement_samples=5)
        pm.record(1.0)
        assert pm.collected == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseManager(warmup_samples=-1)
        with pytest.raises(ValueError):
            PhaseManager(measurement_samples=0)


class TestRawRetention:
    def test_keep_raw_stores_post_warmup_samples(self):
        pm = PhaseManager(warmup_samples=3, measurement_samples=10, keep_raw=True)
        for i in range(8):
            pm.record(float(i))
        assert pm.raw_samples == [3.0, 4.0, 5.0, 6.0, 7.0]

    def test_raw_disabled_by_default(self):
        pm = PhaseManager(warmup_samples=0, measurement_samples=10)
        pm.record(1.0)
        assert pm.raw_samples == []

    def test_histogram_matches_raw(self):
        pm = PhaseManager(
            warmup_samples=0,
            measurement_samples=1000,
            histogram=AdaptiveHistogram(calibration_size=50),
            keep_raw=True,
        )
        import numpy as np

        data = np.random.default_rng(0).exponential(100.0, size=500)
        for v in data:
            pm.record(float(v))
        assert pm.histogram.count == len(pm.raw_samples) == 500
        assert pm.histogram.quantile(0.9) == pytest.approx(
            float(np.quantile(data, 0.9)), rel=0.05
        )
