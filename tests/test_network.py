"""Unit tests for links, spine, and topology."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.network import (
    Link,
    LinkConfig,
    Spine,
    SpineConfig,
    Topology,
)


class TestLinkConfig:
    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            LinkConfig(bandwidth_bpus=0.0)

    def test_negative_propagation_rejected(self):
        with pytest.raises(ValueError):
            LinkConfig(propagation_us=-1.0)


class TestLink:
    def test_delivery_time_is_tx_plus_propagation(self):
        sim = Simulator()
        link = Link(sim, LinkConfig(bandwidth_bpus=100.0, propagation_us=5.0))
        seen = []
        link.send(200, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [pytest.approx(2.0 + 5.0)]

    def test_fifo_backlog_queues(self):
        sim = Simulator()
        link = Link(sim, LinkConfig(bandwidth_bpus=100.0, propagation_us=0.0))
        seen = []
        link.send(100, lambda: seen.append(("a", sim.now)))
        delay = link.send(100, lambda: seen.append(("b", sim.now)))
        assert delay == pytest.approx(1.0)  # queued behind the first
        sim.run()
        assert seen == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]

    def test_idle_link_no_queueing_delay(self):
        sim = Simulator()
        link = Link(sim, LinkConfig())
        assert link.send(100, lambda: None) == 0.0

    def test_zero_size_rejected(self):
        sim = Simulator()
        link = Link(sim, LinkConfig())
        with pytest.raises(ValueError):
            link.send(0, lambda: None)

    def test_utilization_tracks_busy_fraction(self):
        sim = Simulator()
        link = Link(sim, LinkConfig(bandwidth_bpus=100.0, propagation_us=0.0))
        link.send(500, lambda: None)  # 5 us of tx
        sim.run()
        sim.run_until(10.0)
        assert link.utilization() == pytest.approx(0.5)

    def test_counters(self):
        sim = Simulator()
        link = Link(sim, LinkConfig())
        link.send(100, lambda: None)
        link.send(150, lambda: None)
        assert link.packets == 2
        assert link.bytes_sent == 250


class TestSpine:
    def test_adds_at_least_propagation(self):
        sim = Simulator()
        spine = Spine(
            sim,
            SpineConfig(propagation_us=18.0, background_mean_us=0.0, burst_probability=0.0),
            np.random.default_rng(0),
        )
        seen = []
        spine.traverse(lambda: seen.append(sim.now))
        sim.run()
        assert seen == [pytest.approx(18.0)]

    def test_background_traffic_randomizes_delay(self):
        sim = Simulator()
        spine = Spine(
            sim,
            SpineConfig(propagation_us=10.0, background_mean_us=5.0, burst_probability=0.0),
            np.random.default_rng(1),
        )
        times = []
        for _ in range(50):
            spine.traverse(lambda: times.append(sim.now))
            sim.run()
        gaps = np.diff([0.0] + times)
        assert all(g >= 10.0 for g in gaps)
        assert np.std(gaps) > 0.0

    def test_bursts_create_heavy_tail(self):
        """The Fig. 2 mechanism: cross-rack packets occasionally hit a
        large burst delay."""
        sim = Simulator()
        cfg = SpineConfig(
            propagation_us=0.0,
            background_mean_us=0.0,
            burst_probability=0.1,
            burst_mean_us=200.0,
        )
        spine = Spine(sim, cfg, np.random.default_rng(2))
        delays = []
        prev = 0.0
        for _ in range(500):
            spine.traverse(lambda: None)
            sim.run()
            delays.append(sim.now - prev)
            prev = sim.now
        assert max(delays) > 100.0
        assert np.median(delays) == pytest.approx(0.0, abs=1e-9)

    def test_invalid_burst_probability_rejected(self):
        with pytest.raises(ValueError):
            SpineConfig(burst_probability=1.5)


class TestTopology:
    def make(self):
        sim = Simulator()
        topo = Topology(sim, np.random.default_rng(0))
        topo.add_host("server", "rack0")
        topo.add_host("clientA", "rack0")
        topo.add_host("clientB", "rack1")
        return sim, topo

    def test_duplicate_host_rejected(self):
        sim, topo = self.make()
        with pytest.raises(ValueError):
            topo.add_host("server", "rack2")

    def test_rack_membership(self):
        _, topo = self.make()
        assert topo.same_rack("server", "clientA")
        assert not topo.same_rack("server", "clientB")
        assert topo.rack_of("clientB") == "rack1"

    def test_same_rack_path_skips_spine(self):
        _, topo = self.make()
        assert topo.path("clientA", "server").spine is None

    def test_cross_rack_path_uses_spine(self):
        _, topo = self.make()
        assert topo.path("clientB", "server").spine is not None

    def test_unknown_host_rejected(self):
        _, topo = self.make()
        with pytest.raises(KeyError):
            topo.path("ghost", "server")

    def test_cross_rack_delivery_slower(self):
        sim, topo = self.make()
        times = {}

        def send(src, key):
            start = sim.now
            topo.path(src, "server").send(
                100, lambda: times.__setitem__(key, sim.now - start)
            )
            sim.run()

        send("clientA", "same")
        send("clientB", "cross")
        assert times["cross"] > times["same"]

    def test_links_shared_per_host(self):
        """All flows from one host share its uplink (the Fig. 3
        client-side bias mechanism)."""
        _, topo = self.make()
        p1 = topo.path("clientA", "server")
        p2 = topo.path("clientA", "server")
        assert p1.uplink is p2.uplink
        assert p1.uplink is topo.uplink("clientA")
