"""Tests for the unified execution layer (repro.exec).

Covers the four guarantees the layer makes:

* serial-vs-parallel determinism (identical ``ProcedureResult``
  estimates, bit for bit),
* cache hit/miss/invalidation round-trips,
* the executor crash-retry and timeout paths, and
* RunSpec digest stability — including across process boundaries.
"""

import dataclasses
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.procedure import MeasurementProcedure, ProcedureConfig
from repro.exec import (
    ParallelExecutor,
    ResultCache,
    RunSpec,
    SerialExecutor,
    Telemetry,
    execute_specs,
    execution,
    get_execution_defaults,
    make_executor,
    run_spec,
)
from repro.exec import cache as cache_mod
from repro.exec.executors import ExecError, ExecTimeout
from repro.workloads.memcached import MemcachedWorkload


def quick_config(**overrides):
    defaults = dict(
        workload=MemcachedWorkload(),
        target_utilization=0.5,
        num_instances=2,
        connections_per_instance=8,
        warmup_samples=100,
        measurement_samples_per_instance=400,
        min_runs=2,
        max_runs=3,
        keep_raw=True,
        seed=1,
    )
    defaults.update(overrides)
    return ProcedureConfig(**defaults)


def quick_spec(**overrides):
    defaults = dict(
        workload=MemcachedWorkload(),
        target_utilization=0.5,
        num_instances=2,
        connections_per_instance=8,
        warmup_samples=100,
        measurement_samples_per_instance=400,
        keep_raw=True,
        seed=1,
        run_index=0,
    )
    defaults.update(overrides)
    return RunSpec(**defaults)


# ----------------------------------------------------------------------
# RunSpec identity and digests
# ----------------------------------------------------------------------
class TestRunSpec:
    def test_requires_exactly_one_load_spec(self):
        with pytest.raises(ValueError):
            RunSpec(workload=MemcachedWorkload())
        with pytest.raises(ValueError):
            RunSpec(
                workload=MemcachedWorkload(),
                total_rate_rps=1000.0,
                target_utilization=0.5,
            )

    def test_equal_content_equal_digest(self):
        assert quick_spec().digest() == quick_spec().digest()
        assert quick_spec() == quick_spec()
        assert hash(quick_spec()) == hash(quick_spec())

    def test_every_field_is_digest_relevant_except_tag(self):
        base = quick_spec()
        changed = {
            "target_utilization": 0.6,
            "num_instances": 3,
            "connections_per_instance": 4,
            "warmup_samples": 50,
            "measurement_samples_per_instance": 500,
            "quantiles": (0.5, 0.9),
            "combine": "median",
            "keep_raw": False,
            "seed": 2,
            "run_index": 1,
        }
        for name, value in changed.items():
            other = base.replace(**{name: value})
            assert other.digest() != base.digest(), name
        # The cosmetic tag must NOT change identity (cache keys).
        assert base.replace(tag="pretty label").digest() == base.digest()

    def test_workload_parameters_change_digest(self):
        a = quick_spec(workload=MemcachedWorkload(get_fraction=0.9))
        b = quick_spec(workload=MemcachedWorkload(get_fraction=0.5))
        assert a.digest() != b.digest()

    def test_digest_stable_across_process_boundary(self):
        """Property: the digest is a pure function of spec content —
        recomputing it in a fresh interpreter yields the same hex."""
        code = (
            "from repro.exec import RunSpec\n"
            "from repro.workloads.memcached import MemcachedWorkload\n"
            "s = RunSpec(workload=MemcachedWorkload(), target_utilization=0.5,\n"
            "            num_instances=2, connections_per_instance=8,\n"
            "            warmup_samples=100, measurement_samples_per_instance=400,\n"
            "            keep_raw=True, seed=1, run_index=0)\n"
            "print(s.digest())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ},
        )
        assert out.stdout.strip() == quick_spec().digest()

    def test_spec_is_picklable_and_digest_survives(self):
        import pickle

        spec = quick_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.digest() == spec.digest()

    def test_run_spec_matches_procedure_run_once(self):
        proc = MeasurementProcedure(quick_config())
        direct = run_spec(proc.spec_for(0))
        via_proc = proc.run_once(0)
        assert direct.metrics == via_proc.metrics
        assert direct.events_processed == via_proc.events_processed > 0


# ----------------------------------------------------------------------
# serial vs parallel determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_serial_and_parallel_estimates_identical(self):
        with SerialExecutor() as ex:
            serial = MeasurementProcedure(quick_config(), executor=ex).run()
        with ParallelExecutor(max_workers=2) as ex:
            parallel = MeasurementProcedure(quick_config(), executor=ex).run()
        assert serial.estimates == parallel.estimates
        assert serial.dispersion == parallel.dispersion
        assert [r.metrics for r in serial.runs] == [r.metrics for r in parallel.runs]

    def test_parallel_preserves_submission_order(self):
        specs = [quick_spec(run_index=i) for i in range(4)]
        with ParallelExecutor(max_workers=2) as ex:
            results = ex.run(specs)
        assert [r.run_index for r in results] == [0, 1, 2, 3]

    def test_make_executor_dispatch(self):
        assert isinstance(make_executor(1), SerialExecutor)
        ex = make_executor(2)
        assert isinstance(ex, ParallelExecutor)
        ex.close()


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
class TestCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = quick_spec()
        assert cache.get(spec) is None
        first = run_spec(spec)
        cache.put(spec, first)
        again = cache.get(spec)
        assert again is not None
        assert again.from_cache
        assert again.metrics == first.metrics
        assert np.array_equal(again.raw_samples(), first.raw_samples())
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert spec in cache

    def test_raw_samples_stored_alongside(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = quick_spec()
        outcome = run_spec(spec)
        cache.put(spec, outcome)
        raw_path = cache.raw_path(spec)
        assert raw_path is not None
        assert np.array_equal(np.load(raw_path), outcome.raw_samples())

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        spec = quick_spec()
        cache.put(spec, run_spec(spec))
        assert len(cache) == 1
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA", cache_mod.CACHE_SCHEMA + 1)
        assert cache.get(spec) is None  # stale entry deleted on sight
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = quick_spec()
        entry = cache.put(spec, run_spec(spec))
        (entry / "outcome.pkl").write_bytes(b"not a pickle")
        assert cache.get(spec) is None

    def test_executor_consults_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = quick_spec()
        with SerialExecutor(cache=cache) as ex:
            a = ex.run([spec])[0]
            b = ex.run([spec])[0]
        assert not a.from_cache and b.from_cache
        assert a.metrics == b.metrics

    def test_parallel_executor_uses_cache_across_modes(self, tmp_path):
        """A serial run primes the cache; a parallel run reuses it."""
        cache = ResultCache(tmp_path)
        specs = [quick_spec(run_index=i) for i in range(3)]
        with SerialExecutor(cache=cache) as ex:
            warm = ex.run(specs)
        telemetry = Telemetry()
        with ParallelExecutor(max_workers=2, cache=cache) as ex:
            cold = ex.run(specs, progress=telemetry)
        assert telemetry.cache_hits == 3
        assert [r.metrics for r in warm] == [r.metrics for r in cold]


# ----------------------------------------------------------------------
# crash / timeout handling (generic tasks, module-level for pickling)
# ----------------------------------------------------------------------
def _crash_once_task(arg):
    """Dies hard (os._exit) on first sight of each marker; then works."""
    marker, value = arg
    path = Path(marker)
    if not path.exists():
        path.write_text("seen")
        os._exit(13)  # simulates a segfault/OOM-kill: breaks the pool
    return value * 2


def _always_crash_task(arg):
    os._exit(13)


def _sleepy_task(arg):
    time.sleep(arg)
    return arg


def _failing_task(arg):
    raise ValueError(f"deterministic failure on {arg!r}")


def _double_task(arg):
    return arg * 2


class TestCrashRetry:
    def test_worker_crash_is_retried(self, tmp_path):
        marker = tmp_path / "crash-marker"
        with ParallelExecutor(
            max_workers=2, task=_crash_once_task, retries=2
        ) as ex:
            results = ex.run([(str(marker), 21)])
        assert results == [42]

    def test_crash_retry_recovers_whole_batch(self, tmp_path):
        """Several specs each crash their first worker; the pool is
        rebuilt and every spec still completes with the right value."""
        specs = [(str(tmp_path / f"marker-{i}"), i) for i in range(3)]
        with ParallelExecutor(
            max_workers=2, task=_crash_once_task, retries=4
        ) as ex:
            results = ex.run(specs)
        assert results == [0, 2, 4]

    def test_exhausted_retries_raise(self):
        with pytest.raises(ExecError):
            with ParallelExecutor(
                max_workers=1, task=_always_crash_task, retries=1
            ) as ex:
                ex.run([(None, 1)])

    def test_timeout_raises_after_retries(self):
        with pytest.raises(ExecTimeout):
            with ParallelExecutor(
                max_workers=1, task=_sleepy_task, timeout=0.2, retries=0
            ) as ex:
                ex.run([1.5])

    def test_fast_tasks_beat_the_timeout(self):
        with ParallelExecutor(
            max_workers=2, task=_double_task, timeout=30.0, retries=0
        ) as ex:
            assert ex.run([1, 2, 3]) == [2, 4, 6]

    def test_deterministic_exception_propagates_immediately(self):
        with pytest.raises(ValueError, match="deterministic failure"):
            with ParallelExecutor(max_workers=2, task=_failing_task) as ex:
                ex.run(["x"])

    def test_serial_executor_propagates_exceptions(self):
        with pytest.raises(ValueError):
            SerialExecutor(task=_failing_task).run(["x"])


# ----------------------------------------------------------------------
# defaults plumbing & telemetry
# ----------------------------------------------------------------------
class TestDefaults:
    def test_execution_context_restores(self):
        before = get_execution_defaults()
        with execution(jobs=4, cache_dir="/tmp/somewhere"):
            inside = get_execution_defaults()
            assert inside["jobs"] == 4
            assert inside["cache_dir"] == "/tmp/somewhere"
        assert get_execution_defaults() == before

    def test_execute_specs_uses_defaults(self, tmp_path):
        with execution(jobs=1, cache_dir=str(tmp_path)):
            spec = quick_spec()
            first = execute_specs([spec])[0]
            second = execute_specs([spec])[0]
        assert not first.from_cache and second.from_cache

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            with execution(jobs=0):
                pass

    def test_telemetry_summary(self):
        telemetry = Telemetry()
        with SerialExecutor() as ex:
            ex.run([quick_spec(run_index=i) for i in range(2)], progress=telemetry)
        summary = telemetry.summary()
        assert summary["runs"] == 2
        assert summary["cache_hits"] == 0
        assert summary["events_processed"] > 0
        assert summary["wall_s"] > 0
