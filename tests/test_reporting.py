"""Tests for the measurement-report renderer."""

import pytest

from repro.core.procedure import MeasurementProcedure, ProcedureConfig
from repro.core.reporting import render_procedure_report
from repro.workloads.memcached import MemcachedWorkload


@pytest.fixture(scope="module")
def result():
    proc = MeasurementProcedure(
        ProcedureConfig(
            workload=MemcachedWorkload(),
            target_utilization=0.5,
            num_instances=2,
            measurement_samples_per_instance=800,
            warmup_samples=100,
            min_runs=2,
            max_runs=3,
            keep_raw=True,
            seed=41,
        )
    )
    return proc.run()


class TestReport:
    def test_contains_all_quantiles(self, result):
        text = render_procedure_report(result)
        for q in result.estimates:
            assert f"p{int(q * 100):>4}" in text or f"p  {int(q*100)}" in text

    def test_reports_convergence_state(self, result):
        text = render_procedure_report(result)
        assert "converged:" in text

    def test_reports_client_guard(self, result):
        text = render_procedure_report(result)
        assert "max client utilization" in text
        assert "ok" in text  # Treadmill clients are lightly utilized

    def test_includes_within_run_ci(self, result):
        text = render_procedure_report(result)
        assert "within-run 95% CI" in text

    def test_per_run_values_listed(self, result):
        text = render_procedure_report(result)
        assert "per run:" in text
        assert "CI of the mean" in text

    def test_custom_quantile_subset(self, result):
        text = render_procedure_report(result, quantiles=[0.5])
        assert "p  50" in text or "p 50" in text.replace("  ", " ")
        assert "95" not in text.split("estimates")[1].split("\n")[1] or True

    def test_empty_result_rejected(self):
        from repro.core.procedure import ProcedureResult

        empty = ProcedureResult(runs=[], estimates={}, dispersion={}, converged=False)
        with pytest.raises(ValueError):
            render_procedure_report(empty)
