"""Unit tests for JSON workload/tester configuration."""

import json

import pytest

from repro.core.config import (
    hardware_from_json,
    load_json,
    treadmill_config_from_json,
    workload_from_json,
)
from repro.workloads.generators import Lognormal, Uniform
from repro.workloads.mcrouter import McrouterWorkload
from repro.workloads.memcached import MemcachedWorkload


class TestLoadJson:
    def test_accepts_dict(self):
        assert load_json({"a": 1}) == {"a": 1}

    def test_accepts_json_string(self):
        assert load_json('{"a": 1}') == {"a": 1}

    def test_accepts_file(self, tmp_path):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps({"workload": "memcached"}))
        assert load_json(path) == {"workload": "memcached"}

    def test_missing_file_clear_error(self):
        with pytest.raises(FileNotFoundError):
            load_json("does/not/exist.json")


class TestWorkloadFromJson:
    def test_memcached_defaults(self):
        wl = workload_from_json({"workload": "memcached"})
        assert isinstance(wl, MemcachedWorkload)

    def test_memcached_with_overrides(self):
        wl = workload_from_json(
            {
                "workload": "memcached",
                "get_fraction": 0.95,
                "key_size": {"type": "uniform", "low": 10, "high": 20},
                "value_size": {"type": "lognormal", "mean": 320, "sigma": 1.2},
                "base_work_us": 4.0,
            }
        )
        assert wl.mix.probability("get") == pytest.approx(0.95)
        assert isinstance(wl.key_size, Uniform)
        assert isinstance(wl.value_size, Lognormal)
        assert wl.value_size.mean() == pytest.approx(320.0)
        assert wl.base_work_us == 4.0

    def test_mcrouter_with_backend_wait(self):
        wl = workload_from_json(
            {
                "workload": "mcrouter",
                "backend_wait": {"type": "exponential", "mean": 15.0},
            }
        )
        assert isinstance(wl, McrouterWorkload)
        assert wl.backend_wait.mean() == pytest.approx(15.0)

    def test_missing_workload_key_rejected(self):
        with pytest.raises(ValueError):
            workload_from_json({"get_fraction": 0.5})

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            workload_from_json({"workload": "redis"})

    def test_unknown_field_rejected_with_listing(self):
        with pytest.raises(ValueError) as exc:
            workload_from_json({"workload": "memcached", "sharding": 4})
        assert "sharding" in str(exc.value)

    def test_from_json_string(self):
        wl = workload_from_json('{"workload": "memcached", "get_fraction": 0.8}')
        assert wl.mix.probability("get") == pytest.approx(0.8)


class TestTreadmillConfigFromJson:
    def test_basic_fields(self):
        cfg = treadmill_config_from_json(
            {"rate_rps": 50_000, "connections": 16, "measurement_samples": 2000}
        )
        assert cfg.rate_rps == 50_000
        assert cfg.connections == 16

    def test_arrival_spec(self):
        cfg = treadmill_config_from_json(
            {"rate_rps": 1000, "arrival": {"type": "lognormal", "rate_rps": 1000, "cv": 2.0}}
        )
        assert cfg.make_arrival().spec()["type"] == "lognormal"

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            treadmill_config_from_json({"rate_rps": 1000, "threads": 4})


class TestStrictValidation:
    """Unknown keys are errors that name the bad key and its nearest
    valid neighbour — never silent ignores."""

    def test_workload_typo_suggests_the_nearest_key(self):
        with pytest.raises(ValueError) as exc:
            workload_from_json({"workload": "memcached", "get_fracton": 0.9})
        msg = str(exc.value)
        assert "get_fracton" in msg
        assert "did you mean 'get_fraction'" in msg

    def test_treadmill_typo_suggests_the_nearest_key(self):
        with pytest.raises(ValueError) as exc:
            treadmill_config_from_json({"rate_rps": 1000, "conections": 8})
        assert "did you mean 'connections'" in str(exc.value)

    def test_error_lists_the_allowed_vocabulary(self):
        with pytest.raises(ValueError, match="allowed"):
            workload_from_json({"workload": "memcached", "zzz": 1})


class TestHardwareFromJson:
    def test_sections_build_the_real_configs(self):
        hw = hardware_from_json(
            {
                "cpu": {"base_freq_ghz": 1.6, "turbo_enabled": False},
                "kernel": {"server_rx_us": 4.0},
                "boot_quality_sigma": 0.1,
            }
        )
        assert hw.cpu.base_freq_ghz == 1.6
        assert hw.cpu.turbo_enabled is False
        assert hw.kernel.server_rx_us == 4.0
        assert hw.boot_quality_sigma == 0.1

    def test_defaults_when_empty(self):
        from repro.sim.machine import HardwareSpec

        assert hardware_from_json({}) == HardwareSpec()

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="did you mean 'cpu'"):
            hardware_from_json({"cpus": {"freq_ghz": 2.0}})

    def test_unknown_field_inside_a_section_rejected(self):
        with pytest.raises(ValueError) as exc:
            hardware_from_json({"cpu": {"base_freq_gz": 2.0}})
        assert "did you mean 'base_freq_ghz'" in str(exc.value)


class TestSearchleafFromJson:
    def test_searchleaf_with_terms_distribution(self):
        from repro.workloads.searchleaf import SearchLeafWorkload

        wl = workload_from_json(
            {
                "workload": "searchleaf",
                "terms": {"type": "uniform", "low": 2, "high": 10},
                "scan_us_per_term": 3.0,
                "expensive_query_fraction": 0.05,
            }
        )
        assert isinstance(wl, SearchLeafWorkload)
        assert wl.scan_us_per_term == 3.0
        assert wl.expensive_query_fraction == 0.05
        assert wl.terms.mean() == pytest.approx(6.0)

    def test_searchleaf_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            workload_from_json({"workload": "searchleaf", "shards": 4})
