"""Tests for the live measurement backend (repro.live).

The two headline guarantees:

* **Sim-vs-live identity of procedure** — the live driver replays the
  library's ``heterogeneous_pool`` scenario (degenerate-lowered to one
  pool) against the reference server serving the *simulated* latency
  distribution, and reproduces the simulator's p50/p99 within a
  MeanConvergence-style tolerance.  Same arrival streams, same phase
  machine, same aggregation — only the clock differs.
* **Coordinated-omission guard** — under an injected 250 ms server
  stall the offered load keeps flowing on schedule (open loop); a
  closed-loop client would pause for the full stall.

Plus the protocol/refserver/PhaseRecorder units and the clean-error
paths (refused and wedged endpoints fail fast, never hang).
"""

import json
import socket
import threading
import time
from importlib import resources

import numpy as np
import pytest

from repro.core.treadmill import PhaseRecorder, TreadmillConfig
from repro.exec.spec import RunSpec
from repro.live import (
    LiveMeasurementError,
    RefServerConfig,
    parse_target,
    ping,
    serve_in_thread,
)
from repro.live.protocol import (
    decode_request,
    decode_response,
    encode_http_request,
    encode_http_response,
    encode_request,
    encode_response,
    http_request_seq,
)
from repro.live.refserver import EmpiricalDistribution
from repro.measure import backend_defaults, measure_spec
from repro.stats.convergence import MeanConvergence
from repro.workloads import MemcachedWorkload


def live_spec(**overrides):
    kwargs = dict(
        workload=MemcachedWorkload(),
        total_rate_rps=2_000.0,
        num_instances=1,
        connections_per_instance=4,
        warmup_samples=30,
        measurement_samples_per_instance=150,
        seed=5,
        backend="live",
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


# ----------------------------------------------------------------------
# wire protocol units
# ----------------------------------------------------------------------
class TestProtocol:
    def test_echo_round_trip(self):
        assert decode_request(encode_request(42)) == 42
        assert decode_response(encode_response(42)) == 42

    def test_echo_rejects_garbage(self):
        assert decode_request(b"nope\n") is None
        assert decode_response(b"r abc\n") is None

    def test_http_round_trip(self):
        request = encode_http_request(7)
        line = request.split(b"\r\n", 1)[0]
        assert http_request_seq(line) == 7
        assert b"X-Seq: 7" in encode_http_response(7)

    def test_http_seq_missing(self):
        assert http_request_seq(b"GET / HTTP/1.1") is None

    def test_parse_target(self):
        assert parse_target("tcp://10.0.0.1:7799") == ("echo", "10.0.0.1", 7799)
        assert parse_target("http://h:8080") == ("http", "h", 8080)
        assert parse_target("127.0.0.1:7799") == ("echo", "127.0.0.1", 7799)

    def test_parse_target_errors(self):
        with pytest.raises(ValueError, match="scheme"):
            parse_target("ftp://h:21")
        with pytest.raises(ValueError, match="missing host or port"):
            parse_target("tcp://nohost")
        with pytest.raises(ValueError, match="port"):
            parse_target("tcp://h:notaport")


# ----------------------------------------------------------------------
# PhaseRecorder (the shared backend-independent half)
# ----------------------------------------------------------------------
class TestPhaseRecorder:
    def test_phases_and_report(self):
        rec = PhaseRecorder(
            "r0",
            TreadmillConfig(
                rate_rps=1000.0,
                warmup_samples=5,
                measurement_samples=10,
                keep_raw=True,
            ),
        )
        fed = 0
        while not rec.done:
            rec.record(100.0 + fed)
            fed += 1
        assert fed == 15  # warmup + measurement
        report = rec.report(requests_sent=20, client_utilization=0.1)
        assert report.responses_recorded == 10
        assert report.requests_sent == 20
        assert len(report.raw_samples) == 10
        # Warm-up samples (the first 5) must not be measured.
        assert float(np.min(report.raw_samples)) == 105.0

    def test_report_is_memoized(self):
        rec = PhaseRecorder(
            "r0", TreadmillConfig(warmup_samples=1, measurement_samples=3)
        )
        for _ in range(4):
            rec.record(50.0)
        a = rec.report(requests_sent=4, client_utilization=0.0)
        b = rec.report(requests_sent=4, client_utilization=0.0)
        assert a.histogram is b.histogram

    def test_components_recorded_when_enabled(self):
        rec = PhaseRecorder(
            "r0",
            TreadmillConfig(
                warmup_samples=1, measurement_samples=2, keep_components=True
            ),
        )
        rec.record(10.0, server_us=1.0)  # warm-up: not kept
        rec.record(20.0, server_us=2.0)
        rec.record(30.0, server_us=3.0)
        report = rec.report(requests_sent=3, client_utilization=0.0)
        assert report.components["server"].tolist() == [2.0, 3.0]


# ----------------------------------------------------------------------
# reference server
# ----------------------------------------------------------------------
class TestRefServer:
    def test_ping(self):
        srv = serve_in_thread()
        try:
            assert 0 < ping(srv.target) < 5.0
        finally:
            srv.stop()

    def test_empirical_distribution(self):
        dist = EmpiricalDistribution([10.0, 20.0], scale=3.0)
        rng = np.random.default_rng(0)
        draws = set(dist.sample_block(rng, 200).tolist())
        assert draws == {30.0, 60.0}
        assert dist.mean() == 45.0
        assert dist.spec()["type"] == "empirical"

    def test_empirical_validation(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([])
        with pytest.raises(ValueError):
            EmpiricalDistribution([1.0], scale=0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="mode"):
            RefServerConfig(mode="bogus")

    def test_seeded_service_stream_repeats(self):
        a = serve_in_thread(RefServerConfig(seed=3))
        b = serve_in_thread(RefServerConfig(seed=3))
        try:
            assert a.server.service.sample(np.random.default_rng(1)) == pytest.approx(
                b.server.service.sample(np.random.default_rng(1))
            )
        finally:
            a.stop()
            b.stop()


# ----------------------------------------------------------------------
# live measurement end to end
# ----------------------------------------------------------------------
class TestLiveMeasurement:
    def run_live(self, target, spec, **options):
        with backend_defaults("live", target=target, **options):
            return measure_spec(spec)

    def test_echo_measurement(self):
        srv = serve_in_thread(
            RefServerConfig(service={"type": "constant", "value": 500.0})
        )
        try:
            result = self.run_live(srv.target, live_spec())
            assert result.metrics[0.5] >= 500.0  # service + real overhead
            assert sum(r.responses_recorded for r in result.reports) == 150
            assert np.isnan(result.server_utilization)  # not observable
        finally:
            srv.stop()

    def test_http_measurement(self):
        srv = serve_in_thread(
            RefServerConfig(service={"type": "constant", "value": 500.0})
        )
        try:
            result = self.run_live(
                f"http://127.0.0.1:{srv.port}",
                live_spec(measurement_samples_per_instance=80),
            )
            assert result.metrics[0.5] >= 500.0
        finally:
            srv.stop()

    def test_live_requires_absolute_rate(self):
        spec = live_spec(total_rate_rps=None, target_utilization=0.5)
        with pytest.raises(ValueError, match="total_rate_rps"):
            measure_spec(spec)

    def test_live_rejects_antagonist_scenarios(self):
        from repro.scenarios import scenario_from_json

        scenario = scenario_from_json(
            {
                "name": "s",
                "pools": [{"name": "p", "workload": {"workload": "memcached"}, "count": 2}],
                "fleets": [{"name": "f", "target": "p", "rate_rps": 1000.0}],
                "antagonists": [
                    {"name": "noisy", "pool": "p", "rate_rps": 500.0, "work_us": 50.0}
                ],
            }
        )
        spec = RunSpec(workload=MemcachedWorkload(), scenario=scenario, backend="live")
        with pytest.raises(ValueError, match="antagonist"):
            measure_spec(spec)

    def test_live_scenario_requires_pool_targets(self):
        from repro.scenarios import scenario_from_json

        scenario = scenario_from_json(
            {
                "name": "s2",
                "pools": [
                    {"name": "a", "workload": {"workload": "memcached"}, "count": 1},
                    {"name": "b", "workload": {"workload": "memcached"}, "count": 1},
                ],
                "fleets": [
                    {"name": "fa", "target": "a", "rate_rps": 1000.0},
                    {"name": "fb", "target": "b", "rate_rps": 1000.0},
                ],
            }
        )
        spec = RunSpec(workload=MemcachedWorkload(), scenario=scenario, backend="live")
        with pytest.raises(ValueError, match="pool"):
            measure_spec(spec)


class TestCleanErrors:
    """Converged or a clean LiveMeasurementError — never a hang."""

    @staticmethod
    def _free_port() -> int:
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            return s.getsockname()[1]

    def test_refused_connection(self):
        target = f"tcp://127.0.0.1:{self._free_port()}"
        with pytest.raises(LiveMeasurementError, match="cannot connect"):
            ping(target, timeout_s=2.0)
        with backend_defaults("live", target=target, connect_timeout_s=2.0):
            with pytest.raises(LiveMeasurementError, match="cannot connect"):
                measure_spec(live_spec())

    def test_wedged_endpoint_trips_watchdog(self):
        # A listener that accepts connections but never responds.
        wedge = socket.create_server(("127.0.0.1", 0))
        port = wedge.getsockname()[1]
        try:
            t0 = time.monotonic()
            with backend_defaults(
                "live", target=f"tcp://127.0.0.1:{port}", progress_timeout_s=1.0
            ):
                with pytest.raises(LiveMeasurementError, match="no response progress"):
                    measure_spec(live_spec())
            # Watchdog, not the 10s default: fails promptly.
            assert time.monotonic() - t0 < 5.0
        finally:
            wedge.close()

    def test_wedged_ping(self):
        wedge = socket.create_server(("127.0.0.1", 0))
        port = wedge.getsockname()[1]
        try:
            with pytest.raises(LiveMeasurementError, match="no PONG"):
                ping(f"tcp://127.0.0.1:{port}", timeout_s=0.5)
        finally:
            wedge.close()


# ----------------------------------------------------------------------
# the headline guarantees
# ----------------------------------------------------------------------
#: Simulated microseconds are stretched by this factor into real
#: milliseconds, so asyncio/kernel overhead (~1 ms) descales to ~1 us —
#: far below tolerance — while the run still finishes in ~1 s.
SCALE = 1000.0


def load_fast_slice():
    """heterogeneous_pool's fast pool, degenerate-lowered to a RunSpec."""
    doc = json.loads(
        (resources.files("repro.scenarios.library") / "heterogeneous_pool.json")
        .read_text()
    )
    from repro.scenarios import compile_scenario, scenario_from_json

    degenerate = {
        "name": "hetpool_fast_slice",
        "seed": doc["seed"],
        "keep_raw": True,
        "pools": [dict(doc["pools"][0], count=1)],
        "fleets": [doc["fleets"][0]],
    }
    (spec,) = compile_scenario(scenario_from_json(degenerate))
    assert spec.scenario is None  # really was lowered
    return spec


class TestSimVsLive:
    def test_live_reproduces_simulated_quantiles(self):
        sim_spec = load_fast_slice()
        sim = measure_spec(sim_spec)

        # The reference server *serves* the simulated latency
        # distribution; the live driver measures it back through real
        # sockets with the identical procedure.
        srv = serve_in_thread(
            RefServerConfig(
                service=EmpiricalDistribution(sim.raw_samples(), scale=SCALE),
                seed=1,
            )
        )
        try:
            with backend_defaults("live", target=srv.target):
                live = measure_spec(
                    sim_spec.replace(
                        backend="live",
                        total_rate_rps=2_400.0,
                        target_utilization=None,
                    )
                )
        finally:
            srv.stop()

        from repro.exec.spec import metric_samples

        for q in (0.5, 0.99):
            sim_rule = MeanConvergence(min_runs=2)
            live_rule = MeanConvergence(min_runs=2)
            for report in sim.reports:
                sim_rule.add(float(np.quantile(metric_samples(report), q)))
            for report in live.reports:
                live_rule.add(
                    float(np.quantile(metric_samples(report), q)) / SCALE
                )
            # Agreement within the combined CI half-widths plus the
            # MeanConvergence relative tolerance (the procedure's own
            # definition of "the same value") and a small descaled
            # overhead allowance.
            tol = (
                sim_rule.half_width()
                + live_rule.half_width()
                + sim_rule.rel_tol * sim_rule.mean()
                + 5.0
            )
            assert abs(live_rule.mean() - sim_rule.mean()) <= tol, (
                f"p{q * 100:g}: sim={sim_rule.mean():.1f}us "
                f"live={live_rule.mean():.1f}us tol={tol:.1f}us"
            )


class TestCoordinatedOmissionGuard:
    def test_offered_rate_survives_server_stall(self):
        stall_s = 0.25
        srv = serve_in_thread(
            RefServerConfig(service={"type": "constant", "value": 1_000.0})
        )
        spec = live_spec(
            total_rate_rps=1_000.0,
            connections_per_instance=4,
            warmup_samples=50,
            measurement_samples_per_instance=800,
            keep_raw=True,
        )
        timer = threading.Timer(0.2, srv.stall, args=(stall_s,))
        try:
            timer.start()
            with backend_defaults(
                "live", target=srv.target, record_send_log=True
            ):
                result = measure_spec(spec)
        finally:
            timer.cancel()
            srv.stop()

        raw = result.raw_samples()
        assert raw.size == 800  # measurement completed despite the stall
        # The stall really bit: some latencies carry most of it.
        assert float(raw.max()) >= stall_s * 0.6 * 1e6

        (log,) = result.send_log.values()
        actual = log["actual"]
        scheduled = log["scheduled"]
        # Open loop: sends never paused for anything near the stall —
        # a closed-loop client would show a >= 250 ms hole here.
        gaps = np.diff(actual)
        assert float(gaps.max()) < stall_s / 2
        # ... and never drifted off the precomputed schedule.
        assert float(np.max(actual - scheduled)) < stall_s / 2
        # Offered rate stayed at the configured load throughout.
        span = float(actual[-1] - actual[0])
        rate = (actual.size - 1) / span
        assert rate == pytest.approx(1_000.0, rel=0.25)
