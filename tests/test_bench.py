"""Unit tests for the test-bench wiring."""

import pytest

from repro.core.bench import BenchConfig, TestBench
from repro.workloads.memcached import MemcachedWorkload


def make_bench(seed=0, run_index=0):
    return TestBench(
        BenchConfig(workload=MemcachedWorkload(service_noise_sigma=0.0), seed=seed),
        run_index=run_index,
    )


class TestConstruction:
    def test_server_booted_on_build(self):
        bench = make_bench()
        assert bench.server.booted

    def test_duplicate_client_rejected(self):
        bench = make_bench()
        bench.add_client("c0")
        with pytest.raises(ValueError):
            bench.add_client("c0")

    def test_client_gets_capture_by_default(self):
        bench = make_bench()
        client = bench.add_client("c0")
        assert client.capture is not None
        assert "c0" in bench.captures

    def test_capture_optional(self):
        bench = make_bench()
        client = bench.add_client("c0", capture=False)
        assert client.capture is None

    def test_open_connections_unique_ids(self):
        bench = make_bench()
        a = bench.open_connections(3)
        b = bench.open_connections(2)
        assert len(set(a + b)) == 5

    def test_open_zero_connections_rejected(self):
        bench = make_bench()
        with pytest.raises(ValueError):
            bench.open_connections(0)

    def test_different_run_index_different_boot_state(self):
        boots = {make_bench(run_index=i).server.boot_quality for i in range(6)}
        assert len(boots) > 1

    def test_same_seed_same_run_reproducible(self):
        a = make_bench(seed=3, run_index=2).server.boot_quality
        b = make_bench(seed=3, run_index=2).server.boot_quality
        assert a == b


class TestRoundTrip:
    def test_request_travels_full_path(self):
        bench = make_bench()
        client = bench.add_client("c0")
        conn = bench.open_connections(1)[0]
        wl = bench.config.workload
        req = wl.sample_request(bench.rng.stream("t"), 0, conn)
        got = []
        client.response_handler = got.append
        client.issue(req)
        bench.sim.run()
        assert got == [req]
        assert req.user_latency_us > 0
        assert req.nic_latency_us > 0
        # The NIC-level view excludes client kernel+CPU time.
        assert req.nic_latency_us < req.user_latency_us
        # And the capture saw it.
        assert len(client.capture.latencies_us) == 1

    def test_cross_rack_client_has_higher_latency(self):
        bench = make_bench()
        near = bench.add_client("near")
        far = bench.add_client("far", rack="rack9")
        conns = bench.open_connections(2)
        wl = bench.config.workload
        results = {}
        for client, conn in ((near, conns[0]), (far, conns[1])):
            req = wl.sample_request(bench.rng.stream("t"), conn, conn)
            client.response_handler = lambda r, name=client.name: results.__setitem__(
                name, r.user_latency_us
            )
            client.issue(req)
            bench.sim.run()
        assert results["far"] > results["near"]


class TestRunControl:
    def test_run_until_predicate(self):
        bench = make_bench()
        bench.sim.schedule(10.0, lambda: None)
        bench.sim.schedule(20.0, lambda: None)
        bench.run_until(lambda: bench.sim.now >= 10.0, check_every=1)
        assert bench.sim.now >= 10.0

    def test_run_until_raises_on_drained_heap(self):
        bench = make_bench()
        with pytest.raises(RuntimeError):
            bench.run_until(lambda: False)

    def test_run_until_bad_check_every(self):
        bench = make_bench()
        with pytest.raises(ValueError):
            bench.run_until(lambda: True, check_every=0)
