"""Tests for the wrk2-style constant-throughput baseline."""

import numpy as np
import pytest

from repro.core.bench import BenchConfig, TestBench
from repro.core.treadmill import TreadmillConfig, TreadmillInstance
from repro.loadtesters.wrk2 import Wrk2Tester
from repro.workloads.memcached import MemcachedWorkload


def run_wrk2(utilization=0.7, seed=7, samples=4000):
    bench = TestBench(BenchConfig(workload=MemcachedWorkload(), seed=seed))
    rate = bench.server.arrival_rate_for_utilization(utilization) * 1e6
    tester = Wrk2Tester(bench, rate, measurement_samples=samples, warmup_samples=200)
    tester.start()
    bench.run_to_completion([tester])
    return bench, tester.report()


def run_treadmill(utilization=0.7, seed=7, samples=4000):
    bench = TestBench(BenchConfig(workload=MemcachedWorkload(), seed=seed))
    rate = bench.server.arrival_rate_for_utilization(utilization) * 1e6
    insts = [
        TreadmillInstance(
            bench,
            f"tm{i}",
            TreadmillConfig(
                rate_rps=rate / 4,
                connections=8,
                warmup_samples=200,
                measurement_samples=samples // 4,
                keep_raw=True,
            ),
        )
        for i in range(4)
    ]
    for inst in insts:
        inst.start()
    bench.run_to_completion(insts)
    return bench, [i.report() for i in insts]


class TestWrk2:
    def test_sustains_target_rate_at_high_load(self):
        """Unlike closed-loop tools, wrk2's open-loop schedule delivers
        the offered rate regardless of server latency."""
        bench, report = run_wrk2(utilization=0.8)
        elapsed_s = bench.sim.now / 1e6
        achieved = report.requests_sent / elapsed_s
        target = bench.server.arrival_rate_for_utilization(0.8) * 1e6
        # The fresh bench above recomputes the same target rate.
        assert achieved == pytest.approx(target, rel=0.1)

    def test_outstanding_not_capped(self):
        bench = TestBench(BenchConfig(workload=MemcachedWorkload(), seed=8))
        rate = bench.server.arrival_rate_for_utilization(0.85) * 1e6
        tester = Wrk2Tester(bench, rate, measurement_samples=3000, warmup_samples=100)
        tester.start()
        bench.run_to_completion([tester])
        caps = []
        for client in tester.clients:
            levels, _ = client.controller.tracker.distribution()
            caps.append(levels.max())
        # Open loop: in-flight counts can exceed the connection count.
        assert max(caps) > 8

    def test_clients_lightly_utilized(self):
        _, report = run_wrk2()
        assert max(report.client_utilizations.values()) < 0.25

    def test_mild_tail_underestimate_vs_poisson(self):
        """The remaining flaw: metronome pacing offers a less variable
        arrival stream than production's Poisson, so the NIC-level tail
        sits below Treadmill's.  The effect is a few percent, so the
        comparison pools two independent runs per tool to beat run
        noise (single-seed comparisons can flip)."""
        wrk2_samples, tm_samples = [], []
        for seed in (10, 11):
            _, wrk2_report = run_wrk2(seed=seed, samples=6000)
            _, tm_reports = run_treadmill(seed=seed, samples=6000)
            wrk2_samples.append(wrk2_report.ground_truth_samples)
            tm_samples.extend(r.ground_truth_samples for r in tm_reports)
        wrk2_p99 = float(np.quantile(np.concatenate(wrk2_samples), 0.99))
        tm_p99 = float(np.quantile(np.concatenate(tm_samples), 0.99))
        assert wrk2_p99 < tm_p99

    def test_coordinated_omission_free_flag(self):
        bench = TestBench(BenchConfig(workload=MemcachedWorkload(), seed=1))
        tester = Wrk2Tester(bench, 10_000, measurement_samples=10)
        assert tester.coordinated_omission_free

    def test_validation(self):
        bench = TestBench(BenchConfig(workload=MemcachedWorkload(), seed=1))
        with pytest.raises(ValueError):
            Wrk2Tester(bench, 10_000, clients=0)
