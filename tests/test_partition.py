"""Partitioned kernel: bit-identity, determinism, and failure modes.

The conservative parallel DES (:mod:`repro.sim.partition`) promises
one thing: **any partition count produces `RunResult`s byte-identical
to the serial kernel** — in-process and multi-process alike.  These
tests pin that promise for the bench-shaped spec, for every curated
library scenario, and property-style across topologies x seeds x
partition counts; plus the deterministic boundary tiebreak, the event
pool's stale-handle tripwires, and the partition chaos invariant
(bit-identical or clean ``SimError``, never a hang).
"""

from __future__ import annotations

import pytest

from repro.exec.spec import RunSpec, result_fingerprint
from repro.measure.simbackend import (
    _drive_single_partitioned,
    _drive_single_server,
)
from repro.scenarios import (
    list_scenarios,
    load_scenario,
    scenario_from_json,
    scenario_to_jsonable,
)
from repro.scenarios.compiler import auto_partitions
from repro.scenarios.runtime import _execute_scenario_spec
from repro.sim.engine import SimulationError, Simulator
from repro.sim.partition import (
    PartitionedSimulator,
    SimError,
    assign_shards,
    run_windows,
)
from repro.workloads import MemcachedWorkload
from repro.core.config import workload_from_json


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def bench_shaped_spec(samples: int = 100) -> RunSpec:
    """The ``scripts/bench_sim.py`` spec shape, test-sized."""
    return RunSpec(
        workload=MemcachedWorkload(),
        target_utilization=0.7,
        num_instances=2,
        connections_per_instance=4,
        warmup_samples=20,
        measurement_samples_per_instance=samples,
        keep_raw=True,
        seed=7,
    )


def downscale(scenario):
    """A test-sized copy of a library scenario (same shape, fewer samples)."""
    doc = scenario_to_jsonable(scenario)
    for f in doc.get("fleets", []):
        f["instances"] = min(f.get("instances", 2), 2)
        f["warmup_samples"] = 15
        f["measurement_samples_per_instance"] = 50
        f["connections_per_instance"] = min(
            f.get("connections_per_instance", 8), 4
        )
    for p in doc.get("pools", []):
        p["count"] = min(p.get("count", 1), 2)
    return scenario_from_json(doc)


def scenario_spec(scenario, partitions=None) -> RunSpec:
    """A multi-pool RunSpec for ``scenario`` (the compiler's shape)."""
    return RunSpec(
        workload=workload_from_json(dict(scenario.pools[0].workload)),
        num_instances=sum(f.instances for f in scenario.fleets),
        quantiles=scenario.quantiles,
        combine=scenario.combine,
        keep_raw=scenario.keep_raw,
        seed=scenario.seed,
        scenario=scenario,
        partitions=partitions,
    )


def make_scenario(pools, fleets, seed):
    """A small synthetic scenario document for the property sweep."""
    return scenario_from_json(
        {
            "name": "sweep",
            "seed": seed,
            "keep_raw": True,
            "pools": pools,
            "fleets": fleets,
        }
    )


# ----------------------------------------------------------------------
# shard assignment
# ----------------------------------------------------------------------
class TestAssignShards:
    HOSTS = [
        ("s0", "r0"),
        ("s1", "r1"),
        ("s2", "r2"),
        ("c0", "r0"),
        ("c1", "r1"),
    ]

    def test_one_shard_maps_everything_to_zero(self):
        assert set(assign_shards(self.HOSTS, 1).values()) == {0}

    def test_rack_affine_when_shards_do_not_exceed_racks(self):
        mapping = assign_shards(self.HOSTS, 2)
        # Hosts sharing a rack always share a shard.
        assert mapping["s0"] == mapping["c0"]
        assert mapping["s1"] == mapping["c1"]
        # Every shard is used and ids stay in range.
        assert set(mapping.values()) == {0, 1}

    def test_shards_equal_racks_is_one_rack_per_shard(self):
        mapping = assign_shards(self.HOSTS, 3)
        racks = {"r0": mapping["s0"], "r1": mapping["s1"], "r2": mapping["s2"]}
        assert sorted(racks.values()) == [0, 1, 2]
        assert mapping["c0"] == racks["r0"]
        assert mapping["c1"] == racks["r1"]

    def test_splits_within_racks_when_shards_exceed_racks(self):
        hosts = [("h0", "r0"), ("h1", "r0"), ("h2", "r0"), ("h3", "r0")]
        mapping = assign_shards(hosts, 2)
        assert set(mapping.values()) == {0, 1}

    def test_deterministic(self):
        assert assign_shards(self.HOSTS, 2) == assign_shards(self.HOSTS, 2)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            assign_shards(self.HOSTS, 0)


class TestLookaheadGuard:
    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_lookahead_is_an_error(self, bad):
        with pytest.raises(SimulationError):
            PartitionedSimulator(2).set_lookahead(bad)

    def test_simerror_is_the_kernel_error(self):
        assert SimError is SimulationError


# ----------------------------------------------------------------------
# bit-identity: the bench spec
# ----------------------------------------------------------------------
class TestSingleServerIdentity:
    @pytest.fixture(scope="class")
    def reference(self):
        return result_fingerprint(_drive_single_server(bench_shaped_spec()))

    @pytest.mark.parametrize("n", [1, 2, 4, 5])
    def test_inproc_matches_serial(self, reference, n):
        result = _drive_single_partitioned(bench_shaped_spec(), n, "inproc")
        assert result_fingerprint(result) == reference

    @pytest.mark.parametrize("n", [2, 4])
    def test_multiprocess_matches_serial(self, reference, n):
        result = _drive_single_partitioned(bench_shaped_spec(), n, "process")
        assert result_fingerprint(result) == reference

    def test_partitions_field_is_digest_neutral(self):
        spec = bench_shaped_spec()
        assert spec.replace(partitions=3).digest() == spec.digest()

    def test_backend_routes_spec_partitions(self):
        from repro.measure.simbackend import _SimRun, SimOptions

        spec = bench_shaped_spec().replace(partitions=2)
        routed = _SimRun(spec, SimOptions()).drive()
        assert result_fingerprint(routed) == result_fingerprint(
            _drive_single_server(bench_shaped_spec())
        )


# ----------------------------------------------------------------------
# bit-identity: every curated library scenario
# ----------------------------------------------------------------------
class TestLibraryScenarioIdentity:
    @pytest.mark.parametrize("name", list_scenarios())
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_inproc_matches_serial(self, name, n):
        scenario = downscale(load_scenario(name))
        serial = result_fingerprint(
            _execute_scenario_spec(scenario_spec(scenario))
        )
        sharded = _execute_scenario_spec(
            scenario_spec(scenario, partitions=n)
        )
        assert result_fingerprint(sharded) == serial

    @pytest.mark.parametrize(
        "name", ["cross_rack_shift", "colocated_antagonist"]
    )
    def test_multiprocess_matches_serial(self, name):
        scenario = downscale(load_scenario(name))
        serial = result_fingerprint(
            _execute_scenario_spec(scenario_spec(scenario))
        )
        sharded = _execute_scenario_spec(
            scenario_spec(scenario, partitions=2), partition_mode="process"
        )
        assert result_fingerprint(sharded) == serial


# ----------------------------------------------------------------------
# property sweep: topologies x seeds x partition counts
# ----------------------------------------------------------------------
TOPOLOGIES = {
    "two_racks": (
        [
            {"name": "web", "workload": {"workload": "memcached"}, "rack": 0},
            {"name": "kv", "workload": {"workload": "memcached"}, "rack": 1},
        ],
        [
            {
                "name": "fa",
                "target": "web",
                "instances": 2,
                "connections_per_instance": 2,
                "rate_rps": 20_000,
                "warmup_samples": 10,
                "measurement_samples_per_instance": 30,
            },
            {
                "name": "fb",
                "target": "kv",
                "instances": 1,
                "connections_per_instance": 2,
                "rate_rps": 10_000,
                "warmup_samples": 10,
                "measurement_samples_per_instance": 30,
            },
        ],
    ),
    "three_racks": (
        [
            {"name": "p0", "workload": {"workload": "memcached"}, "rack": 0},
            {"name": "p1", "workload": {"workload": "memcached"}, "rack": 1},
            {"name": "p2", "workload": {"workload": "memcached"}, "rack": 2},
        ],
        [
            {
                "name": f"f{i}",
                "target": f"p{i}",
                "instances": 1,
                "connections_per_instance": 2,
                "rate_rps": 10_000,
                "warmup_samples": 10,
                "measurement_samples_per_instance": 30,
            }
            for i in range(3)
        ],
    ),
    "one_rack_two_pools": (
        [
            {
                "name": "pool",
                "workload": {"workload": "memcached"},
                "rack": 0,
                "count": 2,
            },
        ],
        [
            {
                "name": "fl",
                "target": "pool",
                "instances": 2,
                "connections_per_instance": 2,
                "rate_rps": 20_000,
                "warmup_samples": 10,
                "measurement_samples_per_instance": 30,
            },
        ],
    ),
}


class TestPartitionPropertySweep:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("n", [2, 3])
    def test_digest_identical_to_serial(self, topology, seed, n):
        pools, fleets = TOPOLOGIES[topology]
        scenario = make_scenario(pools, fleets, seed)
        serial = result_fingerprint(
            _execute_scenario_spec(scenario_spec(scenario))
        )
        sharded = _execute_scenario_spec(
            scenario_spec(scenario, partitions=n)
        )
        assert result_fingerprint(sharded) == serial


class TestCompilerAutoPartitions:
    def test_multi_rack_scenario_gets_rack_count(self):
        pools, fleets = TOPOLOGIES["three_racks"]
        assert auto_partitions(make_scenario(pools, fleets, 1)) == 3

    def test_single_rack_scenario_stays_serial(self):
        pools, fleets = TOPOLOGIES["one_rack_two_pools"]
        assert auto_partitions(make_scenario(pools, fleets, 1)) is None

    def test_compiled_specs_carry_the_auto_partitioning(self):
        from repro.scenarios.compiler import compile_scenario

        pools, fleets = TOPOLOGIES["two_racks"]
        (spec,) = compile_scenario(make_scenario(pools, fleets, 1))
        assert spec.partitions == 2


# ----------------------------------------------------------------------
# the deterministic boundary tiebreak (stub-handle unit test)
# ----------------------------------------------------------------------
class _StubHandle:
    """Scripted shard: fixed next-times and exports, records imports."""

    def __init__(self, next_times, exports, completions=()):
        self._next_times = list(next_times)
        self._exports = list(exports)
        self._completions = list(completions)
        self.imports_seen = []
        self.barriers = []
        self.finalized_at = None

    def begin_exchange(self, wseq, imports, controls):
        self.imports_seen.extend(imports)

    def end_exchange(self):
        return self._next_times.pop(0) if self._next_times else float("inf")

    def begin_advance(self, wseq, barrier):
        self.barriers.append(barrier)

    def end_advance(self):
        exports = self._exports.pop(0) if self._exports else []
        completions, self._completions = self._completions, []
        return exports, completions, len(exports), self.barriers[-1]

    def finalize(self, global_now):
        self.finalized_at = global_now


class TestBoundaryTiebreak:
    def test_same_timestamp_imports_order_by_partition_then_seq(self):
        # Shards 0 and 1 both export to shard 2; three events share
        # t=5.0, one lands at t=4.5.  The merged import order must be
        # timestamp first, then (source partition, sequence) — never
        # arrival order.
        a = _StubHandle(
            [1.0],
            [[(5.0, 0, "a0"), (5.0, 0, "a1")]],
            completions=[(1.0, "instA")],
        )
        b = _StubHandle(
            [1.0],
            [[(5.0, 1, "b0"), (4.5, 1, "b1")]],
            completions=[(1.0, "instB")],
        )
        c = _StubHandle([float("inf")], [])
        routes = {0: (0, 2), 1: (1, 2)}
        stats = run_windows(
            [a, b, c],
            lookahead_us=10.0,
            n_instances=2,
            antagonist_shards=[],
            routes=routes,
        )
        assert [p for _, _, p in c.imports_seen] == ["b1", "a0", "a1", "b0"]
        assert stats.boundary_events == 4
        # One advanced window; the second exchange (which delivers the
        # imports) finds every shard drained and closes the run.
        assert stats.windows == 1
        assert stats.t_done == 1.0
        assert a.barriers[0] == b.barriers[0] == 11.0
        assert c.finalized_at == stats.global_now

    def test_drained_before_complete_is_a_clean_simerror(self):
        a = _StubHandle([float("inf")], [])
        with pytest.raises(SimulationError, match="instances complete"):
            run_windows(
                [a],
                lookahead_us=10.0,
                n_instances=1,
                antagonist_shards=[],
                routes={},
            )


# ----------------------------------------------------------------------
# event-pool stale-handle tripwires (satellite regression)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not __debug__, reason="tripwires are __debug__ asserts")
class TestEventPoolTripwires:
    @staticmethod
    def _pooled_tombstone(sim):
        """Make the kernel pool one dead event, the legitimate way."""
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        del event  # pooling requires the handle to be dropped
        sim.run()
        assert sim._pool, "expected the cancelled event to be pooled"
        return sim

    def test_live_event_in_pool_trips_on_reuse(self):
        sim = Simulator()
        live = sim.schedule(5.0, lambda: None)
        sim._pool.append(live)  # simulate the stale-handle bug
        with pytest.raises(AssertionError, match="live state"):
            sim.schedule(1.0, lambda: None)

    def test_cross_kernel_recycling_trips(self):
        a = self._pooled_tombstone(Simulator())
        b = Simulator()
        b._pool.append(a._pool.pop())  # event owned by kernel `a`
        with pytest.raises(AssertionError, match="partition boundary"):
            b.schedule(1.0, lambda: None)

    def test_clean_recycling_stays_silent(self):
        sim = self._pooled_tombstone(Simulator())
        event = sim.schedule(1.0, lambda: None)  # reuses the pooled one
        assert not event.cancelled and event._sim is sim


# ----------------------------------------------------------------------
# partition chaos: bit-identical or clean SimError, never a hang
# ----------------------------------------------------------------------
class TestPartitionChaos:
    @staticmethod
    def _run(nth):
        from repro.faults.harness import run_partition_chaos
        from repro.faults.plan import FaultAction, FaultPlan

        plan = FaultPlan(
            seed=nth,
            actions=(
                FaultAction(
                    kind="partition_desync", site="partition.frame", nth=nth
                ),
            ),
        )
        return run_partition_chaos(
            seed=nth,
            partitions=2,
            samples_per_instance=60,
            plan=plan,
            window_timeout_s=3.0,
            deadline_s=60.0,
        )

    def test_dropped_window_frame_fails_cleanly(self):
        report = self._run(nth=1)  # odd nth: drop
        assert report.invariant_holds
        assert report.clean_failure is not None
        assert not report.hang and report.unexpected is None
        assert report.fired == [("partition.frame", 1, "partition_desync")]

    def test_duplicated_window_frame_fails_cleanly(self):
        report = self._run(nth=2)  # even nth: duplicate
        assert report.invariant_holds
        assert report.clean_failure is not None
        assert "desync" in report.clean_failure

    def test_no_faults_is_bit_identical(self):
        from repro.faults.harness import run_partition_chaos
        from repro.faults.plan import FaultPlan

        report = run_partition_chaos(
            seed=0,
            partitions=2,
            samples_per_instance=60,
            plan=FaultPlan(seed=0, actions=()),
        )
        assert report.identical and report.invariant_holds

    def test_desync_kind_is_excluded_from_default_plans(self):
        from repro.faults.plan import FaultPlan

        plan = FaultPlan.generate(seed=3, n_faults=32)
        assert "partition_desync" not in plan.kinds()
