"""Property tests for network links and controllers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arrival import PoissonArrivals
from repro.core.controllers import ClosedLoopController, OpenLoopController
from repro.sim.engine import Simulator
from repro.sim.network import Link, LinkConfig


class TestLinkProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=100),
        st.floats(min_value=1.0, max_value=2000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_fifo_delivery_order_and_conservation(self, sizes, bandwidth):
        sim = Simulator()
        link = Link(sim, LinkConfig(bandwidth_bpus=bandwidth, propagation_us=3.0))
        delivered = []
        for i, size in enumerate(sizes):
            link.send(size, lambda i=i: delivered.append(i))
        sim.run()
        assert delivered == list(range(len(sizes)))
        assert link.packets == len(sizes)
        assert link.bytes_sent == sum(sizes)

    @given(
        st.lists(st.integers(min_value=1, max_value=5000), min_size=2, max_size=50)
    )
    @settings(max_examples=30, deadline=None)
    def test_total_busy_time_is_sum_of_transmissions(self, sizes):
        sim = Simulator()
        bw = 100.0
        link = Link(sim, LinkConfig(bandwidth_bpus=bw, propagation_us=0.0))
        for size in sizes:
            link.send(size, lambda: None)
        sim.run()
        assert link.busy_us == pytest.approx(sum(sizes) / bw)
        # Back-to-back sends drain exactly at the sum of tx times.
        assert sim.now == pytest.approx(sum(sizes) / bw)


class _EchoServer:
    """Responds after an exponential delay (for controller properties)."""

    def __init__(self, sim, rng, mean_latency=80.0):
        self.sim = sim
        self.rng = rng
        self.mean = mean_latency
        self.controller = None

    def send(self, conn_id):
        delay = float(self.rng.exponential(self.mean))
        self.sim.schedule(delay, lambda: self.controller.on_response(conn_id))


class TestControllerProperties:
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_closed_loop_never_exceeds_connection_cap(self, n_conns, seed):
        sim = Simulator()
        rng = np.random.default_rng(seed)
        server = _EchoServer(sim, rng)
        ctrl = ClosedLoopController(
            sim,
            server.send,
            connections=list(range(n_conns)),
            rng=np.random.default_rng(seed + 1),
        )
        server.controller = ctrl
        ctrl.start()
        sim.run_until(20_000.0)
        ctrl.tracker.finalize()
        levels, _ = ctrl.tracker.distribution()
        assert levels.max() <= n_conns
        ctrl.stop()
        sim.run()

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_open_loop_sends_match_poisson_count(self, seed):
        """Over a fixed horizon the open-loop controller sends a
        Poisson-distributed count with the configured mean, regardless
        of server behaviour."""
        sim = Simulator()
        rng = np.random.default_rng(seed)
        server = _EchoServer(sim, rng, mean_latency=10_000.0)  # very slow
        rate = 0.01  # per us -> expect ~1000 sends in 100 ms
        ctrl = OpenLoopController(
            sim,
            PoissonArrivals(rate * 1e6),
            server.send,
            connections=[0, 1, 2, 3],
            rng=np.random.default_rng(seed + 1),
        )
        server.controller = ctrl
        ctrl.start()
        sim.run_until(100_000.0)
        sent = ctrl.sent
        ctrl.stop()
        sim.run()
        # Poisson(1000): 6-sigma band.
        assert 800 <= sent <= 1200

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_tracker_conservation(self, seed):
        """Sends minus completions equals the tracker's final count."""
        sim = Simulator()
        rng = np.random.default_rng(seed)
        server = _EchoServer(sim, rng, mean_latency=200.0)
        ctrl = OpenLoopController(
            sim,
            PoissonArrivals(20_000),
            server.send,
            connections=[0, 1],
            rng=np.random.default_rng(seed + 1),
        )
        server.controller = ctrl
        ctrl.start()
        sim.run_until(50_000.0)
        assert ctrl.tracker.count == ctrl.sent - ctrl.completed
        ctrl.stop()
        sim.run()
        assert ctrl.tracker.count == 0
