"""Integration tests: every paper artifact regenerates at quick scale
and shows the paper's qualitative shape."""

import numpy as np
import pytest

from repro.experiments import (
    fig01_outstanding,
    fig02_client_bias,
    fig03_queueing_bias,
    fig04_hysteresis,
    fig05_low_util,
    fig06_high_util,
    tab01_features,
)
from repro.experiments.common import get_scale
from repro.experiments.runner import EXPERIMENTS, experiment_ids, run_experiment


class TestRegistry:
    def test_all_artifacts_registered(self):
        ids = experiment_ids()
        assert len(ids) == 15
        for fig in range(1, 13):
            assert f"fig{fig}" in ids
        assert "tab1" in ids and "tab4" in ids
        assert "findings" in ids

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            get_scale("gigantic")


class TestTab1:
    def test_treadmill_column_complete(self):
        result = tab01_features.run()
        assert result.treadmill_complete

    def test_render_mentions_both_tables(self):
        text = tab01_features.render(tab01_features.run())
        assert "Table I" in text and "Table II" in text


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig01_outstanding.run(scale="quick")

    def test_closed_loop_truncated_at_connection_count(self, result):
        for n in (4, 8, 12):
            levels, _ = result.cdfs[f"Closed-Loop w/{n} Connections"]
            assert levels.max() <= n

    def test_open_loop_tail_exceeds_every_cap(self, result):
        levels, _ = result.cdfs["Open-Loop"]
        assert levels.max() > 12

    def test_open_loop_p99_exceeds_closed(self, result):
        open_p99 = result.quantile("Open-Loop", 0.99)
        closed_p99 = result.quantile("Closed-Loop w/12 Connections", 0.99)
        assert open_p99 > closed_p99

    def test_render(self, result):
        assert "Open-Loop" in fig01_outstanding.render(result)


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig02_client_bias.run(scale="quick")

    def test_cross_rack_client_dominates_tail(self, result):
        assert result.tail_share(result.outlier) > 0.8

    def test_outlier_p99_far_above_others(self, result):
        outlier = result.per_client_p99[result.outlier]
        others = [
            v for k, v in result.per_client_p99.items() if k != result.outlier
        ]
        assert outlier > 1.5 * max(others)

    def test_pooled_biased_above_sound_aggregate(self, result):
        assert result.pooled_p99 > 1.2 * result.aggregated_p99


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig03_queueing_bias.run(scale="quick")

    def test_single_client_component_grows_with_load(self, result):
        assert result.component_growth("single-client", "client") > 1.1

    def test_multi_client_component_flat(self, result):
        assert result.component_growth("multi-client", "client") < 1.05

    def test_multi_network_flat(self, result):
        assert result.component_growth("multi-client", "network") < 1.05

    def test_server_component_grows_in_both(self, result):
        assert result.component_growth("multi-client", "server") > 1.5


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig04_hysteresis.run(scale="quick")

    def test_runs_converge_to_different_values(self, result):
        assert result.max_deviation_pct > 3.0

    def test_within_run_trajectories_recorded(self, result):
        for t in result.trajectories:
            assert len(t.trajectory) >= 10


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig05_low_util.run(scale="quick")

    def test_cloudsuite_overestimates_tail(self, result):
        cs = result.runs["cloudsuite"]
        assert cs is not None
        assert cs.reported_quantile(0.99) > 2 * cs.ground_truth_quantile(0.99)

    def test_cloudsuite_client_heavily_utilized(self, result):
        cs = result.runs["cloudsuite"]
        assert max(cs.client_utilizations.values()) > 0.6

    def test_treadmill_tracks_ground_truth_with_kernel_offset(self, result):
        tm = result.runs["treadmill"]
        for q in (0.5, 0.9, 0.99):
            offset = tm.offset_at(q)
            assert 20.0 < offset < 50.0

    def test_treadmill_clients_lightly_utilized(self, result):
        tm = result.runs["treadmill"]
        assert max(tm.client_utilizations.values()) < 0.1


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig06_high_util.run(scale="quick")

    def test_cloudsuite_cannot_run(self, result):
        assert result.cloudsuite_saturated

    def test_mutilate_underestimates_true_tail(self, result):
        assert result.mutilate_underestimation() > 1.2

    def test_treadmill_offset_constant_across_loads(self, result):
        low = fig05_low_util.run(scale="quick")
        high_offset = result.treadmill_offset()
        low_offset = low.treadmill_offset_constant()
        assert abs(high_offset - low_offset) < 10.0
