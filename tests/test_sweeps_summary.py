"""Tests for the utilization sweep and latency summaries."""

import numpy as np
import pytest

from repro.core.sweeps import sweep_utilization
from repro.stats.summary import summarize
from repro.workloads.memcached import MemcachedWorkload


@pytest.fixture(scope="module")
def sweep():
    return sweep_utilization(
        MemcachedWorkload(),
        utilizations=(0.3, 0.6, 0.85),
        quantiles=(0.5, 0.99),
        samples_per_instance=1000,
        runs_per_point=2,
        seed=21,
    )


class TestSweep:
    def test_one_point_per_utilization(self, sweep):
        assert [p.target_utilization for p in sweep.points] == [0.3, 0.6, 0.85]

    def test_measured_utilization_tracks_target(self, sweep):
        """Measured utilization follows the target, biased upward at
        low load: the default ondemand governor's ramp stalls consume
        real CPU, and the rate calibration deliberately does not hide
        that (the same effect exists on real hardware).  The bias
        shrinks as load rises and idle gaps vanish."""
        biases = []
        for p in sweep.points:
            bias = p.measured_utilization - p.target_utilization
            assert -0.05 <= bias <= 0.2
            biases.append(bias)
        assert biases[0] > biases[-1]  # governor overhead fades with load
        assert sweep.points[-1].measured_utilization == pytest.approx(
            sweep.points[-1].target_utilization, abs=0.07
        )

    def test_tail_series_monotone_in_load(self, sweep):
        p99 = sweep.series(0.99)
        assert p99[0] < p99[1] < p99[2]

    def test_clients_stay_healthy(self, sweep):
        for p in sweep.points:
            assert p.max_client_utilization < 0.5

    def test_knee_detection(self, sweep):
        knee = sweep.knee_utilization(q=0.99, factor=1.5)
        # The curve roughly doubles by 85%, so a 1.5x knee exists.
        assert knee in (0.6, 0.85)
        # An absurd factor finds no knee.
        assert sweep.knee_utilization(q=0.99, factor=50.0) is None

    def test_knee_factor_validation(self, sweep):
        with pytest.raises(ValueError):
            sweep.knee_utilization(factor=1.0)

    def test_render_contains_all_points(self, sweep):
        text = sweep.render()
        assert "30%" in text and "85%" in text
        assert "p99" in text

    def test_input_validation(self):
        wl = MemcachedWorkload()
        with pytest.raises(ValueError):
            sweep_utilization(wl, utilizations=())
        with pytest.raises(ValueError):
            sweep_utilization(wl, utilizations=(1.5,))


class TestSummary:
    def test_basic_statistics(self):
        rng = np.random.default_rng(0)
        data = rng.exponential(100.0, size=20_000)
        s = summarize(data)
        assert s.n == 20_000
        assert s.mean_us == pytest.approx(100.0, rel=0.05)
        assert s.cv == pytest.approx(1.0, rel=0.05)
        assert s.min_us <= s.quantiles_us[0.5] <= s.max_us

    def test_quantile_ladder_with_cis(self):
        rng = np.random.default_rng(1)
        data = rng.lognormal(4.0, 1.0, size=5000)
        s = summarize(data, quantiles=(0.5, 0.99))
        for q in (0.5, 0.99):
            lo, hi = s.quantile_cis[q]
            assert lo <= s.quantiles_us[q] <= hi

    def test_tail_ratio_for_exponential(self):
        """Exponential: p99/p50 = ln(100)/ln(2) ~ 6.64."""
        rng = np.random.default_rng(2)
        s = summarize(rng.exponential(50.0, size=100_000))
        assert s.tail_ratio == pytest.approx(np.log(100) / np.log(2), rel=0.05)

    def test_render(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0] * 20, quantiles=(0.5, 0.99))
        text = s.render()
        assert "p50" in text and "p99" in text and "CI" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0], quantiles=())
        with pytest.raises(ValueError):
            summarize([1.0, 2.0], quantiles=(1.5,))

    def test_degenerate_sample(self):
        s = summarize([5.0] * 100)
        assert s.std_us == 0.0
        assert s.tail_ratio == pytest.approx(1.0)
