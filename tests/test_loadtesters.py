"""Tests for the pitfall baseline load testers."""

import numpy as np
import pytest

from repro.core.bench import BenchConfig, TestBench
from repro.loadtesters import (
    FEATURES,
    TOOLS,
    CloudSuiteTester,
    FabanTester,
    MutilateTester,
    YcsbTester,
    feature_matrix,
    render_feature_table,
)
from repro.workloads.memcached import MemcachedWorkload


def make_bench(seed=0):
    return TestBench(BenchConfig(workload=MemcachedWorkload(), seed=seed))


def run_tester(tester, bench):
    tester.start()
    bench.run_to_completion([tester])
    return tester.report()


class TestFeatureMatrix:
    def test_all_tools_in_every_row(self):
        for row, cols in FEATURES.items():
            assert set(cols) == set(TOOLS)

    def test_treadmill_handles_everything(self):
        assert all(cols["Treadmill"] for cols in FEATURES.values())
        assert all(cols["Treadmill-live"] for cols in FEATURES.values())

    def test_only_treadmill_handles_hysteresis(self):
        row = FEATURES["Performance Hysteresis"]
        assert [t for t in TOOLS if row[t]] == ["Treadmill", "Treadmill-live"]

    def test_closed_loop_tools_fail_interarrival(self):
        row = FEATURES["Query Interarrival Generation"]
        for tool in ("YCSB", "Faban", "Mutilate"):
            assert not row[tool]

    def test_single_client_tools_fail_queueing(self):
        row = FEATURES["Client-side Queueing Bias"]
        assert not row["YCSB"] and not row["CloudSuite"]

    def test_matrix_copy_is_defensive(self):
        m = feature_matrix()
        m["Generality"]["YCSB"] = False
        assert FEATURES["Generality"]["YCSB"] is True

    def test_render_contains_all_tools(self):
        text = render_feature_table()
        for tool in TOOLS:
            assert tool in text


class TestCloudSuite:
    def test_saturation_detection(self):
        bench = make_bench()
        capacity = CloudSuiteTester(
            make_bench(), 1_000, measurement_samples=10
        ).clients[0].machine.spec.capacity_rps
        t = CloudSuiteTester(bench, capacity * 2, measurement_samples=10)
        assert t.saturated

    def test_overestimates_tail_near_capacity(self):
        """The Fig. 5 behaviour: heavy client-side queueing bias."""
        bench = make_bench()
        capacity = CLOUD_CAP = t_cap(bench)
        tester = CloudSuiteTester(
            bench, capacity * 0.85, measurement_samples=1500, warmup_samples=100
        )
        report = run_tester(tester, bench)
        reported = report.quantile(0.99)
        truth = report.ground_truth_quantile(0.99)
        assert reported > truth + 80.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CloudSuiteTester(make_bench(), -1.0)
        with pytest.raises(ValueError):
            CloudSuiteTester(make_bench(), 100.0, measurement_samples=0)


def t_cap(bench):
    from repro.loadtesters.cloudsuite import CLOUDSUITE_CLIENT_SPEC

    return CLOUDSUITE_CLIENT_SPEC.capacity_rps


class TestMutilate:
    def test_outstanding_capped(self):
        bench = make_bench()
        tester = MutilateTester(
            bench, 200_000, measurement_samples=1000, agents=4, connections_per_agent=3
        )
        run_tester(tester, bench)
        for client in tester.clients:
            levels, _ = client.controller.tracker.distribution()
            assert levels.max() <= 3

    def test_underestimates_open_loop_tail_at_high_load(self):
        """The Fig. 6 behaviour, at the NIC level (no kernel offset)."""
        bench = make_bench(seed=3)
        rate = bench.server.arrival_rate_for_utilization(0.8) * 1e6
        tester = MutilateTester(bench, rate, measurement_samples=2500, warmup_samples=200)
        closed_report = run_tester(tester, bench)

        from repro.core.treadmill import TreadmillConfig, TreadmillInstance

        bench2 = make_bench(seed=3)
        rate2 = bench2.server.arrival_rate_for_utilization(0.8) * 1e6
        insts = [
            TreadmillInstance(
                bench2,
                f"tm{i}",
                TreadmillConfig(
                    rate_rps=rate2 / 8,
                    connections=8,
                    warmup_samples=200,
                    measurement_samples=350,
                ),
            )
            for i in range(8)
        ]
        for inst in insts:
            inst.start()
        bench2.run_to_completion(insts)
        open_truth = np.quantile(
            np.concatenate([i.report().ground_truth_samples for i in insts]), 0.99
        )
        closed_truth = closed_report.ground_truth_quantile(0.99)
        assert closed_truth < 0.8 * open_truth

    def test_reports_pooled_samples(self):
        bench = make_bench()
        tester = MutilateTester(bench, 100_000, measurement_samples=800)
        report = run_tester(tester, bench)
        total = sum(len(s) for s in report.samples_by_client.values())
        assert len(report.reported_samples) == total

    def test_max_outstanding_property(self):
        t = MutilateTester(make_bench(), 1000, agents=3, connections_per_agent=5)
        assert t.max_outstanding == 15


class TestYcsb:
    def test_reported_samples_quantized_to_buckets(self):
        bench = make_bench()
        tester = YcsbTester(bench, 50_000, measurement_samples=500)
        report = run_tester(tester, bench)
        remainders = np.mod(report.reported_samples, tester.bucket_us)
        assert np.allclose(remainders, tester.bucket_us / 2)

    def test_quantization_destroys_microsecond_resolution(self):
        """Static 1 ms buckets cannot distinguish 60 us from 600 us."""
        bench = make_bench()
        tester = YcsbTester(bench, 50_000, measurement_samples=500)
        report = run_tester(tester, bench)
        assert float(np.quantile(report.reported_samples, 0.5)) == pytest.approx(500.0)

    def test_thread_pool_is_closed_loop(self):
        bench = make_bench()
        tester = YcsbTester(bench, 50_000, measurement_samples=300, threads=16)
        run_tester(tester, bench)
        levels, _ = tester.clients[0].controller.tracker.distribution()
        assert levels.max() <= 16


class TestFaban:
    def test_drivers_spread_load(self):
        bench = make_bench()
        tester = FabanTester(bench, 80_000, measurement_samples=800, drivers=4)
        report = run_tester(tester, bench)
        assert len(report.samples_by_client) == 4
        counts = [len(s) for s in report.samples_by_client.values()]
        assert max(counts) < 2.5 * min(counts)

    def test_approximates_target_rate(self):
        bench = make_bench()
        tester = FabanTester(bench, 80_000, measurement_samples=1500)
        run_tester(tester, bench)
        elapsed_s = bench.sim.now / 1e6
        achieved = tester.report().requests_sent / elapsed_s
        assert achieved == pytest.approx(80_000, rel=0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            FabanTester(make_bench(), 1000, drivers=0)
