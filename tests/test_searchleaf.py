"""Tests for the search-leaf workload (the generality demonstration)."""

import numpy as np
import pytest

from repro.core.bench import BenchConfig, TestBench
from repro.core.treadmill import TreadmillConfig, TreadmillInstance
from repro.workloads.base import Request
from repro.workloads.generators import Constant
from repro.workloads.searchleaf import SearchLeafWorkload


RNG = np.random.default_rng(0)


class TestModel:
    def test_request_shape(self):
        wl = SearchLeafWorkload()
        req = wl.sample_request(RNG, 0, 3)
        assert req.op == "query"
        assert req.conn_id == 3
        assert req.value_size >= 1  # term count
        assert req.response_bytes == 256

    def test_work_scales_with_terms(self):
        wl = SearchLeafWorkload(
            terms=Constant(4), expensive_query_fraction=0.0, service_noise_sigma=0.0
        )
        few = Request(0, 0, "query", value_size=2)
        many = Request(1, 0, "query", value_size=20)
        assert wl.profile(many, RNG).work_us == pytest.approx(
            10 * wl.profile(few, RNG).work_us
        )

    def test_expensive_queries_create_intrinsic_tail(self):
        wl = SearchLeafWorkload(
            terms=Constant(4),
            expensive_query_fraction=0.05,
            expensive_factor=8.0,
            service_noise_sigma=0.0,
        )
        req = Request(0, 0, "query", value_size=4)
        works = np.array([wl.profile(req, RNG).work_us for _ in range(4000)])
        base = np.median(works)
        assert (works > 4 * base).mean() == pytest.approx(0.05, abs=0.02)

    def test_mean_service_accounts_for_expensive_mix(self):
        cheap = SearchLeafWorkload(expensive_query_fraction=0.0)
        mixed = SearchLeafWorkload(expensive_query_fraction=0.1, expensive_factor=10.0)
        assert mixed.mean_service_us() > cheap.mean_service_us()

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchLeafWorkload(expensive_query_fraction=1.5)
        with pytest.raises(ValueError):
            SearchLeafWorkload(expensive_factor=0.5)

    def test_describe(self):
        desc = SearchLeafWorkload().describe()
        assert desc["name"] == "searchleaf"
        assert "terms" in desc


class TestIntegration:
    """The generality claim: the new workload runs through the whole
    stack unchanged."""

    def test_treadmill_measures_searchleaf(self):
        bench = TestBench(BenchConfig(workload=SearchLeafWorkload(), seed=5))
        rate = bench.server.arrival_rate_for_utilization(0.5) * 1e6
        inst = TreadmillInstance(
            bench,
            "tm0",
            TreadmillConfig(
                rate_rps=rate,
                connections=8,
                warmup_samples=100,
                measurement_samples=1500,
                keep_raw=True,
            ),
        )
        inst.start()
        bench.run_to_completion([inst])
        report = inst.report()
        assert report.responses_recorded >= 1500
        assert report.quantile(0.99) > report.quantile(0.5) > 0
        # The expensive-query mechanism shows in the tail ratio.
        assert report.quantile(0.99) / report.quantile(0.5) > 1.5

    def test_utilization_calibration_holds(self):
        bench = TestBench(BenchConfig(workload=SearchLeafWorkload(), seed=6))
        rate = bench.server.arrival_rate_for_utilization(0.5) * 1e6
        inst = TreadmillInstance(
            bench,
            "tm0",
            TreadmillConfig(
                rate_rps=rate, connections=8, warmup_samples=100, measurement_samples=2000
            ),
        )
        inst.start()
        bench.run_to_completion([inst])
        assert bench.server.measured_utilization() == pytest.approx(0.5, abs=0.12)

    def test_integration_under_200_lines(self):
        """The paper: 'Each integration takes less than 200 lines of
        code.'  Hold ourselves to it."""
        import inspect

        import repro.workloads.searchleaf as module

        source = inspect.getsource(module)
        code_lines = [
            line
            for line in source.splitlines()
            if line.strip() and not line.strip().startswith("#")
        ]
        assert len(code_lines) < 200
