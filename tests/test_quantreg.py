"""Unit and property tests for quantile regression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.design import FactorialDesign, Factor, model_matrix
from repro.stats.quantreg import (
    QuantRegResult,
    fit_quantile_regression,
    pinball_loss,
    predict,
)


def intercept_only(n, rng):
    return np.ones((n, 1)), rng.exponential(10.0, size=n)


class TestPinballLoss:
    def test_zero_for_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert pinball_loss(y, y, 0.9) == 0.0

    def test_asymmetric_weighting(self):
        y = np.array([10.0])
        under = pinball_loss(y, np.array([0.0]), 0.9)  # underestimate
        over = pinball_loss(y, np.array([20.0]), 0.9)  # overestimate
        assert under == pytest.approx(9.0)
        assert over == pytest.approx(1.0)

    def test_bad_tau_rejected(self):
        with pytest.raises(ValueError):
            pinball_loss(np.ones(3), np.ones(3), 0.0)


class TestInterceptOnlyFits:
    """With only an intercept, the QR solution is the empirical
    tau-quantile — the cleanest correctness check."""

    @pytest.mark.parametrize("tau", [0.1, 0.5, 0.9, 0.99])
    def test_lp_recovers_empirical_quantile(self, tau):
        rng = np.random.default_rng(0)
        X, y = intercept_only(500, rng)
        fit = fit_quantile_regression(X, y, tau, method="lp")
        assert fit.coefficients[0] == pytest.approx(
            np.quantile(y, tau), rel=0.02, abs=0.5
        )

    @pytest.mark.parametrize("tau", [0.1, 0.5, 0.9])
    def test_saturated_recovers_empirical_quantile(self, tau):
        rng = np.random.default_rng(1)
        X, y = intercept_only(500, rng)
        fit = fit_quantile_regression(X, y, tau, method="saturated")
        assert fit.coefficients[0] == pytest.approx(
            np.quantile(y, tau), rel=0.03, abs=0.5
        )

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_no_constant_beats_the_fit(self, seed):
        """Property: the fitted constant minimizes pinball loss among
        nearby constants."""
        rng = np.random.default_rng(seed)
        X, y = intercept_only(200, rng)
        tau = 0.8
        fit = fit_quantile_regression(X, y, tau, method="lp")
        best = pinball_loss(y, np.full_like(y, fit.coefficients[0]), tau)
        for delta in (-1.0, -0.1, 0.1, 1.0):
            other = pinball_loss(
                y, np.full_like(y, fit.coefficients[0] + delta), tau
            )
            assert best <= other + 1e-9


class TestFactorialFits:
    def make_data(self, rng, cell_effects, reps=50, noise=1.0):
        design = FactorialDesign(
            [Factor("a", "lo", "hi"), Factor("b", "lo", "hi")]
        )
        rows, ys = [], []
        for cfg in design.configs():
            mean = cell_effects[cfg]
            for _ in range(reps):
                rows.append(cfg)
                ys.append(mean + rng.normal(0, noise))
        X, cols = model_matrix(rows, ["a", "b"])
        return X, np.array(ys), cols

    def test_recovers_known_effects_at_median(self):
        rng = np.random.default_rng(2)
        cells = {(0, 0): 100.0, (1, 0): 120.0, (0, 1): 90.0, (1, 1): 140.0}
        X, y, cols = self.make_data(rng, cells, reps=200, noise=0.5)
        fit = fit_quantile_regression(X, y, 0.5, columns=cols)
        assert fit.coef("(Intercept)") == pytest.approx(100.0, abs=1.0)
        assert fit.coef("a") == pytest.approx(20.0, abs=1.5)
        assert fit.coef("b") == pytest.approx(-10.0, abs=1.5)
        assert fit.coef("a:b") == pytest.approx(30.0, abs=2.0)

    def test_lp_and_saturated_agree(self):
        rng = np.random.default_rng(3)
        cells = {(0, 0): 50.0, (1, 0): 60.0, (0, 1): 70.0, (1, 1): 55.0}
        X, y, cols = self.make_data(rng, cells, reps=100, noise=2.0)
        lp = fit_quantile_regression(X, y, 0.9, columns=cols, method="lp")
        sat = fit_quantile_regression(X, y, 0.9, columns=cols, method="saturated")
        assert np.allclose(lp.coefficients, sat.coefficients, atol=0.5)

    def test_auto_prefers_saturated(self):
        rng = np.random.default_rng(4)
        cells = {(0, 0): 50.0, (1, 0): 60.0, (0, 1): 70.0, (1, 1): 55.0}
        X, y, cols = self.make_data(rng, cells)
        fit = fit_quantile_regression(X, y, 0.5, columns=cols, method="auto")
        assert fit.method == "saturated"

    def test_auto_falls_back_to_lp_for_non_saturated(self):
        rng = np.random.default_rng(5)
        X = np.column_stack([np.ones(100), rng.normal(size=100)])
        y = 3.0 + 2.0 * X[:, 1] + rng.normal(size=100)
        fit = fit_quantile_regression(X, y, 0.5)
        assert fit.method == "lp"
        assert fit.coefficients[1] == pytest.approx(2.0, abs=0.5)

    def test_saturated_on_continuous_design_rejected(self):
        rng = np.random.default_rng(6)
        X = np.column_stack([np.ones(50), rng.normal(size=50)])
        with pytest.raises(ValueError):
            fit_quantile_regression(X, rng.normal(size=50), 0.5, method="saturated")

    def test_tau_monotonicity_of_intercept(self):
        """Higher tau -> higher conditional quantile estimate."""
        rng = np.random.default_rng(7)
        X, y = intercept_only(2000, rng)
        fits = [
            fit_quantile_regression(X, y, tau).coefficients[0]
            for tau in (0.1, 0.5, 0.9, 0.99)
        ]
        assert all(a <= b + 1e-6 for a, b in zip(fits, fits[1:]))


class TestWeightsAndPerturbation:
    def test_weights_shift_the_quantile(self):
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        X = np.ones((5, 1))
        heavy_tail = np.array([1.0, 1.0, 1.0, 1.0, 10.0])
        fit = fit_quantile_regression(X, y, 0.5, weights=heavy_tail)
        assert fit.coefficients[0] >= 4.0

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            fit_quantile_regression(
                np.ones((2, 1)), [1.0, 2.0], 0.5, weights=[-1.0, 1.0]
            )

    def test_perturbation_reproducible_with_rng(self):
        rng_a = np.random.default_rng(8)
        rng_b = np.random.default_rng(8)
        X = np.ones((50, 1))
        y = np.arange(50.0)
        a = fit_quantile_regression(X, y, 0.5, perturb_sd=0.01, rng=rng_a)
        b = fit_quantile_regression(X, y, 0.5, perturb_sd=0.01, rng=rng_b)
        assert a.coefficients[0] == b.coefficients[0]

    def test_small_perturbation_barely_moves_fit(self):
        X = np.ones((200, 1))
        y = np.random.default_rng(9).exponential(100.0, size=200)
        clean = fit_quantile_regression(X, y, 0.9)
        noisy = fit_quantile_regression(X, y, 0.9, perturb_sd=0.01)
        assert noisy.coefficients[0] == pytest.approx(clean.coefficients[0], rel=0.02)


class TestResultApi:
    def test_coef_lookup_and_dict(self):
        fit = QuantRegResult(
            tau=0.5,
            coefficients=np.array([1.0, 2.0]),
            columns=["(Intercept)", "x"],
            loss=0.0,
            method="lp",
        )
        assert fit.coef("x") == 2.0
        assert fit.as_dict() == {"(Intercept)": 1.0, "x": 2.0}
        with pytest.raises(KeyError):
            fit.coef("missing")

    def test_predict_shape_validation(self):
        with pytest.raises(ValueError):
            predict(np.ones((3, 2)), np.ones(3))

    def test_validation_of_inputs(self):
        with pytest.raises(ValueError):
            fit_quantile_regression(np.ones((2, 1)), [1.0], 0.5)
        with pytest.raises(ValueError):
            fit_quantile_regression(np.ones((2, 1)), [1.0, 2.0], 1.5)
        with pytest.raises(ValueError):
            fit_quantile_regression(np.empty((0, 1)), [], 0.5)
        with pytest.raises(ValueError):
            fit_quantile_regression(
                np.ones((2, 1)), [1.0, 2.0], 0.5, columns=["a", "b"]
            )
        with pytest.raises(ValueError):
            fit_quantile_regression(np.ones((2, 1)), [1.0, 2.0], 0.5, method="magic")
