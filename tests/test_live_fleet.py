"""Tests for the supervised multi-process live fleet (repro.live.fleet).

The headline invariant, pinned end to end: killing up to
``max_lost_client_fraction`` of the client processes mid-run yields a
*converged, degraded* result whose merge goes through the exact same
aggregation path a single-process run uses — and killing more yields a
clean :class:`LiveMeasurementError`, never a hang.

Also covered here: the seeded decorrelated-jitter backoff shared by the
reconnect and respawn paths, the assignment partitioning that makes the
fleet's offered load compose exactly (per-instance RNG streams keyed by
name, not by process), live scenario routing with per-(fleet, pool)
group metrics, and the live chaos harness.
"""

import threading
import time

import numpy as np
import pytest

from repro.exec.spec import RunSpec
from repro.live import (
    LiveMeasurementError,
    LiveOptions,
    RefServerConfig,
    parse_target,
    serve_in_thread,
)
from repro.live.backoff import (
    RESPAWN_CHANNEL,
    backoff_schedule,
    jitter_rng,
    next_delay,
)
from repro.live.driver import (
    LiveBackend,
    assignments_for_spec,
    build_live_result,
    registry_for_spec,
)
from repro.workloads import MemcachedWorkload


def fleet_spec(**overrides):
    kwargs = dict(
        workload=MemcachedWorkload(),
        total_rate_rps=900.0,
        num_instances=3,
        connections_per_instance=2,
        warmup_samples=20,
        measurement_samples_per_instance=300,
        seed=5,
        backend="live",
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


def fleet_options(target, **overrides):
    kwargs = dict(
        target=target,
        processes=3,
        heartbeat_interval_s=0.1,
        heartbeat_timeout_s=1.0,
        respawn_attempts=0,
        max_lost_client_fraction=0.34,
    )
    kwargs.update(overrides)
    return LiveOptions(**kwargs)


# ----------------------------------------------------------------------
# seeded backoff (shared by reconnects and respawns)
# ----------------------------------------------------------------------
class TestBackoff:
    def test_jitter_rng_is_deterministic_per_slot(self):
        a = jitter_rng(5, 0, 1, 2).uniform(size=4)
        b = jitter_rng(5, 0, 1, 2).uniform(size=4)
        assert a.tolist() == b.tolist()
        # Any coordinate change decorrelates the stream.
        for other in ((6, 0, 1, 2), (5, 1, 1, 2), (5, 0, 2, 2), (5, 0, 1, 3)):
            assert jitter_rng(*other).uniform(size=4).tolist() != a.tolist()

    def test_next_delay_bounds(self):
        rng = jitter_rng(0, 0, 0, 0)
        prev = 0.05
        for _ in range(50):
            prev = next_delay(rng, 0.05, 1.0, prev)
            assert 0.05 <= prev <= 1.0

    def test_schedule_matches_manual_draws(self):
        """backoff_schedule replays the driver's loop variate-for-variate:
        first attempt immediate (no delay recorded), then base, then
        decorrelated-jitter draws."""
        sched = backoff_schedule(
            jitter_rng(5, 0, 2, RESPAWN_CHANNEL), 0.1, 2.0, attempts=4
        )
        assert len(sched) == 3  # attempts - 1 delays
        rng = jitter_rng(5, 0, 2, RESPAWN_CHANNEL)
        prev = 0.1
        expect = [0.1]
        for _ in range(2):
            prev = next_delay(rng, 0.1, 2.0, prev)
            expect.append(prev)
        assert sched == pytest.approx(expect)
        # And the whole schedule replays bit-identically from the seed.
        again = backoff_schedule(
            jitter_rng(5, 0, 2, RESPAWN_CHANNEL), 0.1, 2.0, attempts=4
        )
        assert sched == again

    def test_respawn_channel_disjoint_from_connection_slots(self):
        # Connection slots are small non-negative ints; the respawn
        # channel must never collide with one.
        assert RESPAWN_CHANNEL > 10_000


# ----------------------------------------------------------------------
# assignment partitioning and RNG layout
# ----------------------------------------------------------------------
class TestAssignments:
    def test_plain_spec_assignments(self):
        spec = fleet_spec()
        asg = assignments_for_spec(spec, LiveOptions())
        assert [a.name for a in asg] == ["client0", "client1", "client2"]
        assert sum(a.rate_rps for a in asg) == pytest.approx(900.0)
        assert all(a.target == LiveOptions().target for a in asg)

    def test_fleet_slices_partition_the_assignment_set(self):
        """The union of the per-process slices is exactly the single
        process assignment list — same names, same rates, no overlap —
        so the composed offered load is identical."""
        from repro.live.fleet import FleetRun

        spec = fleet_spec(num_instances=5)
        opts = fleet_options("tcp://127.0.0.1:1", processes=3)
        asg = assignments_for_spec(spec, opts)
        run = FleetRun(spec, opts, asg)
        sliced = [a for s in run.slots for a in s.assignments]
        assert sorted(a.name for a in sliced) == [a.name for a in asg]
        assert len({a.name for a in sliced}) == len(asg)

    def test_gap_streams_keyed_by_instance_name(self):
        """Two registries over the same spec give identical per-name gap
        streams — which is what lets a fleet slice draw exactly the
        variates the single-process driver would have drawn."""
        spec = fleet_spec()
        a = registry_for_spec(spec).stream("client1/gaps").uniform(size=8)
        b = registry_for_spec(spec).stream("client1/gaps").uniform(size=8)
        assert a.tolist() == b.tolist()
        c = registry_for_spec(spec.replace(run_index=1))
        assert c.stream("client1/gaps").uniform(size=8).tolist() != a.tolist()


# ----------------------------------------------------------------------
# fleet end to end
# ----------------------------------------------------------------------
class TestFleetEndToEnd:
    def test_three_process_fleet_converges(self):
        srv = serve_in_thread(
            RefServerConfig(service={"type": "constant", "value": 200.0})
        )
        try:
            spec = fleet_spec()
            opts = fleet_options(srv.target)
            result = LiveBackend(opts).prepare(spec).drive()
        finally:
            srv.stop()
        health = result.live_health
        assert health["processes"] == 3
        assert health["spawned"] == 3
        assert health["lost_clients"] == 0
        assert not health["degraded"]
        assert [r.name for r in result.reports] == [
            "client0", "client1", "client2",
        ]
        assert sum(r.responses_recorded for r in result.reports) == 900
        assert result.metrics[0.5] >= 200.0

    def test_merge_is_single_process_aggregation(self):
        """The fleet merge must be byte-identical to handing the same
        per-instance reports to the single-process aggregation path."""
        srv = serve_in_thread(
            RefServerConfig(service={"type": "constant", "value": 200.0})
        )
        try:
            spec = fleet_spec(measurement_samples_per_instance=200)
            result = LiveBackend(fleet_options(srv.target)).prepare(spec).drive()
        finally:
            srv.stop()
        again = build_live_result(
            spec,
            list(result.reports),
            health_summary=dict(result.live_health),
            send_lag=dict(result.send_lag),
            client_probe=dict(result.client_probe),
            wall_s=1.0,
        )
        assert again.metrics == result.metrics

    def test_kill_within_bound_degrades_and_converges(self):
        srv = serve_in_thread(
            RefServerConfig(service={"type": "constant", "value": 200.0})
        )
        try:
            spec = fleet_spec(measurement_samples_per_instance=900)
            run = LiveBackend(fleet_options(srv.target)).prepare(spec)

            def killer():
                time.sleep(1.2)
                run.slots[1].proc.kill()

            t = threading.Thread(target=killer)
            t.start()
            result = run.drive()
            t.join()
        finally:
            srv.stop()
        health = result.live_health
        assert health["lost_clients"] == 1
        assert health["degraded"]
        assert health["lost_client_fraction"] == pytest.approx(1 / 3)
        # The lost slot's slice is absent; the survivors merged cleanly.
        assert [r.name for r in result.reports] == ["client0", "client2"]
        assert np.isfinite(result.metrics[0.99])
        # ... and the degradation guard surfaces it as a warning.
        from repro.guards.api import evaluate_run

        verdict = evaluate_run(spec, result).verdict("degradation")
        assert verdict is not None and verdict.status == "warn"
        assert "lost_clients" in dict(verdict.evidence)

    def test_kill_beyond_bound_is_a_clean_error(self):
        srv = serve_in_thread(
            RefServerConfig(service={"type": "constant", "value": 200.0})
        )
        try:
            spec = fleet_spec(measurement_samples_per_instance=900)
            run = LiveBackend(fleet_options(srv.target)).prepare(spec)

            def killer():
                time.sleep(1.2)
                for slot in (0, 2):
                    run.slots[slot].proc.kill()

            t = threading.Thread(target=killer)
            t.start()
            with pytest.raises(LiveMeasurementError, match="salvage bound"):
                run.drive()
            t.join()
        finally:
            srv.stop()

    def test_respawn_recovers_a_killed_slot(self):
        srv = serve_in_thread(
            RefServerConfig(service={"type": "constant", "value": 200.0})
        )
        try:
            spec = fleet_spec(measurement_samples_per_instance=900, seed=11)
            run = LiveBackend(
                fleet_options(
                    srv.target,
                    respawn_attempts=2,
                    respawn_backoff_base_s=0.05,
                    respawn_backoff_cap_s=0.5,
                )
            ).prepare(spec)

            def killer():
                time.sleep(1.0)
                run.slots[2].proc.kill()

            t = threading.Thread(target=killer)
            t.start()
            result = run.drive()
            t.join()
        finally:
            srv.stop()
        health = result.live_health
        assert health["respawns"] == 1
        assert health["spawned"] == 4
        assert health["lost_clients"] == 0
        assert health["degraded"]  # a respawn is evidence, not silence
        assert [r.name for r in result.reports] == [
            "client0", "client1", "client2",
        ]


# ----------------------------------------------------------------------
# live scenario routing
# ----------------------------------------------------------------------
class TestLiveScenario:
    def test_two_pool_scenario_with_group_metrics(self):
        from repro.measure import backend_defaults, measure_spec
        from repro.scenarios import compile_scenario, scenario_from_json

        scenario = scenario_from_json(
            {
                "name": "two_pools_live",
                "seed": 9,
                "pools": [
                    {"name": "fast", "workload": {"workload": "memcached"}, "count": 1},
                    {"name": "slow", "workload": {"workload": "memcached"}, "count": 1},
                ],
                "fleets": [
                    {
                        "name": "front",
                        "target": "fast",
                        "rate_rps": 600.0,
                        "instances": 2,
                        "connections_per_instance": 2,
                        "warmup_samples": 20,
                        "measurement_samples_per_instance": 150,
                    },
                    {
                        "name": "batch",
                        "target": "slow",
                        "rate_rps": 400.0,
                        "instances": 1,
                        "connections_per_instance": 2,
                        "warmup_samples": 20,
                        "measurement_samples_per_instance": 150,
                    },
                ],
            }
        )
        (spec,) = compile_scenario(scenario)
        assert spec.scenario is not None  # non-degenerate
        fast = serve_in_thread(
            RefServerConfig(service={"type": "constant", "value": 150.0})
        )
        slow = serve_in_thread(
            RefServerConfig(service={"type": "constant", "value": 900.0})
        )
        try:
            with backend_defaults(
                "live",
                pool_targets={"fast": fast.target, "slow": slow.target},
                processes=2,
            ):
                result = measure_spec(spec.replace(backend="live"))
        finally:
            fast.stop()
            slow.stop()
        assert [r.name for r in result.reports] == [
            "front0", "front1", "batch0",
        ]
        groups = result.group_metrics
        assert set(groups) == {("front", "fast"), ("batch", "slow")}
        # The slow pool really is slower, end to end.
        assert groups[("batch", "slow")][0.5] > groups[("front", "fast")][0.5]
        assert not result.live_health["degraded"]


# ----------------------------------------------------------------------
# live chaos: converged (possibly degraded) or clean error — never a hang
# ----------------------------------------------------------------------
class TestLiveChaos:
    def test_seeded_plan_holds_the_invariant(self):
        from repro.faults.harness import run_live_chaos

        report = run_live_chaos(1, deadline_s=60.0)
        assert report.invariant_holds
        assert not report.hang
        assert report.plan_digest  # reproducible provenance

    def test_endpoint_reset_mid_run(self):
        from repro.faults.harness import run_live_chaos
        from repro.faults.plan import FaultAction, FaultPlan

        plan = FaultPlan(
            seed=0,
            actions=(
                FaultAction(
                    kind="endpoint_reset", site="server.connection", nth=5
                ),
            ),
        )
        report = run_live_chaos(0, plan=plan, deadline_s=60.0)
        assert report.invariant_holds
        assert ("server.connection", 5, "endpoint_reset") in report.fired


# ----------------------------------------------------------------------
# target parsing (satellite: tighter errors, IPv6, nearest-form hints)
# ----------------------------------------------------------------------
class TestParseTarget:
    def test_bracketed_ipv6(self):
        assert parse_target("tcp://[::1]:7799") == ("echo", "::1", 7799)
        assert parse_target("[fe80::2]:80") == ("echo", "fe80::2", 80)

    def test_unbracketed_ipv6_gets_a_hint(self):
        with pytest.raises(ValueError, match=r"\[::1\]:7799"):
            parse_target("tcp://::1:7799")

    def test_scheme_typo_gets_nearest_form_hint(self):
        with pytest.raises(ValueError, match="did you mean 'tcp://h:1'"):
            parse_target("tpc://h:1")

    def test_port_range(self):
        with pytest.raises(ValueError, match="out of range"):
            parse_target("tcp://h:70000")

    def test_unclosed_bracket(self):
        with pytest.raises(ValueError, match="unclosed"):
            parse_target("tcp://[::1:7799")


# ----------------------------------------------------------------------
# options validation and normalization
# ----------------------------------------------------------------------
class TestFleetOptions:
    def test_heartbeat_timeout_must_exceed_interval(self):
        with pytest.raises(ValueError, match="heartbeat_timeout_s"):
            LiveOptions(heartbeat_interval_s=1.0, heartbeat_timeout_s=0.5)

    def test_processes_must_be_positive(self):
        with pytest.raises(ValueError, match="processes"):
            LiveOptions(processes=0)

    def test_loss_bound_range(self):
        with pytest.raises(ValueError, match="max_lost_client_fraction"):
            LiveOptions(max_lost_client_fraction=1.5)

    def test_pool_targets_accepts_strings_and_mappings(self):
        from_str = LiveOptions(pool_targets=("a=tcp://h:1", "b=tcp://h:2"))
        from_map = LiveOptions(
            pool_targets={"a": "tcp://h:1", "b": "tcp://h:2"}
        )
        assert from_str.pool_targets == from_map.pool_targets
        assert from_str.pool_target_map() == {
            "a": "tcp://h:1", "b": "tcp://h:2",
        }

    def test_pool_targets_rejects_malformed(self):
        with pytest.raises(ValueError, match="POOL=tcp"):
            LiveOptions(pool_targets=("just-a-url",))
