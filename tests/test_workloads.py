"""Unit and property tests for workload models and generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.base import Request, WorkProfile
from repro.workloads.generators import (
    Constant,
    Discrete,
    Exponential,
    GeneralizedPareto,
    Lognormal,
    OperationMix,
    Uniform,
    distribution_from_spec,
)
from repro.workloads.mcrouter import McrouterWorkload
from repro.workloads.memcached import MemcachedWorkload


RNG = np.random.default_rng(0)


class TestRequest:
    def test_latency_properties(self):
        req = Request(req_id=0, conn_id=0, op="get")
        req.t_user_send = 0.0
        req.t_nic_send = 7.0
        req.t_server_nic_in = 17.0
        req.t_server_nic_out = 40.0
        req.t_nic_recv = 50.0
        req.t_user_recv = 80.0
        assert req.user_latency_us == 80.0
        assert req.nic_latency_us == 43.0
        assert req.server_latency_us == 23.0
        assert req.network_latency_us == 20.0
        assert req.client_latency_us == pytest.approx(37.0)
        # Components partition the end-to-end latency exactly.
        assert req.user_latency_us == pytest.approx(
            req.server_latency_us + req.network_latency_us + req.client_latency_us
        )


class TestWorkProfile:
    def test_negative_field_rejected(self):
        with pytest.raises(ValueError):
            WorkProfile(work_us=-1.0)

    def test_total_on_core(self):
        p = WorkProfile(work_us=5.0, fixed_us=1.0, post_work_us=2.0)
        assert p.total_on_core_us == 8.0


class TestDistributions:
    @pytest.mark.parametrize(
        "dist",
        [
            Constant(5.0),
            Uniform(1.0, 9.0),
            Exponential(4.0),
            Lognormal(mean=100.0, sigma=1.0),
            GeneralizedPareto(scale=10.0, alpha=2.5),
            Discrete([1.0, 10.0], [0.5, 0.5]),
        ],
        ids=lambda d: type(d).__name__,
    )
    def test_empirical_mean_matches_analytic(self, dist):
        samples = np.array([dist.sample(RNG) for _ in range(20_000)])
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.12)
        assert (samples >= 0).all()

    @pytest.mark.parametrize(
        "dist",
        [
            Constant(5.0),
            Uniform(1.0, 9.0),
            Exponential(4.0),
            Lognormal(mean=100.0, sigma=1.0),
            GeneralizedPareto(scale=10.0, alpha=2.5),
            Discrete([1.0, 10.0], [0.3, 0.7]),
        ],
        ids=lambda d: type(d).__name__,
    )
    def test_spec_round_trip(self, dist):
        rebuilt = distribution_from_spec(dist.spec())
        assert type(rebuilt) is type(dist)
        assert rebuilt.mean() == pytest.approx(dist.mean())

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            distribution_from_spec({"type": "gamma"})
        with pytest.raises(ValueError):
            distribution_from_spec({"mean": 5})
        with pytest.raises(ValueError):
            distribution_from_spec({"type": "exponential"})  # missing mean

    def test_validation(self):
        with pytest.raises(ValueError):
            Uniform(5.0, 1.0)
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            GeneralizedPareto(scale=1.0, alpha=1.0)
        with pytest.raises(ValueError):
            Discrete([], [])
        with pytest.raises(ValueError):
            Discrete([1.0], [-1.0])

    @given(st.floats(min_value=0.1, max_value=1e4))
    @settings(max_examples=30, deadline=None)
    def test_lognormal_mean_parameterization(self, mean):
        """Lognormal is parameterized by its *linear* mean."""
        dist = Lognormal(mean=mean, sigma=0.7)
        assert dist.mean() == pytest.approx(mean)


class TestOperationMix:
    def test_probabilities_normalized(self):
        mix = OperationMix({"get": 9.0, "set": 1.0})
        assert mix.probability("get") == pytest.approx(0.9)
        assert mix.probability("set") == pytest.approx(0.1)
        assert mix.probability("delete") == 0.0

    def test_sampling_matches_weights(self):
        mix = OperationMix({"get": 0.8, "set": 0.2})
        ops = [mix.sample(RNG) for _ in range(5000)]
        assert ops.count("get") / len(ops) == pytest.approx(0.8, abs=0.03)

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            OperationMix({})


class TestMemcachedWorkload:
    def test_request_sizes_reflect_op(self):
        wl = MemcachedWorkload(get_fraction=0.5)
        rng = np.random.default_rng(1)
        for i in range(100):
            req = wl.sample_request(rng, i, 0)
            if req.op == "get":
                assert req.response_bytes > req.request_bytes - req.key_size
            else:
                assert req.request_bytes >= req.value_size

    def test_profile_scales_with_value_size(self):
        wl = MemcachedWorkload(service_noise_sigma=0.0)
        rng = np.random.default_rng(1)
        small = Request(0, 0, "get", value_size=64)
        large = Request(1, 0, "get", value_size=64 * 1024)
        assert wl.profile(large, rng).work_us > wl.profile(small, rng).work_us
        assert wl.profile(large, rng).mem_accesses > wl.profile(small, rng).mem_accesses

    def test_set_costs_more_than_get(self):
        wl = MemcachedWorkload(service_noise_sigma=0.0)
        rng = np.random.default_rng(1)
        get = Request(0, 0, "get", value_size=100)
        set_ = Request(1, 0, "set", value_size=100)
        assert wl.profile(set_, rng).work_us > wl.profile(get, rng).work_us

    def test_noise_multiplier_mean_preserving(self):
        noisy = MemcachedWorkload(service_noise_sigma=0.8)
        clean = MemcachedWorkload(service_noise_sigma=0.0)
        rng = np.random.default_rng(2)
        req = Request(0, 0, "get", value_size=100)
        mean_noisy = np.mean([noisy.profile(req, rng).work_us for _ in range(20_000)])
        assert mean_noisy == pytest.approx(clean.profile(req, rng).work_us, rel=0.05)

    def test_mean_service_positive_and_sane(self):
        wl = MemcachedWorkload()
        assert 5.0 < wl.mean_service_us() < 30.0

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            MemcachedWorkload(get_fraction=1.5)

    def test_describe_round_trippable_fields(self):
        desc = MemcachedWorkload().describe()
        assert desc["name"] == "memcached"
        assert "value_size" in desc


class TestMcrouterWorkload:
    def test_profile_has_backend_phase(self):
        wl = McrouterWorkload(service_noise_sigma=0.0)
        rng = np.random.default_rng(3)
        req = wl.sample_request(rng, 0, 0)
        prof = wl.profile(req, rng)
        assert prof.backend_wait_us > 0
        assert prof.post_work_us > 0

    def test_deserialize_cost_scales_with_request_bytes(self):
        wl = McrouterWorkload(service_noise_sigma=0.0)
        rng = np.random.default_rng(3)
        small = Request(0, 0, "get", request_bytes=64)
        large = Request(1, 0, "get", request_bytes=4096)
        assert wl.profile(large, rng).work_us > wl.profile(small, rng).work_us

    def test_mean_service_excludes_backend_wait(self):
        """mean_service_us sizes CPU, so the off-core wait must not
        inflate it."""
        wl = McrouterWorkload()
        assert wl.mean_service_us() < 15.0

    def test_memory_footprint_lighter_than_memcached(self):
        """Mcrouter proxies rather than stores: it touches far less
        connection-buffer memory per request (why the numa factor
        matters less in Fig. 10 than Fig. 8)."""
        mcr = McrouterWorkload(service_noise_sigma=0.0)
        mc = MemcachedWorkload(service_noise_sigma=0.0)
        rng = np.random.default_rng(4)
        req = Request(0, 0, "get", value_size=160, request_bytes=100)
        assert mcr.profile(req, rng).mem_accesses < mc.profile(req, rng).mem_accesses
