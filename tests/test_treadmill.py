"""Unit/integration tests for the Treadmill instance."""

import numpy as np
import pytest

from repro.core.bench import BenchConfig, TestBench
from repro.core.treadmill import TreadmillConfig, TreadmillInstance
from repro.workloads.memcached import MemcachedWorkload


def run_instance(config=None, seed=0, **bench_kwargs):
    bench = TestBench(
        BenchConfig(workload=MemcachedWorkload(), seed=seed), **bench_kwargs
    )
    inst = TreadmillInstance(
        bench,
        "tm0",
        config
        or TreadmillConfig(
            rate_rps=30_000, connections=4, warmup_samples=50, measurement_samples=500
        ),
    )
    inst.start()
    bench.run_to_completion([inst])
    return bench, inst


class TestConfigValidation:
    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            TreadmillConfig(rate_rps=0)

    def test_bad_connections_rejected(self):
        with pytest.raises(ValueError):
            TreadmillConfig(connections=0)


class TestEndToEnd:
    def test_collects_configured_samples(self):
        _, inst = run_instance()
        assert inst.done
        report = inst.report()
        assert report.responses_recorded >= 500

    def test_client_stays_lightly_utilized(self):
        """The design requirement: Treadmill clients must stay far from
        saturation so measurements are unbiased."""
        _, inst = run_instance()
        assert inst.report().client_utilization < 0.2

    def test_report_quantiles_ordered(self):
        _, inst = run_instance()
        report = inst.report()
        p50, p95, p99 = report.quantiles([0.5, 0.95, 0.99])
        assert p50 <= p95 <= p99

    def test_keep_raw_collects_samples(self):
        cfg = TreadmillConfig(
            rate_rps=30_000,
            connections=4,
            warmup_samples=20,
            measurement_samples=300,
            keep_raw=True,
        )
        _, inst = run_instance(cfg)
        report = inst.report()
        assert len(report.raw_samples) >= 300
        assert report.histogram.count == len(report.raw_samples)

    def test_keep_components_partition_latency(self):
        cfg = TreadmillConfig(
            rate_rps=30_000,
            connections=4,
            warmup_samples=20,
            measurement_samples=300,
            keep_raw=True,
            keep_components=True,
        )
        _, inst = run_instance(cfg)
        report = inst.report()
        total = (
            report.components["server"]
            + report.components["network"]
            + report.components["client"]
        )
        n = min(len(total), len(report.raw_samples))
        assert np.allclose(total[:n], np.asarray(report.raw_samples)[:n], rtol=1e-6)

    def test_ground_truth_lower_than_user_latency(self):
        """tcpdump excludes the client kernel path, so NIC-level p50
        should sit ~30 us below the user-level p50."""
        cfg = TreadmillConfig(
            rate_rps=30_000, connections=4, warmup_samples=0, measurement_samples=800
        )
        _, inst = run_instance(cfg)
        report = inst.report()
        gt_p50 = float(np.quantile(report.ground_truth_samples, 0.5))
        user_p50 = report.quantile(0.5)
        offset = user_p50 - gt_p50
        assert 20.0 < offset < 45.0

    def test_open_loop_rate_respected(self):
        bench, inst = run_instance()
        elapsed_s = bench.sim.now / 1e6
        achieved = inst.controller.sent / elapsed_s
        assert achieved == pytest.approx(30_000, rel=0.15)

    def test_reproducible_runs(self):
        _, a = run_instance(seed=5)
        _, b = run_instance(seed=5)
        assert a.report().quantile(0.99) == b.report().quantile(0.99)

    def test_different_seeds_differ(self):
        _, a = run_instance(seed=5)
        _, b = run_instance(seed=6)
        assert a.report().quantile(0.99) != b.report().quantile(0.99)
