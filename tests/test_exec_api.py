"""Tests for the formal Executor API and the canonicalization audit.

* the `Executor` protocol + `Capabilities` introspection,
* the backend registry (`make_executor` by name, per-backend option
  dataclasses, third-party registration, deprecation of the ad-hoc
  `jobs=` spelling),
* the `default_executor` / `execution` plumbing for named backends and
  the CLI's `--executor/--workers` flags,
* `_canonical` regression tests: sort-order and float/key
  canonicalization, plus spec/result pickle round-trips across
  protocol versions.
"""

import dataclasses
import pickle
import warnings

import numpy as np
import pytest

from repro.exec import (
    Capabilities,
    ClusterOptions,
    Executor,
    LocalClusterExecutor,
    ParallelExecutor,
    ProcessOptions,
    RunSpec,
    SerialExecutor,
    SerialOptions,
    available_backends,
    backend_info,
    default_executor,
    execution,
    make_executor,
    register_backend,
    run_spec,
    spec_digest,
)
from repro.exec import api as api_mod
from repro.exec.spec import _canonical_blob
from repro.workloads.memcached import MemcachedWorkload


def quick_spec(**overrides):
    defaults = dict(
        workload=MemcachedWorkload(),
        target_utilization=0.5,
        num_instances=2,
        connections_per_instance=8,
        warmup_samples=100,
        measurement_samples_per_instance=300,
        keep_raw=True,
        seed=1,
        run_index=0,
    )
    defaults.update(overrides)
    return RunSpec(**defaults)


# ----------------------------------------------------------------------
# the protocol & capabilities
# ----------------------------------------------------------------------
class TestExecutorProtocol:
    def test_all_builtin_backends_satisfy_the_protocol(self):
        serial = SerialExecutor()
        pool = ParallelExecutor(max_workers=2)
        cluster = LocalClusterExecutor(workers=1)
        try:
            for executor in (serial, pool, cluster):
                assert isinstance(executor, Executor)
        finally:
            pool.close()
            cluster.close()

    def test_capabilities_are_backend_specific(self):
        assert SerialExecutor().capabilities() == Capabilities(backend="serial")
        pool = ParallelExecutor(max_workers=3)
        try:
            caps = pool.capabilities()
            assert caps.parallel and not caps.distributed
            assert caps.workers == 3
            assert caps.supports_timeout and caps.supports_retry
        finally:
            pool.close()

    def test_capabilities_promise_determinism(self):
        for name in available_backends():
            # determinism is the caching contract; every built-in keeps it
            assert Capabilities(backend=name).deterministic


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert {"serial", "process", "cluster"} <= set(available_backends())

    def test_make_executor_by_name(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        pool = make_executor("process", options=ProcessOptions(workers=2))
        try:
            assert isinstance(pool, ParallelExecutor)
            assert pool.max_workers == 2
        finally:
            pool.close()

    def test_option_kwargs_build_the_options_dataclass(self):
        pool = make_executor("process", workers=2, timeout=5.0, retries=3)
        try:
            assert pool.max_workers == 2
            assert pool.timeout == 5.0
            assert pool.retries == 3
        finally:
            pool.close()

    def test_unknown_backend_lists_available(self):
        with pytest.raises(KeyError, match="serial"):
            make_executor("teleport")

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError, match="unknown option"):
            make_executor("process", warp_factor=9)

    def test_wrong_options_type_rejected(self):
        with pytest.raises(TypeError, match="expects"):
            make_executor("process", options=SerialOptions())

    def test_options_and_kwargs_are_exclusive(self):
        with pytest.raises(TypeError, match="not both"):
            make_executor("process", options=ProcessOptions(), workers=2)

    def test_backend_info_exposes_options_dataclass(self):
        info = backend_info("cluster")
        assert info.options is ClusterOptions
        assert dataclasses.is_dataclass(info.options)
        assert info.summary

    def test_third_party_backend_plugs_in(self):
        @dataclasses.dataclass(frozen=True)
        class EchoOptions:
            shout: bool = False

        class EchoExecutor:
            def __init__(self, options, task, cache):
                self.options = options

            def run(self, specs, progress=None):
                return list(specs)

            def capabilities(self):
                return Capabilities(backend="echo")

            def close(self):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                self.close()

        register_backend("echo", EchoExecutor, EchoOptions, summary="test double")
        try:
            assert "echo" in available_backends()
            ex = make_executor("echo", shout=True)
            assert isinstance(ex, Executor)
            assert ex.options.shout
            assert ex.run([1, 2]) == [1, 2]
        finally:
            api_mod._REGISTRY.pop("echo", None)

    def test_non_dataclass_options_rejected_at_registration(self):
        with pytest.raises(TypeError):
            register_backend("bad", lambda o, t, c: None, options=dict)


class TestDeprecatedSurface:
    def test_warning_carries_schedule_and_migration_hint(self):
        """The message must name the removal version and the new
        spelling — migration guidance, not a bare rejection."""
        with pytest.warns(DeprecationWarning) as caught:
            make_executor(jobs=1)
        message = str(caught[0].message)
        assert "removed in version 2.0" in message
        assert "ProcessOptions(workers=N" in message
        assert "make_executor('serial')" in message

    def test_positional_jobs_still_works_with_warning(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            assert isinstance(make_executor(1), SerialExecutor)
        with pytest.warns(DeprecationWarning):
            pool = make_executor(4)
        try:
            assert isinstance(pool, ParallelExecutor)
            assert pool.max_workers == 4
        finally:
            pool.close()

    def test_jobs_keyword_with_pool_kwargs_still_works(self):
        with pytest.warns(DeprecationWarning):
            pool = make_executor(jobs=2, timeout=9.0, retries=2)
        try:
            assert pool.max_workers == 2
            assert pool.timeout == 9.0
            assert pool.retries == 2
        finally:
            pool.close()

    def test_new_spelling_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            make_executor("serial")


# ----------------------------------------------------------------------
# defaults plumbing for named backends
# ----------------------------------------------------------------------
class TestBackendDefaults:
    def test_default_executor_honours_backend_name(self):
        with execution(backend="process", workers=2):
            with default_executor() as ex:
                assert isinstance(ex, ParallelExecutor)
                assert ex.max_workers == 2

    def test_jobs_fallback_unchanged(self):
        with execution(jobs=1):
            assert isinstance(default_executor(), SerialExecutor)
        with execution(jobs=3):
            with default_executor() as ex:
                assert isinstance(ex, ParallelExecutor)
                assert ex.max_workers == 3

    def test_default_executor_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with execution(jobs=2):
                default_executor().close()

    def test_cli_flags_reach_the_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "fig1", "--executor", "cluster", "--workers", "3"]
        )
        assert args.executor == "cluster"
        assert args.workers == 3

    def test_cli_rejects_unknown_backend_fast(self):
        from repro.cli import main

        with pytest.raises(KeyError):
            main(["run", "tab1", "--executor", "teleport"])

    def test_cli_backends_command(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("serial", "process", "cluster"):
            assert name in out


# ----------------------------------------------------------------------
# canonicalization audit (the digest substrate)
# ----------------------------------------------------------------------
class TestCanonicalization:
    def test_int_and_str_keys_do_not_collide(self):
        assert spec_digest({1: "a"}) != spec_digest({"1": "a"})

    def test_mixed_key_dict_is_insertion_order_invariant(self):
        a = {1: "x", "1": "y", 2.5: "z"}
        b = {2.5: "z", "1": "y", 1: "x"}
        assert spec_digest(a) == spec_digest(b)

    def test_true_and_one_keys_distinct_values_identical(self):
        # bool is a distinct canonical type from int in JSON
        assert spec_digest({"v": True}) != spec_digest({"v": 1})

    def test_float_values_are_repr_exact(self):
        assert spec_digest(0.1) != spec_digest(0.1 + 1e-17)

    def test_non_finite_floats_are_stable(self):
        assert spec_digest(float("nan")) == spec_digest(float("nan"))
        assert spec_digest(float("inf")) != spec_digest(float("-inf"))

    def test_set_iteration_order_cannot_leak(self):
        a = {"alpha", "beta", "gamma", "delta"}
        b = set(sorted(a, reverse=True))
        assert spec_digest(a) == spec_digest(b)
        assert spec_digest(frozenset(a)) == spec_digest(a)

    def test_ndarray_dtype_is_digest_relevant(self):
        x64 = np.array([1.0, 2.0], dtype=np.float64)
        x32 = np.array([1.0, 2.0], dtype=np.float32)
        assert spec_digest(x64) != spec_digest(x32)

    def test_bytes_supported(self):
        assert spec_digest(b"\x00\x01") != spec_digest(b"\x00\x02")
        assert spec_digest(b"\x00\x01") == spec_digest(bytes([0, 1]))

    def test_tuple_and_list_canonicalize_equal(self):
        assert spec_digest((1, 2, 3)) == spec_digest([1, 2, 3])

    def test_canonical_blob_is_deterministic_json(self):
        blob = _canonical_blob({"b": 2, "a": [0.5, {1, 2}]})
        assert blob == _canonical_blob({"a": [0.5, {2, 1}], "b": 2})


# ----------------------------------------------------------------------
# pickle round-trips (what travels to remote workers)
# ----------------------------------------------------------------------
class TestPickleRoundTrip:
    def test_spec_digest_not_carried_in_pickle(self):
        """The memoized digest must be recomputed, never trusted, on
        the receiving side (version-skew detection depends on it)."""
        spec = quick_spec()
        spec.digest()  # memoize
        assert "_digest" in spec.__dict__
        clone = pickle.loads(pickle.dumps(spec))
        assert "_digest" not in clone.__dict__
        assert clone.digest() == spec.digest()

    @pytest.mark.parametrize("protocol", range(2, pickle.HIGHEST_PROTOCOL + 1))
    def test_spec_round_trip_every_protocol(self, protocol):
        spec = quick_spec()
        clone = pickle.loads(pickle.dumps(spec, protocol=protocol))
        assert clone == spec
        assert clone.digest() == spec.digest()
        assert _canonical_blob(clone) == _canonical_blob(spec)

    @pytest.mark.parametrize("protocol", range(2, pickle.HIGHEST_PROTOCOL + 1))
    def test_result_round_trip_every_protocol(self, protocol):
        result = run_spec(quick_spec())
        clone = pickle.loads(pickle.dumps(result, protocol=protocol))
        assert clone.metrics == result.metrics
        assert clone.spec_digest == result.spec_digest
        assert clone.server_utilization == result.server_utilization
        assert np.array_equal(clone.ground_truth(), result.ground_truth())
        assert np.array_equal(clone.raw_samples(), result.raw_samples())

    def test_double_pickle_is_stable(self):
        """Pickling a pickle-clone changes nothing (worker->cache path)."""
        spec = quick_spec()
        once = pickle.loads(pickle.dumps(spec))
        twice = pickle.loads(pickle.dumps(once))
        assert twice.digest() == spec.digest()
