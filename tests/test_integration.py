"""Cross-module integration tests: the paper's core claims exercised
through the full stack (simulator + load testers + statistics)."""

import numpy as np
import pytest

from repro.core.bench import BenchConfig, TestBench
from repro.core.treadmill import TreadmillConfig, TreadmillInstance
from repro.sim.machine import HardwareSpec
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.mcrouter import McrouterWorkload


def measure(workload, utilization, seed, samples=2500, instances=2, keep_raw=True):
    bench = TestBench(BenchConfig(workload=workload, seed=seed))
    rate = bench.server.arrival_rate_for_utilization(utilization) * 1e6
    insts = [
        TreadmillInstance(
            bench,
            f"c{i}",
            TreadmillConfig(
                rate_rps=rate / instances,
                connections=8,
                warmup_samples=300,
                measurement_samples=samples // instances,
                keep_raw=keep_raw,
            ),
        )
        for i in range(instances)
    ]
    for inst in insts:
        inst.start()
    bench.run_to_completion(insts)
    return bench, [inst.report() for inst in insts]


class TestLatencyVsUtilization:
    """Finding 1: latency and its variance grow with utilization."""

    @pytest.fixture(scope="class")
    def sweep(self):
        out = {}
        for util in (0.2, 0.5, 0.8):
            _, reports = measure(MemcachedWorkload(), util, seed=31)
            samples = np.concatenate([r.raw_samples for r in reports])
            out[util] = samples
        return out

    def test_median_shows_finding3_inversion_then_grows(self, sweep):
        """Finding 3: under the default ondemand governor, the median
        is *not* monotone in load — at very low load requests keep
        hitting down-clocked cores, so p50(20%) >= p50(50%).  Queueing
        then dominates and p50(80%) is the largest."""
        p50 = {u: np.quantile(sweep[u], 0.5) for u in sweep}
        assert p50[0.2] >= p50[0.5] - 1.0
        assert p50[0.8] > p50[0.5]
        assert p50[0.8] > p50[0.2]

    def test_p99_monotone_in_load(self, sweep):
        p99s = [np.quantile(sweep[u], 0.99) for u in (0.2, 0.5, 0.8)]
        assert p99s[0] < p99s[1] < p99s[2]

    def test_tail_spread_grows_with_load(self, sweep):
        spread = {
            u: np.quantile(sweep[u], 0.99) - np.quantile(sweep[u], 0.5)
            for u in sweep
        }
        assert spread[0.2] < spread[0.5] < spread[0.8]


class TestKernelOffsetInvariant:
    """Figs. 5-6: the tcpdump-to-user-level offset is a constant
    kernel-path cost, independent of server utilization."""

    def offset_at(self, utilization):
        _, reports = measure(MemcachedWorkload(), utilization, seed=32)
        user = np.concatenate([r.raw_samples for r in reports])
        nic = np.concatenate([r.ground_truth_samples for r in reports])
        return float(np.quantile(user, 0.5) - np.quantile(nic, 0.5))

    def test_offset_constant_across_utilizations(self):
        low = self.offset_at(0.15)
        high = self.offset_at(0.75)
        assert low == pytest.approx(30.0, abs=8.0)
        assert abs(high - low) < 6.0


class TestWorkloadContrast:
    """Fig. 7 vs Fig. 9: the two services respond differently to the
    same machine."""

    def test_mcrouter_includes_backend_wait(self):
        _, mc_reports = measure(MemcachedWorkload(), 0.2, seed=33)
        _, mcr_reports = measure(McrouterWorkload(), 0.2, seed=33)
        mc_p50 = np.quantile(np.concatenate([r.raw_samples for r in mc_reports]), 0.5)
        mcr_p50 = np.quantile(
            np.concatenate([r.raw_samples for r in mcr_reports]), 0.5
        )
        # At low load queueing is negligible, so mcrouter's off-core
        # backend wait shows up as extra median latency.
        assert mcr_p50 > mc_p50


class TestScaledHardware:
    """The substrate honors hardware sizing: more cores at the same
    per-core utilization means the same rate per core."""

    def test_rate_scales_with_cores(self):
        import dataclasses

        small = HardwareSpec()
        big = dataclasses.replace(
            small, cpu=dataclasses.replace(small.cpu, cores_per_socket=8)
        )
        bench_small = TestBench(
            BenchConfig(workload=MemcachedWorkload(), hardware=small, seed=1)
        )
        bench_big = TestBench(
            BenchConfig(workload=MemcachedWorkload(), hardware=big, seed=1)
        )
        rate_small = bench_small.server.arrival_rate_for_utilization(0.5)
        rate_big = bench_big.server.arrival_rate_for_utilization(0.5)
        assert rate_big == pytest.approx(2 * rate_small)


class TestHistogramVsRawAgreement:
    """The adaptive histogram's metrics agree with exact raw-sample
    metrics through the whole pipeline."""

    def test_p99_agreement(self):
        _, reports = measure(MemcachedWorkload(), 0.6, seed=34)
        for report in reports:
            exact = float(np.quantile(report.raw_samples, 0.99))
            binned = report.quantile(0.99)
            assert binned == pytest.approx(exact, rel=0.06)
