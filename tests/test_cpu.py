"""Unit tests for the CPU model: cores, governors, turbo, thermal."""

import pytest

from repro.sim.cpu import (
    GOVERNOR_ONDEMAND,
    GOVERNOR_PERFORMANCE,
    Core,
    CpuComplex,
    CpuConfig,
    Job,
    Socket,
)
from repro.sim.engine import Simulator


def make_cpu(**kwargs):
    sim = Simulator()
    cfg = CpuConfig(**kwargs)
    return sim, CpuComplex(sim, cfg)


class TestCpuConfig:
    def test_defaults_valid(self):
        cfg = CpuConfig()
        assert cfg.total_cores == cfg.sockets * cfg.cores_per_socket

    def test_unknown_governor_rejected(self):
        with pytest.raises(ValueError):
            CpuConfig(governor="powersave")

    def test_min_above_base_rejected(self):
        with pytest.raises(ValueError):
            CpuConfig(base_freq_ghz=2.0, min_freq_ghz=3.0)

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            CpuConfig(cores_per_socket=0)


class TestJob:
    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Job(work_us=-1.0)
        with pytest.raises(ValueError):
            Job(work_us=1.0, fixed_us=-0.5)


class TestCoreQueueing:
    def test_single_job_runs_for_service_time(self):
        sim, cpu = make_cpu(governor=GOVERNOR_PERFORMANCE)
        core = cpu.cores[0]
        done = []
        core.submit(Job(work_us=10.0, on_done=lambda d: done.append(sim.now)))
        sim.run()
        assert done == [pytest.approx(10.0)]

    def test_fifo_service_order(self):
        sim, cpu = make_cpu(governor=GOVERNOR_PERFORMANCE)
        core = cpu.cores[0]
        done = []
        for i in range(3):
            core.submit(Job(work_us=5.0, on_done=lambda d, i=i: done.append((i, sim.now))))
        sim.run()
        assert done == [
            (0, pytest.approx(5.0)),
            (1, pytest.approx(10.0)),
            (2, pytest.approx(15.0)),
        ]

    def test_queue_depth_counts_running_job(self):
        sim, cpu = make_cpu(governor=GOVERNOR_PERFORMANCE)
        core = cpu.cores[0]
        core.submit(Job(work_us=5.0))
        core.submit(Job(work_us=5.0))
        assert core.queue_depth == 2

    def test_fixed_us_not_frequency_scaled(self):
        sim, cpu = make_cpu(governor=GOVERNOR_ONDEMAND, ondemand_ramp_stall_us=0.0)
        core = cpu.cores[0]
        sim.run_until(10_000.0)  # long idle: fully down-clocked
        done = []
        core.submit(Job(work_us=0.0, fixed_us=8.0, on_done=lambda d: done.append(d)))
        sim.run()
        assert done == [pytest.approx(8.0)]

    def test_busy_accounting(self):
        sim, cpu = make_cpu(governor=GOVERNOR_PERFORMANCE)
        core = cpu.cores[0]
        core.submit(Job(work_us=4.0))
        core.submit(Job(work_us=6.0))
        sim.run()
        assert core.busy_us == pytest.approx(10.0)
        assert core.jobs_done == 2
        assert core.socket.busy_us_acc == pytest.approx(10.0)

    def test_mem_cost_added_to_service(self):
        sim, cpu = make_cpu(governor=GOVERNOR_PERFORMANCE)
        core = cpu.cores[0]
        done = []
        core.submit(
            Job(work_us=5.0, mem_cost=lambda c: 2.5, on_done=lambda d: done.append(d))
        )
        sim.run()
        assert done == [pytest.approx(7.5)]


class TestOndemandGovernor:
    def test_no_downclock_when_performance(self):
        sim, cpu = make_cpu(governor=GOVERNOR_PERFORMANCE)
        core = cpu.cores[0]
        sim.run_until(100_000.0)
        assert core.downclock_fraction(sim.now) == 0.0

    def test_downclock_grows_with_idle_gap(self):
        sim, cpu = make_cpu(governor=GOVERNOR_ONDEMAND, ondemand_idle_tau_us=100.0)
        core = cpu.cores[0]
        sim.run_until(50.0)
        early = core.downclock_fraction(sim.now)
        sim.run_until(1_000.0)
        late = core.downclock_fraction(sim.now)
        assert 0.0 < early < late <= 1.0

    def test_busy_core_not_downclocked(self):
        sim, cpu = make_cpu(governor=GOVERNOR_ONDEMAND)
        core = cpu.cores[0]
        core.submit(Job(work_us=100.0))
        sim.run(max_events=0)
        assert core.busy
        assert core.downclock_fraction(sim.now) == 0.0

    def test_idle_job_slower_than_warm_job(self):
        """The Finding-3 mechanism: a request after a long idle gap
        runs slower (low frequency + ramp stall) than one arriving
        back-to-back."""
        sim, cpu = make_cpu(governor=GOVERNOR_ONDEMAND)
        core = cpu.cores[0]
        durations = []
        sim.run_until(5_000.0)  # deep idle
        core.submit(Job(work_us=10.0, on_done=durations.append))
        core.submit(Job(work_us=10.0, on_done=durations.append))  # warm
        sim.run()
        cold, warm = durations
        assert cold > warm
        assert warm == pytest.approx(10.0, rel=0.01)

    def test_performance_governor_constant_service(self):
        sim, cpu = make_cpu(governor=GOVERNOR_PERFORMANCE)
        core = cpu.cores[0]
        durations = []
        sim.run_until(5_000.0)
        core.submit(Job(work_us=10.0, on_done=durations.append))
        core.submit(Job(work_us=10.0, on_done=durations.append))
        sim.run()
        assert durations[0] == pytest.approx(durations[1])


class TestTurbo:
    def test_turbo_off_frequency_at_base(self):
        sim, cpu = make_cpu(governor=GOVERNOR_PERFORMANCE, turbo_enabled=False)
        core = cpu.cores[0]
        assert core.effective_freq_ghz(0.0) == pytest.approx(cpu.config.base_freq_ghz)

    def test_turbo_on_cold_socket_boosts(self):
        sim, cpu = make_cpu(governor=GOVERNOR_PERFORMANCE, turbo_enabled=True)
        core = cpu.cores[0]
        f = core.effective_freq_ghz(0.0)
        assert f == pytest.approx(
            cpu.config.base_freq_ghz + cpu.config.turbo_bonus_ghz
        )

    def test_headroom_erodes_under_load(self):
        """Finding 8's mechanism: sustained utilization burns the
        thermal headroom turbo needs."""
        sim, cpu = make_cpu(
            governor=GOVERNOR_PERFORMANCE, turbo_enabled=True, thermal_tau_us=100.0
        )
        socket = cpu.sockets[0]
        cold = socket.thermal_headroom(0.0)
        # Saturate every core on the socket for a long stretch.
        t = 0.0
        while t < 2_000.0:
            for core in socket.cores:
                core.submit(Job(work_us=50.0))
            t += 50.0
        sim.run()
        hot = socket.thermal_headroom(sim.now)
        assert hot < cold

    def test_performance_governor_burns_more_headroom(self):
        """The positive turbo:dvfs interaction of Table IV."""
        results = {}
        for governor in (GOVERNOR_ONDEMAND, GOVERNOR_PERFORMANCE):
            sim, cpu = make_cpu(
                governor=governor, turbo_enabled=True, thermal_tau_us=100.0
            )
            socket = cpu.sockets[0]
            t = 0.0
            while t < 2_000.0:
                for core in socket.cores:
                    core.submit(Job(work_us=30.0))
                t += 60.0  # ~50% duty cycle
            sim.run()
            results[governor] = socket.thermal_headroom(sim.now)
        assert results[GOVERNOR_PERFORMANCE] < results[GOVERNOR_ONDEMAND]


class TestSocketUtilization:
    def test_idle_socket_reports_zero(self):
        sim, cpu = make_cpu()
        sim.run_until(1_000.0)
        assert cpu.sockets[0].utilization(sim.now) == pytest.approx(0.0, abs=1e-9)

    def test_fully_busy_socket_tends_to_one(self):
        sim, cpu = make_cpu(governor=GOVERNOR_PERFORMANCE, thermal_tau_us=50.0)
        socket = cpu.sockets[0]
        for _ in range(100):
            for core in socket.cores:
                core.submit(Job(work_us=20.0))
        sim.run()
        assert socket.utilization(sim.now) > 0.9

    def test_machine_utilization_averages_sockets(self):
        sim, cpu = make_cpu(governor=GOVERNOR_PERFORMANCE, thermal_tau_us=50.0)
        # Load only socket 0.
        for _ in range(100):
            for core in cpu.sockets[0].cores:
                core.submit(Job(work_us=20.0))
        sim.run()
        overall = cpu.utilization()
        s0 = cpu.sockets[0].utilization(sim.now)
        s1 = cpu.sockets[1].utilization(sim.now)
        assert overall == pytest.approx((s0 + s1) / 2)
        assert s1 < 0.05 < s0


class TestComplexLayout:
    def test_core_indices_and_socket_membership(self):
        sim, cpu = make_cpu()
        assert len(cpu.cores) == cpu.config.total_cores
        for i, core in enumerate(cpu.cores):
            assert core.index == i
        per_socket = cpu.config.cores_per_socket
        for s, socket in enumerate(cpu.sockets):
            for core in socket.cores:
                assert core.socket is socket
        assert cpu.cores_on_socket(0) == cpu.sockets[0].cores


class TestPStateLadder:
    def test_none_keeps_smooth_model(self):
        sim, cpu = make_cpu(governor=GOVERNOR_ONDEMAND)
        core = cpu.cores[0]
        sim.run_until(77.0)
        down = core.downclock_fraction(sim.now)
        expected = cpu.config.base_freq_ghz - (
            cpu.config.base_freq_ghz - cpu.config.min_freq_ghz
        ) * down
        assert core.effective_freq_ghz(sim.now) == pytest.approx(expected)

    def test_ladder_quantizes_to_rungs(self):
        sim, cpu = make_cpu(governor=GOVERNOR_ONDEMAND, pstate_steps=3)
        core = cpu.cores[0]
        cfg = cpu.config
        rungs = {
            cfg.base_freq_ghz,
            (cfg.base_freq_ghz + cfg.min_freq_ghz) / 2,
            cfg.min_freq_ghz,
        }
        observed = set()
        for t in (1.0, 50.0, 120.0, 400.0, 2000.0):
            sim.run_until(t)
            freq = core.effective_freq_ghz(sim.now)
            observed.add(round(freq, 6))
        assert observed <= {round(r, 6) for r in rungs}
        assert len(observed) >= 2  # the decay crosses at least one rung

    def test_deep_idle_lands_on_min_rung(self):
        sim, cpu = make_cpu(governor=GOVERNOR_ONDEMAND, pstate_steps=5)
        sim.run_until(1_000_000.0)
        core = cpu.cores[0]
        assert core.effective_freq_ghz(sim.now) == pytest.approx(
            cpu.config.min_freq_ghz
        )

    def test_invalid_steps_rejected(self):
        with pytest.raises(ValueError):
            CpuConfig(pstate_steps=1)

    def test_performance_governor_unaffected(self):
        sim, cpu = make_cpu(governor=GOVERNOR_PERFORMANCE, pstate_steps=4)
        sim.run_until(10_000.0)
        core = cpu.cores[0]
        assert core.effective_freq_ghz(sim.now) == pytest.approx(
            cpu.config.base_freq_ghz
        )
