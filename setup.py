"""Setup shim: enables `python setup.py develop` in offline
environments where pip's PEP 660 editable path is unavailable (no
`wheel` package).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
