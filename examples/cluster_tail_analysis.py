"""From one precise server measurement to cluster-level decisions.

The paper's introduction motivates single-server tail measurement with
the fan-out argument: a user request touches many leaves and waits for
the slowest.  This example closes that loop using the library's
analysis modules on a search-leaf workload (integrated via the
<200-line workload API):

1. measure one leaf precisely (full procedure, with a human-readable
   report including distribution-free confidence intervals);
2. break the tail down by pipeline stage (where does the p99 go?);
3. project the measurement to cluster level: how does the p99 degrade
   with fan-out, and which leaf quantile governs a 64-way cluster SLO?

Run::

    python examples/cluster_tail_analysis.py
"""

import numpy as np

from repro import MeasurementProcedure, ProcedureConfig
from repro.core import (
    breakdown_at_quantile,
    fanout_degradation,
    render_procedure_report,
    required_leaf_quantile,
)
from repro.core.bench import BenchConfig, TestBench
from repro.core.treadmill import TreadmillConfig, TreadmillInstance
from repro.workloads import SearchLeafWorkload


def main() -> None:
    workload = SearchLeafWorkload()

    # --- 1. precise single-leaf measurement -------------------------
    proc = MeasurementProcedure(
        ProcedureConfig(
            workload=workload,
            target_utilization=0.6,
            num_instances=3,
            measurement_samples_per_instance=2500,
            min_runs=3,
            max_runs=6,
            keep_raw=True,
            seed=19,
        )
    )
    result = proc.run()
    print(render_procedure_report(result))
    print()

    # --- 2. where does the tail go? ---------------------------------
    bench = TestBench(BenchConfig(workload=workload, seed=20))
    rate = bench.server.arrival_rate_for_utilization(0.6) * 1e6
    inst = TreadmillInstance(
        bench,
        "probe",
        TreadmillConfig(
            rate_rps=rate,
            connections=16,
            warmup_samples=300,
            measurement_samples=6000,
            keep_components=True,
        ),
    )
    inst.start()
    bench.run_to_completion([inst])
    components = inst.report().components
    for q in (0.5, 0.99):
        bd = breakdown_at_quantile(components, q)
        shares = ", ".join(
            f"{name} {bd.share(name):.0%}" for name in sorted(bd.components_us)
        )
        print(f"p{int(q * 100)} = {bd.total_us:.1f} us, attributed: {shares}")
    print()

    # --- 3. project to the cluster ----------------------------------
    leaf_samples = result.runs[-1].raw_samples()
    print("fan-out degradation of the p99 (max over independent leaves):")
    for fanout, (latency, ratio) in fanout_degradation(
        leaf_samples, [1, 4, 16, 64], q=0.99
    ).items():
        print(f"  fanout {fanout:>3}: p99 = {latency:7.1f} us  ({ratio:.2f}x single leaf)")
    governing = required_leaf_quantile(64, 0.99)
    print(
        f"\na 64-way cluster's p99 is governed by the leaf "
        f"p{100 * governing:.2f} — which is why the paper insists on "
        "accurate high-quantile measurement."
    )


if __name__ == "__main__":
    main()
