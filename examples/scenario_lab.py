"""Scenario lab: declarative topologies, run and attributed per group.

Three stops on the scenario layer's tour:

1. load a curated library scenario (a memcached server sharing socket 0
   with a bursty compute antagonist) and compile its on/off factor
   matrix into plain RunSpecs;
2. run the compiled specs through the ordinary execution layer and
   read the per-(fleet, pool) group metrics — the antagonist's damage
   is visible exactly where it lives;
3. fit the paper's quantile-regression attribution per group, so the
   interference is not just visible but *measured*, with bootstrap
   confidence intervals.

Scaled down (short runs, few bootstrap resamples) so it finishes in
about a minute.  Run::

    PYTHONPATH=src python examples/scenario_lab.py
"""

from repro.exec import run_spec
from repro.scenarios import (
    ScenarioAttributionStudy,
    compile_scenario,
    load_scenario,
    scenario_from_json,
    scenario_to_jsonable,
)


def shrink(scenario, samples=400):
    """A quick-running copy of a scenario (same topology, fewer samples)."""
    doc = scenario_to_jsonable(scenario)
    for fleet in doc["fleets"]:
        fleet["measurement_samples_per_instance"] = samples
        fleet["warmup_samples"] = min(fleet.get("warmup_samples", 300), 100)
    return scenario_from_json(doc)


def main() -> None:
    scenario = shrink(load_scenario("colocated_antagonist"))
    print(f"scenario: {scenario.name}")
    print(f"  {scenario.description}")

    specs = compile_scenario(scenario)
    print(
        f"  {len(scenario.fleets)} fleet(s) x {len(scenario.pools)} pool(s), "
        f"{len(scenario.factors)} factor(s) -> {len(specs)} run spec(s)\n"
    )

    print("running the factor matrix:")
    for spec in specs:
        result = run_spec(spec)
        print(f"  {spec.tag}")
        for (fleet, pool), metrics in sorted(result.group_metrics.items()):
            line = ", ".join(
                f"p{q * 100:g}={v:.1f}us" for q, v in sorted(metrics.items())
            )
            print(f"    ({fleet}, {pool}): {line}")

    print("\nattributing the p99 per (fleet, pool) group:")
    study = ScenarioAttributionStudy(
        scenario, taus=(0.99,), samples_per_experiment=800, n_boot=40
    )
    for group, report in study.analyze().items():
        fit = report.fits[0.99]
        print(f"  group {group}:")
        for name, coef in fit.as_dict().items():
            print(f"    {name:>12}: {coef:+8.2f} us")


if __name__ == "__main__":
    main()
