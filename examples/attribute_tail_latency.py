"""Attribute the source of tail latency, then act on the result.

This is the paper's Sections IV-V in one script:

1. run a randomized, replicated 2^4 full-factorial sweep over the four
   hardware factors (NUMA policy, Turbo Boost, DVFS governor, NIC
   affinity) on a simulated memcached server at 70% utilization;
2. fit quantile regression with all interactions and print the
   Table IV-style coefficients at p99;
3. ask the model for the best configuration and verify the improvement
   with fresh measurements (the Fig. 12 exercise).

Run::

    python examples/attribute_tail_latency.py
"""

import numpy as np

from repro import AttributionConfig, AttributionStudy, apply_factors
from repro.core.procedure import MeasurementProcedure, ProcedureConfig
from repro.sim import HardwareSpec
from repro.workloads import MemcachedWorkload


def measure_p99(hardware, label: str, runs: int = 4, seed: int = 7) -> float:
    proc = MeasurementProcedure(
        ProcedureConfig(
            workload=MemcachedWorkload(),
            hardware=hardware,
            target_utilization=0.7,
            num_instances=2,
            measurement_samples_per_instance=1500,
            seed=seed,
        )
    )
    values = [proc.run_once(i).metrics[0.99] for i in range(runs)]
    print(
        f"  {label}: p99 = {np.mean(values):.1f} us "
        f"(sd {np.std(values):.1f} over {runs} runs)"
    )
    return float(np.mean(values))


def main() -> None:
    print("running the 2^4 factorial sweep (this takes a minute)...")
    study = AttributionStudy(
        AttributionConfig(
            workload=MemcachedWorkload(),
            target_utilization=0.7,
            replications=4,
            num_instances=2,
            measurement_samples_per_instance=1500,
            n_boot=60,
            seed=7,
        )
    )
    report = study.analyze()

    print("\nquantile-regression attribution at p99 (us):")
    for row in report.table_rows(0.99):
        flag = " *" if row["p_value"] < 0.05 else ""
        print(
            f"  {row['term']:<22} est={row['estimate_us']:+7.1f} "
            f"se={row['stderr_us']:5.1f} p={row['p_value']:.3f}{flag}"
        )
    print(f"  pseudo-R2: {report.pseudo_r2[0.99]:.3f}")

    best = report.best_config(0.99)
    labels = {f.name: f.label(c) for f, c in zip(report.factors, best)}
    print(f"\nrecommended configuration for p99: {labels}")

    print("\nvalidating the recommendation with fresh runs:")
    baseline = measure_p99(apply_factors(HardwareSpec(), (1, 0, 0, 1)), "a poor config ")
    tuned = measure_p99(apply_factors(HardwareSpec(), best), "recommended   ")
    print(f"\np99 reduction: {100 * (baseline - tuned) / baseline:.0f}%")


if __name__ == "__main__":
    main()
