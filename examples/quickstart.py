"""Quickstart: measure a server's tail latency the Treadmill way.

Stands up a simulated memcached server at 70% utilization, loads it
with four lightly-utilized Treadmill instances, repeats the whole
experiment across server restarts until the p99 estimate converges,
and prints the statistically sound result.

Run::

    python examples/quickstart.py
"""

from repro import MeasurementProcedure, ProcedureConfig
from repro.workloads import MemcachedWorkload


def main() -> None:
    procedure = MeasurementProcedure(
        ProcedureConfig(
            workload=MemcachedWorkload(),
            target_utilization=0.7,
            num_instances=4,
            measurement_samples_per_instance=3000,
            min_runs=3,
            max_runs=8,
            seed=42,
        )
    )
    result = procedure.run()

    print(f"runs executed: {len(result.runs)} (converged: {result.converged})")
    print(f"measured server utilization: {result.runs[0].server_utilization:.0%}")
    print()
    print("latency estimates (mean over runs of per-run, per-instance metrics):")
    for q, value in sorted(result.estimates.items()):
        spread = result.dispersion[q]
        print(f"  p{int(q * 100):>2}: {value:7.1f} us  (run-to-run sd {spread:.1f} us)")
    print()
    print("per-run p99 values (the hysteresis the procedure averages over):")
    print("  " + ", ".join(f"{v:.1f}" for v in result.per_run(0.99)))


if __name__ == "__main__":
    main()
