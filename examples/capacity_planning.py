"""Capacity planning: what the attribution's advice is worth in servers.

The paper motivates precise tail measurement with provisioning:
machines are bought thousands at a time against a latency SLO.  This
example turns the Fig. 12 result into that currency:

1. find the maximum utilization a *default* (all-factors-low) server
   sustains under a p99 SLO;
2. find the same for the configuration the attribution recommends;
3. report the capacity gain — the fraction of a fleet you no longer
   need to buy.

Run::

    python examples/capacity_planning.py
"""

from repro import apply_factors
from repro.core.capacity import find_max_load
from repro.sim import HardwareSpec
from repro.workloads import MemcachedWorkload

SLO_US = 150.0
#: The configuration the default-scale attribution study recommends
#: (see EXPERIMENTS.md): numa=same-node, turbo=on, dvfs=performance,
#: nic=same-node.
RECOMMENDED = (0, 1, 1, 0)


def plan(label: str, hardware: HardwareSpec) -> float:
    result = find_max_load(
        MemcachedWorkload(),
        slo_us=SLO_US,
        quantile=0.99,
        hardware=hardware,
        tolerance=0.02,
        runs_per_probe=2,
        samples_per_instance=2000,
        seed=9,
    )
    print(f"{label}:")
    for probe in result.probes:
        verdict = "ok" if probe.meets_slo else "violates SLO"
        print(
            f"  probe util={probe.utilization:.2f}: "
            f"p99={probe.metric_us:7.1f} us ({verdict})"
        )
    print(
        f"  -> max utilization {result.max_utilization:.2f} "
        f"(p99 {result.achieved_us:.1f} us, "
        f"{result.headroom_pct():.0f}% SLO headroom)\n"
    )
    return result.max_utilization


def main() -> None:
    print(f"SLO: p99 <= {SLO_US:.0f} us\n")
    base = plan("default configuration (all factors low)", HardwareSpec())
    tuned = plan(
        "recommended configuration (numa low, turbo on, dvfs high, nic low)",
        apply_factors(HardwareSpec(), RECOMMENDED),
    )
    if base > 0:
        gain = 100.0 * (tuned - base) / base
        print(
            f"capacity gain from tuning: {gain:+.0f}% load per server at the "
            "same SLO"
        )
        if gain > 0:
            fleet = 100.0 * (1.0 - base / tuned)
            print(
                f"equivalently: a fleet sized for the default config could "
                f"shrink by ~{fleet:.0f}% after tuning."
            )


if __name__ == "__main__":
    main()
