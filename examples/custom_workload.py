"""Generality: describe a custom workload in JSON and stress-test it.

The paper emphasizes that Treadmill accepts a JSON description of
workload characteristics (request mix, size distributions) and that
those characteristics change the measured performance.  This example:

1. builds a write-heavy, large-value memcached variant purely from a
   JSON configuration;
2. measures it against the default read-heavy configuration at the
   same nominal utilization; and
3. shows how a bursty arrival process (instead of Poisson) inflates
   the tail — workload characteristics include *timing*.

Run::

    python examples/custom_workload.py
"""

import json

from repro import MeasurementProcedure, ProcedureConfig, workload_from_json
from repro.core.arrival import BurstyArrivals
from repro.core.bench import BenchConfig, TestBench
from repro.core.treadmill import TreadmillConfig, TreadmillInstance

WRITE_HEAVY = {
    "workload": "memcached",
    "get_fraction": 0.5,
    "key_size": {"type": "uniform", "low": 16, "high": 64},
    "value_size": {"type": "lognormal", "mean": 640, "sigma": 1.2},
    "set_work_factor": 1.4,
}


def measure(workload, label: str) -> None:
    proc = MeasurementProcedure(
        ProcedureConfig(
            workload=workload,
            target_utilization=0.6,
            num_instances=2,
            measurement_samples_per_instance=2000,
            min_runs=2,
            max_runs=3,
            seed=3,
        )
    )
    result = proc.run()
    print(
        f"  {label:<22} p50={result.estimates[0.5]:6.1f} "
        f"p95={result.estimates[0.95]:6.1f} p99={result.estimates[0.99]:6.1f} us"
    )


def measure_arrival(arrival_factory, label: str) -> None:
    default = workload_from_json({"workload": "memcached"})
    bench = TestBench(BenchConfig(workload=default, seed=4))
    rate = bench.server.arrival_rate_for_utilization(0.6) * 1e6
    instances = []
    for i in range(2):
        per_instance = rate / 2
        instances.append(
            TreadmillInstance(
                bench,
                f"c{i}",
                TreadmillConfig(
                    rate_rps=per_instance,
                    connections=8,
                    warmup_samples=300,
                    measurement_samples=2000,
                    arrival=arrival_factory(per_instance),
                ),
            )
        )
    for inst in instances:
        inst.start()
    bench.run_to_completion(instances)
    p99 = sum(inst.report().quantile(0.99) for inst in instances) / 2
    print(f"  {label:<22} p99={p99:6.1f} us")


def main() -> None:
    print("JSON workload configuration:")
    print(json.dumps(WRITE_HEAVY, indent=2))
    print()

    print("workload characteristics move the measurement (same 60% load):")
    measure(workload_from_json({"workload": "memcached"}), "default (GET-heavy)")
    measure(workload_from_json(WRITE_HEAVY), "write-heavy, big values")
    print()

    print("...and so does the arrival process:")
    from repro.core.arrival import PoissonArrivals

    measure_arrival(lambda r: PoissonArrivals(r), "poisson arrivals")
    measure_arrival(
        lambda r: BurstyArrivals(r, burst_factor=6.0, burst_fraction=0.1),
        "bursty arrivals",
    )


if __name__ == "__main__":
    main()
