"""Reproduce the paper's load-tester comparison (Figs. 5-6) end to end.

Runs CloudSuite, Mutilate, and Treadmill against identical simulated
memcached servers at 10% and 80% utilization, comparing each tool's
reported latency distribution against the tcpdump ground truth captured
at its own client NICs.

Expected output shape (the paper's conclusions):

* at 10%: CloudSuite wildly overestimates the tail (its single client
  is the bottleneck); Treadmill tracks ground truth with a constant
  ~30 us kernel-path offset;
* at 80%: CloudSuite cannot generate the load; Mutilate's closed loop
  underestimates the true (open-loop) p99; Treadmill's offset is the
  same as at 10%.

Run::

    python examples/compare_load_testers.py
"""

from repro.experiments.toolcomp import run_tool

QUANTILES = (0.5, 0.9, 0.99)


def describe(tool: str, utilization: float) -> None:
    run = run_tool(tool, utilization, scale="quick")
    if run is None:
        print(f"  {tool:>10}: cannot sustain the offered load (client saturated)")
        return
    reported = " ".join(
        f"p{int(q * 100)}={run.reported_quantile(q):7.1f}" for q in QUANTILES
    )
    truth = run.ground_truth_quantile(0.99)
    util = max(run.client_utilizations.values())
    print(
        f"  {tool:>10}: {reported} | tcpdump p99={truth:7.1f} "
        f"| offset@p99={run.offset_at(0.99):+6.1f} | max client util={util:.0%}"
    )


def main() -> None:
    for utilization in (0.1, 0.8):
        print(f"server utilization {utilization:.0%} (latencies in us):")
        for tool in ("cloudsuite", "mutilate", "treadmill"):
            describe(tool, utilization)
        print()


if __name__ == "__main__":
    main()
