"""Host identity for benchmark provenance.

The perf-trajectory files (``BENCH_exec.json`` / ``BENCH_sim.json``)
are compared across commits, but the numbers are only comparable when
they come from comparable machines — a parallel speedup measured on a
1-CPU CI runner measures scheduling overhead, not parallelism.
:func:`host_info` records enough of the host's shape to make that
machine-detectable: the CPU count, the platform triple, and a stable
fingerprint digest so tooling can group trajectory points by host
without parsing free-form strings.

The fingerprint deliberately excludes anything volatile (hostname,
boot id, load) or privacy-sensitive: it is a hash of the hardware
shape and software platform only, so two identical CI runners produce
the same fingerprint.
"""

from __future__ import annotations

import hashlib
import os
import platform
from typing import Dict, Optional

__all__ = ["host_info", "host_fingerprint", "parallel_meaningful"]


def _shape() -> Dict[str, object]:
    return {
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python_implementation": platform.python_implementation(),
        "python_version": platform.python_version(),
        "processor": platform.processor(),
    }


def host_fingerprint() -> str:
    """Stable digest of the host's hardware/software shape."""
    shape = _shape()
    blob = "|".join(f"{k}={shape[k]}" for k in sorted(shape))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def parallel_meaningful(cpu_count: Optional[int] = None) -> bool:
    """Whether parallel speedup numbers from this host mean anything.

    On a single-CPU host a process pool or local cluster can only
    interleave, so wall-clock "speedups" there measure overhead.
    """
    n = cpu_count if cpu_count is not None else os.cpu_count()
    return (n or 1) > 1


def host_info() -> Dict[str, object]:
    """The provenance block benchmark payloads embed under ``"host"``."""
    info = _shape()
    info["fingerprint"] = host_fingerprint()
    info["parallel_meaningful"] = parallel_meaningful(info["cpu_count"])
    return info
