"""Figure 11: pseudo-R² of the quantile-regression models across load
levels and percentiles.

The paper reports pseudo-R² (Equation 2) of at least 0.90 everywhere,
i.e. the four factors and their interactions explain the large
majority of run-to-run latency variance.  Our scaled-down simulator
collects far fewer samples per run than the paper's testbed, so the
run-quantile responses carry more estimation noise and the reachable
pseudo-R² is lower; the reproduction target is that the models explain
the *majority* of the variance (R² well above 0.5) and that goodness
of fit stays broadly stable across loads and quantiles.  See
EXPERIMENTS.md for measured values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .common import HIGH_LOAD, LOW_LOAD, attribution_report, format_table

__all__ = ["GoodnessResult", "run", "render"]

MID_LOAD = 0.45
LOADS = {"low": LOW_LOAD, "mid": MID_LOAD, "high": HIGH_LOAD}
PERCENTILES = (0.5, 0.9, 0.95, 0.99)


@dataclass
class GoodnessResult:
    workload: str
    #: (load label, tau) -> pseudo-R².
    r2: Dict[Tuple[str, float], float]

    def minimum(self) -> float:
        return min(self.r2.values())

    def at(self, load: str, tau: float) -> float:
        return self.r2[(load, tau)]


def run(scale: str = "default", workload: str = "memcached", seed: int = 11) -> GoodnessResult:
    r2: Dict[Tuple[str, float], float] = {}
    for label, load in LOADS.items():
        report = attribution_report(
            workload, load, scale=scale, seed=seed, taus=PERCENTILES
        )
        for tau in PERCENTILES:
            r2[(label, tau)] = report.pseudo_r2[tau]
    return GoodnessResult(workload=workload, r2=r2)


def render(result: GoodnessResult) -> str:
    rows: List[List[object]] = []
    for load in LOADS:
        rows.append(
            [load]
            + [round(result.at(load, tau), 3) for tau in PERCENTILES]
        )
    table = format_table(
        ["load"] + [f"p{int(t * 100)}" for t in PERCENTILES],
        rows,
        title=f"Figure 11 — pseudo-R² of the quantile-regression models ({result.workload})",
    )
    return table + f"\nminimum pseudo-R²: {result.minimum():.3f} (paper: >= 0.90)"
