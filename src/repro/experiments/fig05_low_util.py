"""Figure 5: tool-reported vs ground-truth latency at 10% utilization.

The paper drives 100 kRPS (10% server CPU) with CloudSuite, Mutilate,
and Treadmill, and compares each tool's reported distribution against
tcpdump at the client NIC:

* **CloudSuite** reports a drastically higher tail (its single client
  is itself queueing: at 100 kRPS a ~9 us/request client runs at ~90%
  utilization);
* **Mutilate** overestimates the tail and misses the distribution's
  shape (per-request client overhead + closed-loop pacing altering the
  offered process);
* **Treadmill** tracks the ground-truth shape with a constant ~30 us
  offset (the client kernel path), even at high quantiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .common import format_table
from .toolcomp import ToolRun, run_tool

__all__ = ["LowUtilResult", "run", "render"]

UTILIZATION = 0.1
TOOLS = ("cloudsuite", "mutilate", "treadmill")


@dataclass
class LowUtilResult:
    runs: Dict[str, Optional[ToolRun]]

    def treadmill_offset_constant(self) -> float:
        """Treadmill's reported-vs-tcpdump offset at the median (us)."""
        return self.runs["treadmill"].offset_at(0.5)


def run(scale: str = "default", workload: str = "memcached", seed: int = 10) -> LowUtilResult:
    return LowUtilResult(
        runs={
            tool: run_tool(tool, UTILIZATION, scale=scale, workload=workload, seed=seed)
            for tool in TOOLS
        }
    )


def render(result: LowUtilResult) -> str:
    rows = []
    for tool, tr in result.runs.items():
        if tr is None:
            rows.append([tool, "-", "-", "-", "-", "saturated"])
            continue
        max_util = max(tr.client_utilizations.values())
        rows.append(
            [
                tool,
                round(tr.reported_quantile(0.5), 1),
                round(tr.reported_quantile(0.99), 1),
                round(tr.ground_truth_quantile(0.99), 1),
                round(tr.offset_at(0.99), 1),
                f"{max_util:.0%}",
            ]
        )
    table = format_table(
        [
            "tool",
            "reported p50 (us)",
            "reported p99 (us)",
            "tcpdump p99 (us)",
            "p99 offset (us)",
            "max client util",
        ],
        rows,
        title="Figure 5 — measurement accuracy at 10% server utilization",
    )
    return table + (
        f"\nTreadmill kernel-path offset at p50: "
        f"{result.treadmill_offset_constant():.1f} us (expected ~30 us, constant)"
    )
