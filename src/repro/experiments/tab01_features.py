"""Tables I and II: the load-tester feature matrix and the hardware
specification of the (simulated) system under test."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..loadtesters.features import FEATURES, render_feature_table
from ..sim.machine import HardwareSpec
from .common import format_table

__all__ = ["FeatureTablesResult", "run", "render"]


@dataclass
class FeatureTablesResult:
    features: Dict[str, Dict[str, bool]]
    hardware: Dict[str, str]

    @property
    def treadmill_complete(self) -> bool:
        """Treadmill handles every surveyed pitfall (Table I's last column)."""
        return all(cols["Treadmill"] for cols in self.features.values())


def run(scale: str = "default") -> FeatureTablesResult:
    return FeatureTablesResult(
        features={row: dict(cols) for row, cols in FEATURES.items()},
        hardware=HardwareSpec().describe(),
    )


def render(result: FeatureTablesResult) -> str:
    spec_table = format_table(
        ["specification", "value"],
        [[k, v] for k, v in result.hardware.items()],
        title="Table II — system under test (simulated)",
    )
    return (
        "Table I — load tester features\n"
        + render_feature_table()
        + "\n\n"
        + spec_table
    )
