"""Figure 8: average latency impact of each factor for memcached,
assuming the other factors are equally likely low or high.

Shape targets (Findings 6-7): NUMA interleave increases latency most
at high load; DVFS=performance helps most at low load (ondemand's
frequency-transition overhead, Finding 3); the dominant factor changes
with the load level."""

from __future__ import annotations

from .estimates import EstimatesResult, render_impacts, run_estimates

__all__ = ["run", "render"]


def run(scale: str = "default", seed: int = 11) -> EstimatesResult:
    return run_estimates("memcached", scale=scale, seed=seed)


def render(result: EstimatesResult) -> str:
    return render_impacts(result, "Figure 8")
