"""Figure 3: client-side queueing bias — single- vs multi-client setups.

The paper sweeps server utilization from 70% to 95% and decomposes the
measured end-to-end latency into server-side, client-side, and network
components.  In the *single-client* setup the client machine and its
access link run at the same utilization as the server, so the client
and network components grow with load and contaminate the measurement.
In the *multi-client* setup the same offered load is split across
enough machines that the client and network components stay flat.

Reproduction: the single client gets a CloudSuite-class CPU footprint
and an access link deliberately provisioned so that its utilization
tracks the server's (the paper's "the network and the client have the
same utilization as the server"); the multi-client setup uses eight
Treadmill-class clients on default links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.bench import BenchConfig, TestBench
from ..core.treadmill import TreadmillConfig, TreadmillInstance
from ..sim.machine import ClientSpec
from ..sim.network import LinkConfig
from .common import format_table, get_scale, make_workload

__all__ = ["QueueingBiasResult", "run", "render"]

SWEEP = (0.70, 0.75, 0.80, 0.85, 0.90, 0.95)
MULTI_CLIENTS = 8


@dataclass
class QueueingBiasResult:
    utilizations: List[float]
    #: setup -> component -> mean latency per sweep point (us).
    components: Dict[str, Dict[str, List[float]]]

    def component_growth(self, setup: str, component: str) -> float:
        """Last-over-first ratio of a component across the sweep."""
        series = self.components[setup][component]
        return series[-1] / series[0] if series[0] > 0 else float("inf")


def _measure(
    workload: str,
    utilization: float,
    n_clients: int,
    seed: int,
    samples_total: int,
    warmup: int,
    spec_for_rate=None,
    link_for_rate=None,
) -> Dict[str, float]:
    bench = TestBench(BenchConfig(workload=make_workload(workload), seed=seed))
    rate = bench.server.arrival_rate_for_utilization(utilization) * 1e6
    client_spec = spec_for_rate(rate) if spec_for_rate is not None else None
    link_config = link_for_rate(rate) if link_for_rate is not None else None
    instances = []
    for i in range(n_clients):
        instances.append(
            TreadmillInstance(
                bench,
                f"client{i}",
                TreadmillConfig(
                    rate_rps=rate / n_clients,
                    connections=8,
                    warmup_samples=warmup,
                    measurement_samples=max(200, samples_total // n_clients),
                    keep_components=True,
                ),
                client_spec=client_spec,
                link_config=link_config,
            )
        )
    for inst in instances:
        inst.start()
    bench.run_to_completion(instances)
    comp = {"server": [], "network": [], "client": []}
    for inst in instances:
        report = inst.report()
        for key in comp:
            comp[key].append(report.components[key])
    return {key: float(np.mean(np.concatenate(vals))) for key, vals in comp.items()}


def run(scale: str = "default", workload: str = "memcached", seed: int = 8) -> QueueingBiasResult:
    sc = get_scale(scale)
    samples = max(2000, sc.comparison_samples // 3)
    results: Dict[str, Dict[str, List[float]]] = {
        "single-client": {"server": [], "network": [], "client": []},
        "multi-client": {"server": [], "network": [], "client": []},
    }
    for util in SWEEP:
        # Single client: CPU and link provisioned so that the client
        # machine and its access link run at ~the server's utilization
        # at this offered load — the paper's single-client setup, where
        # "the network and the client have the same utilization as the
        # server".
        def spec_for_rate(rate_rps: float, util=util) -> ClientSpec:
            per_req_us = util * 1e6 / rate_rps
            return ClientSpec(tx_cpu_us=per_req_us / 2, rx_cpu_us=per_req_us / 2)

        def link_for_rate(rate_rps: float, util=util) -> LinkConfig:
            mean_packet = 220.0  # request + response average, bytes
            needed = rate_rps / 1e6 * mean_packet / util
            return LinkConfig(bandwidth_bpus=needed, propagation_us=3.0)

        single = _measure(
            workload,
            util,
            1,
            seed,
            samples,
            sc.warmup,
            spec_for_rate=spec_for_rate,
            link_for_rate=link_for_rate,
        )
        multi = _measure(workload, util, MULTI_CLIENTS, seed + 1, samples, sc.warmup)
        for key in single:
            results["single-client"][key].append(single[key])
            results["multi-client"][key].append(multi[key])
    return QueueingBiasResult(utilizations=list(SWEEP), components=results)


def render(result: QueueingBiasResult) -> str:
    blocks = []
    for setup, comps in result.components.items():
        rows = []
        for i, util in enumerate(result.utilizations):
            rows.append(
                [
                    f"{util:.0%}",
                    round(comps["server"][i], 1),
                    round(comps["client"][i], 1),
                    round(comps["network"][i], 1),
                ]
            )
        blocks.append(
            format_table(
                ["utilization", "server (us)", "client (us)", "network (us)"],
                rows,
                title=f"Figure 3 — {setup} setup (mean latency components)",
            )
        )
    growth = (
        f"\nclient-component growth 70%->95%: "
        f"single={result.component_growth('single-client', 'client'):.1f}x, "
        f"multi={result.component_growth('multi-client', 'client'):.2f}x"
    )
    return "\n\n".join(blocks) + growth
