"""Programmatic check of the paper's eight findings (Section V).

``repro run findings`` executes a quick factorial pair (low/high load)
per workload plus the queueing-theory checks and reports, for each of
the paper's numbered findings, what this reproduction measures and
whether the direction holds.  It is the executable version of
EXPERIMENTS.md's findings table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..stats.queueing import mm1_outstanding_variance
from .common import format_table
from .estimates import run_estimates

__all__ = ["FindingCheck", "FindingsResult", "run", "render"]


@dataclass
class FindingCheck:
    number: int
    claim: str
    measured: str
    holds: bool


@dataclass
class FindingsResult:
    checks: List[FindingCheck]

    @property
    def holding(self) -> int:
        return sum(c.holds for c in self.checks)


def run(scale: str = "default", seed: int = 11) -> FindingsResult:
    mc = run_estimates("memcached", scale=scale, seed=seed)
    mcr = run_estimates("mcrouter", scale=scale, seed=seed)
    checks: List[FindingCheck] = []

    def spread(est, load, tau):
        values = est.config_estimates(load, tau).values()
        return max(values) - min(values)

    # Finding 1: variance grows with utilization.
    s_low, s_high = spread(mc, "low", 0.99), spread(mc, "high", 0.99)
    theory = mm1_outstanding_variance(0.7) / mm1_outstanding_variance(0.2)
    checks.append(
        FindingCheck(
            1,
            "latency variance grows with utilization",
            f"config spread p99: {s_low:.0f} us (low) vs {s_high:.0f} us (high); "
            f"M/M/1 predicts x{theory:.0f} variance growth",
            s_high > s_low,
        )
    )

    # Finding 2: variance grows with quantile.
    fit50 = mc.reports["high"].fits[0.5]
    fit99 = mc.reports["high"].fits[0.99]
    se50 = float(np.median(fit50.stderr)) if fit50.stderr is not None else float("nan")
    se99 = float(np.median(fit99.stderr)) if fit99.stderr is not None else float("nan")
    checks.append(
        FindingCheck(
            2,
            "quantile-estimate variance grows toward the tail",
            f"median coefficient std err: {se50:.1f} us (p50) vs {se99:.1f} us (p99)",
            bool(se99 > se50),
        )
    )

    # Finding 3: ondemand penalty concentrated at low load.
    dvfs_low = mc.factor_impacts("low", 0.99)["dvfs"]
    dvfs_high = mc.factor_impacts("high", 0.99)["dvfs"]
    checks.append(
        FindingCheck(
            3,
            "ondemand's transition overhead bites at low load",
            f"dvfs->performance impact at p99: {dvfs_low:+.1f} us (low) vs "
            f"{dvfs_high:+.1f} us (high)",
            dvfs_low < 0 and abs(dvfs_low) > abs(dvfs_high),
        )
    )

    # Finding 4: nic=all-nodes helps at low load iff governor=ondemand.
    ce = mc.config_estimates
    nic_ondemand = ce("low", 0.9)[(0, 0, 0, 1)] - ce("low", 0.9)[(0, 0, 0, 0)]
    nic_perf = ce("low", 0.9)[(0, 0, 1, 1)] - ce("low", 0.9)[(0, 0, 1, 0)]
    checks.append(
        FindingCheck(
            4,
            "all-nodes NIC affinity helps at low load under ondemand",
            f"nic effect at low-load p90: {nic_ondemand:+.1f} us (ondemand) vs "
            f"{nic_perf:+.1f} us (performance)",
            nic_ondemand < nic_perf,
        )
    )

    # Finding 5: interactions can rival main effects.
    fit = mc.reports["high"].fits[0.99]
    interactions = [
        abs(fit.coef(c)) for c in fit.columns if ":" in c
    ]
    mains = [abs(fit.coef(c)) for c in ("numa", "turbo", "dvfs", "nic")]
    checks.append(
        FindingCheck(
            5,
            "interactions can exceed main effects",
            f"largest interaction {max(interactions):.0f} us vs smallest main "
            f"effect {min(mains):.0f} us",
            max(interactions) > min(mains),
        )
    )

    # Finding 6: interleave hurts the tail at high load.
    numa_low = mc.factor_impacts("low", 0.99)["numa"]
    numa_high = mc.factor_impacts("high", 0.99)["numa"]
    checks.append(
        FindingCheck(
            6,
            "NUMA interleave hurts most at high load",
            f"numa impact at p99: {numa_low:+.1f} us (low) vs {numa_high:+.1f} us (high)",
            numa_high > 0 and numa_high > numa_low,
        )
    )

    # Finding 7: the dominant factor depends on the load level.
    low_imp = mc.factor_impacts("low", 0.99)
    high_imp = mc.factor_impacts("high", 0.99)
    dom_low = max(low_imp, key=lambda f: abs(low_imp[f]))
    dom_high = max(high_imp, key=lambda f: abs(high_imp[f]))
    checks.append(
        FindingCheck(
            7,
            "the dominant factor changes with load",
            f"dominant at low load: {dom_low}; at high load: {dom_high}",
            dom_low != dom_high,
        )
    )

    # Finding 8: turbo helps mcrouter; its high-load benefit is damped
    # relative to memcached's (thermal headroom).
    t_mcr = mcr.factor_impacts("high", 0.99)["turbo"]
    t_mc = mc.factor_impacts("high", 0.99)["turbo"]
    t_mcr_low = mcr.factor_impacts("low", 0.99)["turbo"]
    checks.append(
        FindingCheck(
            8,
            "turbo helps mcrouter; thermal headroom damps it at high load",
            f"mcrouter turbo impact: {t_mcr_low:+.1f} us (low), {t_mcr:+.1f} us "
            f"(high) vs memcached {t_mc:+.1f} us (high)",
            t_mcr_low < 0.5 and abs(t_mcr) < abs(t_mc) + 1.0,
        )
    )
    return FindingsResult(checks=checks)


def render(result: FindingsResult) -> str:
    rows = [
        [f"Finding {c.number}", c.claim, c.measured, "yes" if c.holds else "NO"]
        for c in result.checks
    ]
    table = format_table(
        ["finding", "claim", "measured", "holds"],
        rows,
        title="The paper's eight findings, checked against this reproduction",
    )
    return table + f"\n{result.holding}/8 findings hold at this scale"
