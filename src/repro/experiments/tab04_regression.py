"""Table IV: quantile-regression coefficients for memcached at high
utilization — estimate, standard error, and p-value for every factor
and interaction, at the 50th/95th/99th percentiles.

Reproduction targets (shape, per the paper):

* ``numa`` hurts the tail (positive Est. at p95/p99), ``turbo`` helps
  (negative), ``nic`` alone hurts at high load (positive at p99),
  ``dvfs`` is small at high load;
* the ``dvfs:nic`` interaction is strongly negative (turning nic high
  is only beneficial when dvfs is high);
* standard errors grow from p50 to p99 (Finding 2);
* several interactions are statistically significant (p < 0.05) and
  some are larger than main effects (Finding 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.attribution import AttributionReport
from .common import HIGH_LOAD, attribution_report, format_table

__all__ = ["RegressionTableResult", "run", "render"]

TAUS = (0.5, 0.95, 0.99)


@dataclass
class RegressionTableResult:
    report: AttributionReport
    utilization: float

    def rows(self, tau: float) -> List[Dict[str, float]]:
        return self.report.table_rows(tau)

    def coef(self, term: str, tau: float) -> float:
        return self.report.fits[tau].coef(term)

    def significant_terms(self, tau: float, alpha: float = 0.05) -> List[str]:
        fit = self.report.fits[tau]
        if fit.p_values is None:
            return []
        return [
            term
            for term, p in zip(fit.columns, fit.p_values)
            if p < alpha and term != "(Intercept)"
        ]


def run(scale: str = "default", workload: str = "memcached", seed: int = 11) -> RegressionTableResult:
    report = attribution_report(workload, HIGH_LOAD, scale=scale, seed=seed, taus=(0.5, 0.9, 0.95, 0.99))
    return RegressionTableResult(report=report, utilization=HIGH_LOAD)


def render(result: RegressionTableResult) -> str:
    fit50 = result.report.fits[0.5]
    rows = []
    for i, term in enumerate(fit50.columns):
        row = [term]
        for tau in TAUS:
            fit = result.report.fits[tau]
            est = fit.coefficients[i]
            se = fit.stderr[i] if fit.stderr is not None else float("nan")
            p = fit.p_values[i] if fit.p_values is not None else float("nan")
            row.extend([round(est, 1), round(se, 1), f"{p:.2g}"])
        rows.append(row)
    headers = ["factor"]
    for tau in TAUS:
        pct = int(tau * 100)
        headers.extend([f"p{pct} Est", f"p{pct} SE", f"p{pct} p-val"])
    return format_table(
        headers,
        rows,
        title=(
            "Table IV — quantile regression, memcached @ "
            f"{result.utilization:.0%} utilization (us)"
        ),
    )
