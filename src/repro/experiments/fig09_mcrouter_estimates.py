"""Figure 9: estimated mcrouter latency for all 16 configurations.

Shape targets: absolute latencies sit well below memcached's (the
router's backend wait is off-CPU), and the configuration spread is
narrower — mcrouter touches less connection-buffer memory, so the
NUMA factor matters less than for memcached."""

from __future__ import annotations

from .estimates import EstimatesResult, render_estimates, run_estimates

__all__ = ["run", "render"]


def run(scale: str = "default", seed: int = 11) -> EstimatesResult:
    return run_estimates("mcrouter", scale=scale, seed=seed)


def render(result: EstimatesResult) -> str:
    return render_estimates(result, "Figure 9")
