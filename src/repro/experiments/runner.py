"""Experiment registry and runner (used by the CLI and the benches).

Each entry maps a paper artifact id to its module's ``run``/``render``
pair; ``run_experiment`` executes one and returns the rendered report.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional

from ..exec.executors import execution
from . import (
    fig01_outstanding,
    findings,
    fig02_client_bias,
    fig03_queueing_bias,
    fig04_hysteresis,
    fig05_low_util,
    fig06_high_util,
    fig07_memcached_estimates,
    fig08_factor_impact,
    fig09_mcrouter_estimates,
    fig10_mcrouter_impact,
    fig11_goodness,
    fig12_improvement,
    tab01_features,
    tab04_regression,
)

__all__ = ["EXPERIMENTS", "Experiment", "run_experiment", "experiment_ids"]


class Experiment(NamedTuple):
    id: str
    title: str
    run: Callable[..., object]
    render: Callable[[object], str]


EXPERIMENTS: Dict[str, Experiment] = {
    exp.id: exp
    for exp in [
        Experiment(
            "tab1",
            "Table I/II: load-tester features + hardware spec",
            tab01_features.run,
            tab01_features.render,
        ),
        Experiment(
            "fig1",
            "Figure 1: outstanding requests, open vs closed loop",
            fig01_outstanding.run,
            fig01_outstanding.render,
        ),
        Experiment(
            "fig2",
            "Figure 2: cross-client aggregation bias",
            fig02_client_bias.run,
            fig02_client_bias.render,
        ),
        Experiment(
            "fig3",
            "Figure 3: client-side queueing bias vs utilization",
            fig03_queueing_bias.run,
            fig03_queueing_bias.render,
        ),
        Experiment(
            "fig4",
            "Figure 4: performance hysteresis across restarts",
            fig04_hysteresis.run,
            fig04_hysteresis.render,
        ),
        Experiment(
            "fig5",
            "Figure 5: tool accuracy at 10% utilization",
            fig05_low_util.run,
            fig05_low_util.render,
        ),
        Experiment(
            "fig6",
            "Figure 6: tool accuracy at 80% utilization",
            fig06_high_util.run,
            fig06_high_util.render,
        ),
        Experiment(
            "tab4",
            "Table IV: quantile-regression coefficients (memcached)",
            tab04_regression.run,
            tab04_regression.render,
        ),
        Experiment(
            "fig7",
            "Figure 7: memcached per-configuration estimates",
            fig07_memcached_estimates.run,
            fig07_memcached_estimates.render,
        ),
        Experiment(
            "fig8",
            "Figure 8: memcached average factor impacts",
            fig08_factor_impact.run,
            fig08_factor_impact.render,
        ),
        Experiment(
            "fig9",
            "Figure 9: mcrouter per-configuration estimates",
            fig09_mcrouter_estimates.run,
            fig09_mcrouter_estimates.render,
        ),
        Experiment(
            "fig10",
            "Figure 10: mcrouter average factor impacts",
            fig10_mcrouter_impact.run,
            fig10_mcrouter_impact.render,
        ),
        Experiment(
            "fig11",
            "Figure 11: pseudo-R² of the regression models",
            fig11_goodness.run,
            fig11_goodness.render,
        ),
        Experiment(
            "fig12",
            "Figure 12: before/after tuning improvement",
            fig12_improvement.run,
            fig12_improvement.render,
        ),
        Experiment(
            "findings",
            "Section V: programmatic check of the eight findings",
            findings.run,
            findings.render,
        ),
    ]
}


def experiment_ids() -> List[str]:
    return list(EXPERIMENTS)


def run_experiment(
    exp_id: str,
    scale: str = "default",
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
) -> str:
    """Run one experiment and return its rendered text report.

    ``jobs`` / ``cache_dir`` / ``executor`` / ``workers`` scope the
    process-wide execution defaults (:mod:`repro.exec`) for the
    duration of the experiment: every driver it touches submits its
    independent runs through the chosen backend (``executor`` names a
    registered backend — ``"serial"``, ``"process"``, ``"cluster"``)
    and/or the content-addressed result cache.
    """
    exp = EXPERIMENTS.get(exp_id)
    if exp is None:
        raise KeyError(f"unknown experiment {exp_id!r} (have {experiment_ids()})")
    if jobs is None and cache_dir is None and executor is None and workers is None:
        result = exp.run(scale=scale)
    else:
        with execution(
            jobs=jobs, cache_dir=cache_dir, backend=executor, workers=workers
        ):
            result = exp.run(scale=scale)
    return exp.render(result)
