"""Figure 2: cross-client aggregation bias.

Four clients load one server; "Client 1" sits on a *different rack*
and its packets cross the spine.  The paper shows that in a pooled
latency distribution the cross-rack client contributes almost all of
the samples beyond the 90th percentile, so any metric extracted from
the pooled distribution is really a metric of that one client.

Reproduction targets:

* the cross-rack client's share of pooled samples rises toward 1.0 in
  the tail bins;
* the pooled p99 tracks the outlier client's p99, far above the sound
  per-instance-then-aggregate estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.aggregation import (
    aggregate_quantile,
    client_share_by_latency,
    per_instance_quantiles,
    pooled_quantile,
)
from ..core.bench import BenchConfig, TestBench
from ..core.treadmill import TreadmillConfig, TreadmillInstance
from .common import format_table, get_scale, make_workload

__all__ = ["ClientBiasResult", "run", "render"]

UTILIZATION = 0.5
NUM_CLIENTS = 4


@dataclass
class ClientBiasResult:
    samples_by_client: Dict[str, np.ndarray]
    shares: Dict[str, np.ndarray]
    per_client_p99: Dict[str, float]
    pooled_p99: float
    aggregated_p99: float
    outlier: str

    def tail_share(self, client: str, top_bins: int = 5) -> float:
        """Mean share of the top latency bins owned by ``client``."""
        share = self.shares[client]
        # Ignore empty bins (zero share rows sum to zero across clients).
        occupied = [
            share[i]
            for i in range(len(share) - 1, -1, -1)
            if any(self.shares[c][i] > 0 for c in self.samples_by_client)
        ][:top_bins]
        return float(np.mean(occupied)) if occupied else 0.0


def run(scale: str = "default", workload: str = "memcached", seed: int = 6) -> ClientBiasResult:
    sc = get_scale(scale)
    bench = TestBench(BenchConfig(workload=make_workload(workload), seed=seed))
    rate = bench.server.arrival_rate_for_utilization(UTILIZATION) * 1e6
    instances = []
    outlier = "client1"
    for i in range(NUM_CLIENTS):
        name = f"client{i}"
        # Client 1 lives on a different rack: its path crosses the spine.
        rack = "rack1" if name == outlier else bench.config.server_rack
        instances.append(
            TreadmillInstance(
                bench,
                name,
                TreadmillConfig(
                    rate_rps=rate / NUM_CLIENTS,
                    connections=8,
                    warmup_samples=sc.warmup,
                    measurement_samples=sc.comparison_samples // NUM_CLIENTS,
                    keep_raw=True,
                ),
                rack=rack,
            )
        )
    for inst in instances:
        inst.start()
    bench.run_to_completion(instances)

    samples = {
        inst.name: np.asarray(inst.report().raw_samples, dtype=float)
        for inst in instances
    }
    return ClientBiasResult(
        samples_by_client=samples,
        shares=client_share_by_latency(samples, num_bins=40),
        per_client_p99=per_instance_quantiles(samples, 0.99),
        pooled_p99=pooled_quantile(samples, 0.99),
        aggregated_p99=aggregate_quantile(samples, 0.99, combine="median"),
        outlier=outlier,
    )


def render(result: ClientBiasResult) -> str:
    rows = [
        [name, round(p99, 1), f"{result.tail_share(name):.0%}"]
        for name, p99 in sorted(result.per_client_p99.items())
    ]
    table = format_table(
        ["client", "own p99 (us)", "share of top tail bins"],
        rows,
        title="Figure 2 — per-client decomposition (client1 is cross-rack)",
    )
    summary = (
        f"\npooled-distribution p99 (biased): {result.pooled_p99:.1f} us\n"
        f"per-instance-then-median p99 (sound): {result.aggregated_p99:.1f} us"
    )
    return table + summary
