"""One module per paper artifact (tables and figures); see DESIGN.md's
per-experiment index for the mapping.

Use :func:`repro.experiments.runner.run_experiment` (or the ``repro``
CLI) to regenerate any artifact's rows/series.
"""

from .common import HIGH_LOAD, LOW_LOAD, SCALES, Scale, attribution_report, get_scale

__all__ = [
    "HIGH_LOAD",
    "LOW_LOAD",
    "SCALES",
    "Scale",
    "attribution_report",
    "get_scale",
]
