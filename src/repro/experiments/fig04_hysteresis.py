"""Figure 4: performance hysteresis across server restarts.

Within one run the p99 estimate converges as samples accumulate, yet
independent runs (fresh server boots) converge to *different* values —
no amount of extra samples reconciles them, because the difference
lives in per-boot system state (thread placement, buffer allocation).
The paper observed per-run converged values deviating 15-67% from the
runs' average.

Reproduction: several independent runs at a hysteresis-prone
configuration (NUMA interleave — per-boot buffer placement is the
dominant hidden state), each reporting its running-p99 trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.attribution import apply_factors
from ..core.procedure import MeasurementProcedure, ProcedureConfig
from ..sim.machine import HardwareSpec
from ..stats.convergence import RunningQuantileTracker
from .common import format_table, get_scale, make_workload

__all__ = ["HysteresisResult", "run", "render"]

UTILIZATION = 0.7
#: NUMA interleave, everything else at the low level: the config whose
#: per-boot placement state varies most.
CONFIG = (1, 0, 0, 0)


@dataclass
class HysteresisResult:
    #: Per run: (sample counts, running p99 estimates).
    trajectories: List[RunningQuantileTracker]
    converged_values: List[float]

    @property
    def average(self) -> float:
        return float(np.mean(self.converged_values))

    @property
    def max_deviation_pct(self) -> float:
        avg = self.average
        return float(
            100.0 * max(abs(v - avg) for v in self.converged_values) / avg
        )

    def within_run_stable(self, window: int = 4, rel_tol: float = 0.08) -> List[bool]:
        return [t.stable(window=window, rel_tol=rel_tol) for t in self.trajectories]


def run(scale: str = "default", workload: str = "memcached", seed: int = 9) -> HysteresisResult:
    sc = get_scale(scale)
    hardware = apply_factors(HardwareSpec(), CONFIG)
    proc = MeasurementProcedure(
        ProcedureConfig(
            workload=make_workload(workload),
            hardware=hardware,
            target_utilization=UTILIZATION,
            num_instances=sc.instances,
            measurement_samples_per_instance=sc.samples_per_instance,
            warmup_samples=sc.warmup,
            keep_raw=True,
            seed=seed,
        )
    )
    trackers: List[RunningQuantileTracker] = []
    converged: List[float] = []
    # All restarts are independent experiments: submit them to the
    # execution layer as one batch (parallelizable, cacheable).
    for result in proc.run_batch(range(sc.hysteresis_runs)):
        samples = result.raw_samples()
        tracker = RunningQuantileTracker(
            0.99, checkpoint_every=max(1, samples.size // 20)
        )
        tracker.extend(samples.tolist())
        trackers.append(tracker)
        converged.append(result.metrics[0.99])
    return HysteresisResult(trajectories=trackers, converged_values=converged)


def render(result: HysteresisResult) -> str:
    rows = []
    for i, (tracker, final) in enumerate(
        zip(result.trajectories, result.converged_values)
    ):
        deviation = 100.0 * (final - result.average) / result.average
        rows.append(
            [
                f"Run #{i}",
                round(final, 1),
                f"{deviation:+.1f}%",
                "yes" if tracker.stable(window=4, rel_tol=0.08) else "no",
            ]
        )
    table = format_table(
        ["run", "converged p99 (us)", "deviation from avg", "converged within run"],
        rows,
        title="Figure 4 — per-run converged p99 under restarts (NUMA interleave)",
    )
    return (
        table
        + f"\naverage: {result.average:.1f} us; "
        + f"max deviation: {result.max_deviation_pct:.1f}%"
    )
