"""Shared experiment machinery: scale presets, study caching, rendering.

Every experiment module exposes ``run(scale="default") -> result`` and
``render(result) -> str``.  The *scale* controls sample counts and
replication so the same code serves three purposes:

* ``quick`` — seconds; used by the integration tests.
* ``default`` — tens of seconds; used by the benchmark harness.
* ``paper`` — the paper's own scale (30+ replications, 20k samples per
  experiment); minutes to hours, run explicitly via the CLI.

Attribution studies (the factorial sweeps feeding Table IV and
Figs. 7-12) are cached per (workload, utilization, scale, seed) within
the process, because five artifacts share the same sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..core.attribution import AttributionConfig, AttributionReport, AttributionStudy
from ..workloads.base import Workload
from ..workloads.mcrouter import McrouterWorkload
from ..workloads.memcached import MemcachedWorkload

__all__ = [
    "Scale",
    "SCALES",
    "get_scale",
    "make_workload",
    "attribution_report",
    "LOW_LOAD",
    "HIGH_LOAD",
    "format_table",
]

#: Utilization levels used throughout the evaluation ("low load" /
#: "high load" in Figs. 7-10; the paper runs memcached at 70% for
#: Table IV).
LOW_LOAD = 0.2
HIGH_LOAD = 0.7


@dataclass(frozen=True)
class Scale:
    """Size knobs for one experiment run."""

    name: str
    #: Factorial replications per configuration (paper: >= 30).
    replications: int
    #: Treadmill instances per experiment.
    instances: int
    #: Measured samples per instance per run.
    samples_per_instance: int
    #: Warm-up samples per instance.
    warmup: int
    #: Bootstrap resamples for Table IV inference.
    n_boot: int
    #: Runs for the before/after improvement study (paper: 100).
    improvement_runs: int
    #: Independent runs for the hysteresis figure.
    hysteresis_runs: int
    #: Samples for one-off distribution comparisons (Figs. 5/6).
    comparison_samples: int


SCALES: Dict[str, Scale] = {
    "quick": Scale(
        name="quick",
        replications=4,
        instances=2,
        samples_per_instance=1000,
        warmup=200,
        n_boot=25,
        improvement_runs=8,
        hysteresis_runs=3,
        comparison_samples=3000,
    ),
    "default": Scale(
        name="default",
        replications=6,
        instances=4,
        samples_per_instance=2500,
        warmup=500,
        n_boot=120,
        improvement_runs=20,
        hysteresis_runs=4,
        comparison_samples=12_000,
    ),
    "paper": Scale(
        name="paper",
        replications=30,
        instances=8,
        samples_per_instance=2500,
        warmup=500,
        n_boot=300,
        improvement_runs=100,
        hysteresis_runs=4,
        comparison_samples=40_000,
    ),
}


def get_scale(scale: str) -> Scale:
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r} (have {sorted(SCALES)})") from None


def make_workload(name: str) -> Workload:
    if name == "memcached":
        return MemcachedWorkload()
    if name == "mcrouter":
        return McrouterWorkload()
    raise ValueError(f"unknown workload {name!r}")


_STUDY_CACHE: Dict[Tuple[str, float, str, int], AttributionReport] = {}


def attribution_report(
    workload: str,
    utilization: float,
    scale: str = "default",
    seed: int = 11,
    taus: Sequence[float] = (0.5, 0.9, 0.95, 0.99),
) -> AttributionReport:
    """The factorial sweep + fits for one (workload, load) pair, cached.

    Five artifacts (Table IV, Figs. 7-12) derive from the same sweeps;
    caching keeps the benchmark suite's runtime linear in the number of
    distinct sweeps rather than artifacts.
    """
    key = (workload, round(utilization, 4), scale, seed)
    if key not in _STUDY_CACHE:
        sc = get_scale(scale)
        config = AttributionConfig(
            workload=make_workload(workload),
            target_utilization=utilization,
            replications=sc.replications,
            num_instances=sc.instances,
            measurement_samples_per_instance=sc.samples_per_instance,
            warmup_samples=sc.warmup,
            n_boot=sc.n_boot,
            taus=tuple(taus),
            seed=seed,
        )
        _STUDY_CACHE[key] = AttributionStudy(config).analyze()
    return _STUDY_CACHE[key]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Plain-text table rendering shared by all experiment reports."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)
