"""Figure 6: tool-reported vs ground truth at 80% utilization.

At 800 kRPS (80% CPU) the paper finds:

* CloudSuite cannot generate the load at all (single client saturates)
  and is omitted;
* Mutilate's closed loop caps the number of outstanding requests, so
  the ground truth *it creates* has a much lighter tail than the
  open-loop ground truth — it "underestimates the 99th-percentile
  latency by more than 2x";
* Treadmill still tracks its ground truth with the same fixed ~30 us
  kernel offset it had at 10% utilization.

The headline comparison is Mutilate's reported p99 against the
open-loop (Treadmill-run) tcpdump p99 — the server's true behaviour
under production-like load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .common import format_table
from .toolcomp import ToolRun, run_tool

__all__ = ["HighUtilResult", "run", "render"]

UTILIZATION = 0.8
TOOLS = ("cloudsuite", "mutilate", "treadmill")


@dataclass
class HighUtilResult:
    runs: Dict[str, Optional[ToolRun]]

    @property
    def cloudsuite_saturated(self) -> bool:
        return self.runs["cloudsuite"] is None

    def mutilate_underestimation(self) -> float:
        """Open-loop ground-truth p99 over Mutilate's reported p99.

        The paper reports > 2x.
        """
        true_p99 = self.runs["treadmill"].ground_truth_quantile(0.99)
        return true_p99 / self.runs["mutilate"].reported_quantile(0.99)

    def treadmill_offset(self) -> float:
        return self.runs["treadmill"].offset_at(0.5)


def run(scale: str = "default", workload: str = "memcached", seed: int = 10) -> HighUtilResult:
    return HighUtilResult(
        runs={
            tool: run_tool(tool, UTILIZATION, scale=scale, workload=workload, seed=seed)
            for tool in TOOLS
        }
    )


def render(result: HighUtilResult) -> str:
    rows = []
    for tool, tr in result.runs.items():
        if tr is None:
            rows.append([tool, "-", "-", "-", "cannot saturate server"])
            continue
        rows.append(
            [
                tool,
                round(tr.reported_quantile(0.99), 1),
                round(tr.ground_truth_quantile(0.99), 1),
                round(tr.offset_at(0.5), 1),
                "",
            ]
        )
    table = format_table(
        ["tool", "reported p99 (us)", "own tcpdump p99 (us)", "p50 offset (us)", "note"],
        rows,
        title="Figure 6 — measurement accuracy at 80% server utilization",
    )
    return table + (
        f"\nopen-loop ground-truth p99 / Mutilate reported p99: "
        f"{result.mutilate_underestimation():.2f}x (paper: >2x underestimation)"
    )
