"""Figure 7: estimated memcached latency for all 16 configurations at
low and high utilization, at the 50th/90th/95th/99th percentiles.

Shape targets: the spread across configurations widens with both load
and quantile (Findings 1-2); NUMA-interleave configurations dominate
the worst cases at high load (Finding 6)."""

from __future__ import annotations

from .estimates import EstimatesResult, render_estimates, run_estimates

__all__ = ["run", "render"]


def run(scale: str = "default", seed: int = 11) -> EstimatesResult:
    return run_estimates("memcached", scale=scale, seed=seed)


def render(result: EstimatesResult) -> str:
    return render_estimates(result, "Figure 7")
