"""Shared logic for Figs. 7-10: per-configuration latency estimates and
average per-factor impacts, at low and high load."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.attribution import AttributionReport
from ..stats.design import FactorialDesign
from .common import HIGH_LOAD, LOW_LOAD, attribution_report, format_table

__all__ = ["EstimatesResult", "run_estimates", "render_estimates", "render_impacts"]

PERCENTILES = (0.5, 0.9, 0.95, 0.99)
LOADS = {"low": LOW_LOAD, "high": HIGH_LOAD}


@dataclass
class EstimatesResult:
    """Figs. 7/9 (config estimates) and 8/10 (factor impacts) data."""

    workload: str
    reports: Dict[str, AttributionReport]  # "low" / "high"

    def config_estimates(
        self, load: str, tau: float
    ) -> Dict[Tuple[int, ...], float]:
        return self.reports[load].all_config_estimates(tau)

    def factor_impacts(self, load: str, tau: float) -> Dict[str, float]:
        report = self.reports[load]
        return {
            f.name: report.factor_average_impact(f.name, tau)
            for f in report.factors
        }

    def best_config(self, load: str, tau: float = 0.99) -> Tuple[int, ...]:
        return self.reports[load].best_config(tau)

    def config_label(self, coded: Tuple[int, ...]) -> str:
        return FactorialDesign(self.reports["high"].factors).config_label(coded)


def run_estimates(
    workload: str, scale: str = "default", seed: int = 11
) -> EstimatesResult:
    reports = {
        name: attribution_report(
            workload, load, scale=scale, seed=seed, taus=PERCENTILES
        )
        for name, load in LOADS.items()
    }
    return EstimatesResult(workload=workload, reports=reports)


def render_estimates(result: EstimatesResult, figure: str) -> str:
    """Figs. 7/9: one row per configuration, estimated latency at each
    (load, percentile) pair."""
    design = FactorialDesign(result.reports["high"].factors)
    headers = ["configuration"]
    for tau in PERCENTILES:
        for load in ("low", "high"):
            headers.append(f"p{int(tau * 100)} {load}")
    rows: List[List[object]] = []
    estimates = {
        (load, tau): result.config_estimates(load, tau)
        for load in LOADS
        for tau in PERCENTILES
    }
    for coded in design.configs():
        row: List[object] = [design.config_label(coded)]
        for tau in PERCENTILES:
            for load in ("low", "high"):
                row.append(round(estimates[(load, tau)][coded], 1))
        rows.append(row)
    return format_table(
        headers,
        rows,
        title=(
            f"{figure} — estimated latency (us) of {result.workload} per "
            "configuration"
        ),
    )


def render_impacts(result: EstimatesResult, figure: str) -> str:
    """Figs. 8/10: average impact of turning each factor high."""
    rows: List[List[object]] = []
    for factor in result.reports["high"].names:
        row: List[object] = [factor]
        for tau in PERCENTILES:
            for load in ("low", "high"):
                row.append(round(result.factor_impacts(load, tau)[factor], 1))
        rows.append(row)
    headers = ["factor"]
    for tau in PERCENTILES:
        for load in ("low", "high"):
            headers.append(f"p{int(tau * 100)} {load}")
    return format_table(
        headers,
        rows,
        title=(
            f"{figure} — average latency impact (us) of each factor for "
            f"{result.workload} (negative = reduction)"
        ),
    )
