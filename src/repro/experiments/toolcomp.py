"""Shared machinery for the load-tester comparison (Figs. 5-6).

Runs one tool against a fresh server at a given utilization and
returns both the tool's own reported distribution and the tcpdump
ground truth captured at the client NICs during *that tool's* run —
the paper's point in Fig. 6 is precisely that the ground truth itself
depends on the tool's control loop.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.aggregation import aggregate_quantile
from ..core.bench import BenchConfig, TestBench
from ..core.treadmill import TreadmillConfig, TreadmillInstance
from ..loadtesters.cloudsuite import CloudSuiteTester
from ..loadtesters.mutilate import MutilateTester
from .common import get_scale, make_workload

__all__ = ["ToolRun", "run_tool"]

TREADMILL_INSTANCES = 8


@dataclass
class ToolRun:
    """One tool's measurement of one server configuration."""

    tool: str
    utilization: float
    #: The distribution the tool itself would report.
    reported: np.ndarray
    #: NIC-level samples captured during this same run.
    ground_truth: np.ndarray
    client_utilizations: Dict[str, float]
    #: Treadmill's statistically sound p99 (per-instance, then mean);
    #: for baselines this equals the pooled estimate the tool reports.
    sound_p99: float

    def reported_quantile(self, q: float) -> float:
        return float(np.quantile(self.reported, q))

    def ground_truth_quantile(self, q: float) -> float:
        return float(np.quantile(self.ground_truth, q))

    def offset_at(self, q: float) -> float:
        """Gap between the tool's estimate and NIC ground truth."""
        return self.reported_quantile(q) - self.ground_truth_quantile(q)


def run_tool(
    tool: str,
    utilization: float,
    scale: str = "default",
    workload: str = "memcached",
    seed: int = 10,
) -> Optional[ToolRun]:
    """Run ``tool`` ("cloudsuite" | "mutilate" | "treadmill") once.

    Returns ``None`` for CloudSuite above its single client's capacity
    — the regime where the paper reports it "is not efficient enough to
    saturate the server" (Fig. 6 omits it).
    """
    sc = get_scale(scale)
    # Deterministic per-tool run index (never the builtin hash(): string
    # hashing is salted per process and would break reproducibility).
    bench = TestBench(
        BenchConfig(workload=make_workload(workload), seed=seed),
        run_index=zlib.crc32(tool.encode()) % 97,
    )
    rate = bench.server.arrival_rate_for_utilization(utilization) * 1e6

    if tool == "treadmill":
        instances = []
        for i in range(TREADMILL_INSTANCES):
            instances.append(
                TreadmillInstance(
                    bench,
                    f"tm{i}",
                    TreadmillConfig(
                        rate_rps=rate / TREADMILL_INSTANCES,
                        connections=8,
                        warmup_samples=sc.warmup,
                        measurement_samples=sc.comparison_samples // TREADMILL_INSTANCES,
                        keep_raw=True,
                    ),
                )
            )
        for inst in instances:
            inst.start()
        bench.run_to_completion(instances)
        reports = [inst.report() for inst in instances]
        samples_by_client = {
            r.name: np.asarray(r.raw_samples, dtype=float) for r in reports
        }
        return ToolRun(
            tool=tool,
            utilization=utilization,
            reported=np.concatenate(list(samples_by_client.values())),
            ground_truth=np.concatenate(
                [r.ground_truth_samples for r in reports]
            ),
            client_utilizations={
                name: client.utilization() for name, client in bench.clients.items()
            },
            sound_p99=aggregate_quantile(samples_by_client, 0.99, combine="mean"),
        )

    if tool == "cloudsuite":
        tester = CloudSuiteTester(
            bench, rate, measurement_samples=sc.comparison_samples, warmup_samples=sc.warmup
        )
        if tester.saturated:
            return None
    elif tool == "mutilate":
        tester = MutilateTester(
            bench, rate, measurement_samples=sc.comparison_samples, warmup_samples=sc.warmup
        )
    else:
        raise ValueError(f"unknown tool {tool!r}")

    tester.start()
    bench.run_to_completion([tester])
    report = tester.report()
    return ToolRun(
        tool=tool,
        utilization=utilization,
        reported=report.reported_samples,
        ground_truth=report.ground_truth_samples,
        client_utilizations=report.client_utilizations,
        sound_p99=report.quantile(0.99),
    )
