"""Figure 12: improving tail latency with the attribution's advice.

The paper's payoff experiment: run the same measurement 100 times with
*randomly chosen* hardware configurations ("before"), then 100 times
with the configuration the quantile-regression model recommends for
p99 ("after").  Result: expected p99 dropped from 181 us to 103 us
(-43%) and its standard deviation from 78 us to 5 us (-93%); p50
improved more modestly (69 -> 62 us) because the recommendation
optimizes p99.

Reproduction targets: a large relative p99 reduction (tens of
percent), a much larger relative reduction in p99 *variance*, and a
comparatively modest p50 change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.attribution import apply_factors
from ..exec import RunSpec, execute_specs
from ..sim.machine import HardwareSpec
from ..stats.design import FactorialDesign
from .common import HIGH_LOAD, attribution_report, get_scale, make_workload

__all__ = ["ImprovementResult", "run", "render"]

QUANTILES = (0.5, 0.99)


@dataclass
class ImprovementResult:
    best_config: Tuple[int, ...]
    #: quantile -> per-run metrics.
    before: Dict[float, List[float]]
    after: Dict[float, List[float]]

    def mean(self, phase: str, q: float) -> float:
        return float(np.mean(getattr(self, phase)[q]))

    def std(self, phase: str, q: float) -> float:
        return float(np.std(getattr(self, phase)[q], ddof=1))

    def latency_reduction_pct(self, q: float = 0.99) -> float:
        before, after = self.mean("before", q), self.mean("after", q)
        return 100.0 * (before - after) / before

    def variance_reduction_pct(self, q: float = 0.99) -> float:
        before, after = self.std("before", q), self.std("after", q)
        return 100.0 * (before - after) / before


def _spec(workload, hardware, sc, seed, run_index) -> RunSpec:
    return RunSpec(
        workload=workload,
        hardware=hardware,
        target_utilization=HIGH_LOAD,
        num_instances=sc.instances,
        measurement_samples_per_instance=sc.samples_per_instance,
        warmup_samples=sc.warmup,
        quantiles=QUANTILES,
        keep_raw=True,
        seed=seed,
        run_index=run_index,
        tag=f"fig12 seed={seed} run={run_index}",
    )


def run(scale: str = "default", workload: str = "memcached", seed: int = 11) -> ImprovementResult:
    sc = get_scale(scale)
    report = attribution_report(workload, HIGH_LOAD, scale=scale, seed=seed)
    best = report.best_config(0.99)
    design = FactorialDesign(report.factors)
    configs = design.configs()
    rng = np.random.default_rng(seed + 100)
    wl = make_workload(workload)

    # Build both phases' independent experiments up front and submit
    # them to the execution layer as one batch of 2 x improvement_runs.
    best_hw = apply_factors(HardwareSpec(), best)
    specs = [
        _spec(
            wl,
            apply_factors(
                HardwareSpec(), configs[int(rng.integers(0, len(configs)))]
            ),
            sc,
            seed + 200 + i,
            i,
        )
        for i in range(sc.improvement_runs)
    ] + [
        _spec(wl, best_hw, sc, seed + 600 + i, i)
        for i in range(sc.improvement_runs)
    ]
    outcomes = execute_specs(specs)

    before: Dict[float, List[float]] = {q: [] for q in QUANTILES}
    after: Dict[float, List[float]] = {q: [] for q in QUANTILES}
    for outcome in outcomes[: sc.improvement_runs]:
        for q in QUANTILES:
            before[q].append(outcome.metrics[q])
    for outcome in outcomes[sc.improvement_runs :]:
        for q in QUANTILES:
            after[q].append(outcome.metrics[q])
    return ImprovementResult(best_config=best, before=before, after=after)


def render(result: ImprovementResult) -> str:
    lines = [
        "Figure 12 — tail latency before/after applying the recommended configuration",
        f"recommended configuration (numa,turbo,dvfs,nic): {result.best_config}",
    ]
    for q in QUANTILES:
        pct = int(q * 100)
        lines.append(
            f"p{pct}: {result.mean('before', q):.1f} -> {result.mean('after', q):.1f} us "
            f"(latency {-result.latency_reduction_pct(q):+.0f}%), "
            f"sd {result.std('before', q):.1f} -> {result.std('after', q):.1f} us "
            f"(dispersion {-result.variance_reduction_pct(q):+.0f}%)"
        )
    lines.append("paper: p99 181 -> 103 us (-43%), sd 78 -> 5 us (-93%)")
    return "\n".join(lines)
