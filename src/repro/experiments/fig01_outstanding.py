"""Figure 1: outstanding requests — open loop vs closed loop.

The paper's Fig. 1 plots the CDF of the number of outstanding requests
at 80% utilization for an open-loop controller and for closed-loop
controllers with 4, 8, and 12 connections.  The open-loop distribution
has a long upper tail (the server's true queueing behaviour); the
closed-loop distributions are *structurally truncated* at the
connection count, which is why closed-loop testers underestimate tail
latency.

Reproduction: one bench per controller, identical workload and target
rate; the :class:`~repro.core.controllers.OutstandingTracker` records
the time-weighted in-flight distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.bench import BenchConfig, TestBench
from ..core.controllers import ClosedLoopController
from ..core.treadmill import TreadmillConfig, TreadmillInstance
from ..loadtesters.base import BaselineLoadTester
from ..sim.machine import ClientSpec
from .common import format_table, get_scale, make_workload

__all__ = ["OutstandingResult", "run", "render"]

UTILIZATION = 0.8
CLOSED_LOOP_CONNECTIONS = (4, 8, 12)


@dataclass
class OutstandingResult:
    """CDFs of the in-flight count per controller."""

    #: label -> (levels, cdf) arrays.
    cdfs: Dict[str, Tuple[np.ndarray, np.ndarray]]
    utilization: float

    def quantile(self, label: str, q: float) -> int:
        levels, cdf = self.cdfs[label]
        idx = int(np.searchsorted(cdf, q, side="left"))
        return int(levels[min(idx, len(levels) - 1)])


class _ClosedLoopProbe(BaselineLoadTester):
    """Minimal closed-loop tester used only to drive the tracker."""

    tool = "closed-loop-probe"

    def __init__(self, bench, total_rate_rps, measurement_samples, connections):
        super().__init__(bench, total_rate_rps, measurement_samples, warmup_samples=100)
        client = self._add_client("closed0", ClientSpec(tx_cpu_us=0.6, rx_cpu_us=0.6))
        conns = bench.open_connections(connections)
        client.controller = ClosedLoopController(
            bench.sim,
            self._make_send(client),
            conns,
            bench.rng.stream("closed/think"),
            target_rate_rps=total_rate_rps,
        )


def run(scale: str = "default", workload: str = "memcached", seed: int = 5) -> OutstandingResult:
    sc = get_scale(scale)
    samples = sc.comparison_samples
    cdfs: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}

    # Open loop: one Treadmill instance carrying the full rate (the
    # outstanding count of interest is the server-wide one, so a single
    # instance keeps the tracker global).
    bench = TestBench(BenchConfig(workload=make_workload(workload), seed=seed))
    rate = bench.server.arrival_rate_for_utilization(UTILIZATION) * 1e6
    inst = TreadmillInstance(
        bench,
        "open0",
        TreadmillConfig(
            rate_rps=rate,
            connections=32,
            warmup_samples=sc.warmup,
            measurement_samples=samples,
        ),
    )
    inst.start()
    bench.run_to_completion([inst])
    inst.controller.tracker.finalize()
    cdfs["Open-Loop"] = inst.controller.tracker.cdf()

    for n_conn in CLOSED_LOOP_CONNECTIONS:
        bench = TestBench(BenchConfig(workload=make_workload(workload), seed=seed + n_conn))
        rate = bench.server.arrival_rate_for_utilization(UTILIZATION) * 1e6
        probe = _ClosedLoopProbe(bench, rate, samples, n_conn)
        probe.start()
        bench.run_to_completion([probe])
        tracker = probe.clients[0].controller.tracker
        tracker.finalize()
        cdfs[f"Closed-Loop w/{n_conn} Connections"] = tracker.cdf()

    return OutstandingResult(cdfs=cdfs, utilization=UTILIZATION)


def render(result: OutstandingResult) -> str:
    rows: List[List[object]] = []
    for label in result.cdfs:
        levels, _ = result.cdfs[label]
        rows.append(
            [
                label,
                result.quantile(label, 0.5),
                result.quantile(label, 0.9),
                result.quantile(label, 0.99),
                int(levels.max()),
            ]
        )
    return format_table(
        ["controller", "p50 outstanding", "p90", "p99", "max"],
        rows,
        title=f"Figure 1 — outstanding requests at {result.utilization:.0%} utilization",
    )
