"""Figure 10: average per-factor impact for mcrouter.

Shape target (Finding 8): Turbo Boost helps mcrouter significantly at
low load (its deserialization work is frequency-bound and thermal
headroom is plentiful) and much less at high load."""

from __future__ import annotations

from .estimates import EstimatesResult, render_impacts, run_estimates

__all__ = ["run", "render"]


def run(scale: str = "default", seed: int = 11) -> EstimatesResult:
    return run_estimates("mcrouter", scale=scale, seed=seed)


def render(result: EstimatesResult) -> str:
    return render_impacts(result, "Figure 10")
