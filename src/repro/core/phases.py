"""Treadmill's three execution phases.

Section III-A: "Treadmill goes through three phases during one
execution: warm-up, calibration and measurement.  During the warm-up
phase, all measured samples are discarded.  Next, we determine the
lower and upper bounds of the sample histogram bins in the calibration
phase. [...] Finally, Treadmill begins to collect samples until the
end of execution."

:class:`PhaseManager` implements that lifecycle around an
:class:`~repro.stats.histogram.AdaptiveHistogram`:

* ``warm-up`` — the first ``warmup_samples`` responses are dropped
  (they observe a cold server: empty queues, cold caches, idle-state
  frequencies).
* ``calibration`` — the histogram buffers raw samples and derives its
  bin range.
* ``measurement`` — samples accumulate until ``measurement_samples``
  have been collected, after which :attr:`done` turns true.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..stats.histogram import AdaptiveHistogram

__all__ = ["PhaseManager", "guard_window_size"]

PHASE_WARMUP = "warm-up"
PHASE_CALIBRATION = "calibration"
PHASE_MEASUREMENT = "measurement"


#: Buffered samples accumulated before a bulk histogram flush.  The
#: histogram ingest is batch-size-invariant (record_many == sequential
#: adds), so this is purely an amortization knob.
_FLUSH_EVERY = 512

#: Windows the guard tape aims for over one measurement (validity
#: detectors need enough windows for a robust drift statistic but each
#: window needs enough samples for a stable quantile).
_GUARD_WINDOWS_TARGET = 16


def guard_window_size(measurement_samples: int) -> int:
    """Deterministic guard-tape window size for a sample budget.

    A pure function of the budget (never of timing or flush
    boundaries), so the windowed summaries are bit-identical across
    executors and batch sizes.
    """
    return max(8, int(measurement_samples) // _GUARD_WINDOWS_TARGET)


class PhaseManager:
    """Warm-up / calibration / measurement lifecycle for one instance.

    Post-warm-up samples are buffered and flushed into the histogram in
    bulk via :meth:`AdaptiveHistogram.record_many`, which is exactly
    equivalent to per-sample adds — so buffering is invisible to every
    observable: :attr:`collected` and :attr:`done` count buffered
    samples immediately, and :attr:`histogram` / :attr:`phase` flush
    before reading histogram state.
    """

    def __init__(
        self,
        warmup_samples: int = 500,
        measurement_samples: int = 10_000,
        histogram: Optional[AdaptiveHistogram] = None,
        keep_raw: bool = False,
    ):
        if warmup_samples < 0:
            raise ValueError("warmup_samples must be non-negative")
        if measurement_samples < 1:
            raise ValueError("measurement_samples must be >= 1")
        self.warmup_samples = warmup_samples
        self.measurement_samples = measurement_samples
        self._histogram = histogram or AdaptiveHistogram()
        #: Optionally retain raw measurement samples (experiments that
        #: need exact values, e.g. quantile-regression input).
        self.keep_raw = keep_raw
        self.raw_samples: List[float] = []
        self._seen = 0
        self._collected = 0
        self._pending: List[float] = []
        # Guard tape: windowed summaries of the post-warm-up stream
        # plus the tail of the warm-up stream, consumed by the
        # validity detectors in repro.guards (phase-boundary drift,
        # non-stationarity).  Window boundaries depend only on sample
        # *order*, never on flush timing, so the tape is deterministic.
        self.guard_window = guard_window_size(measurement_samples)
        self._windows: List[Tuple[int, float, float, float]] = []
        self._win_buf: List[float] = []
        self._warm_tail: List[float] = []
        #: Fired exactly once, from inside the :meth:`record` call that
        #: collects the final sample.  This is what makes instance
        #: completion a property of the *sample stream* rather than of
        #: any driver's polling cadence: a partitioned run observes the
        #: same completion instant as the serial kernel, so everything
        #: keyed off completion (controller shutdown, antagonist stop
        #: scheduling) is order-independent and merges deterministically
        #: across sub-kernels.
        self.on_done = None

    @property
    def seen(self) -> int:
        """Total samples observed, including discarded warm-up ones."""
        return self._seen

    @property
    def histogram(self) -> AdaptiveHistogram:
        """The underlying histogram, with any buffered samples flushed."""
        if self._pending:
            self.flush()
        return self._histogram

    @property
    def phase(self) -> str:
        if self._seen < self.warmup_samples:
            return PHASE_WARMUP
        if self._pending:
            self.flush()
        if self._histogram.calibrating:
            return PHASE_CALIBRATION
        return PHASE_MEASUREMENT

    @property
    def collected(self) -> int:
        """Samples recorded after warm-up (calibration + measurement)."""
        return self._collected

    @property
    def done(self) -> bool:
        return self._collected >= self.measurement_samples

    def record(self, latency_us: float) -> bool:
        """Feed one response latency through the phase machine.

        Returns True if the sample was counted (i.e. past warm-up), so
        hot callers can branch without re-reading phase state.
        """
        self._seen += 1
        if self._seen <= self.warmup_samples:
            tail = self._warm_tail
            tail.append(latency_us)
            if len(tail) >= 2 * self.guard_window:
                del tail[: len(tail) - self.guard_window]
            return False
        self._collected += 1
        pending = self._pending
        pending.append(latency_us)
        if len(pending) >= _FLUSH_EVERY:
            self.flush()
        if self.keep_raw:
            self.raw_samples.append(latency_us)
        if self._collected == self.measurement_samples and self.on_done is not None:
            self.on_done()
        return True

    def flush(self) -> None:
        """Push buffered samples into the histogram."""
        if self._pending:
            batch, self._pending = self._pending, []
            self._histogram.record_many(batch)
            buf = self._win_buf
            buf.extend(batch)
            window = self.guard_window
            while len(buf) >= window:
                chunk = np.asarray(buf[:window], dtype=float)
                del buf[:window]
                q50, q95 = np.quantile(chunk, (0.5, 0.95))
                self._windows.append(
                    (window, float(chunk.mean()), float(q50), float(q95))
                )

    # ------------------------------------------------------------------
    # guard tape (read by repro.guards detectors)
    # ------------------------------------------------------------------
    def guard_windows(self) -> np.ndarray:
        """Completed guard-tape windows as a ``(k, 4)`` float array.

        Columns are ``(count, mean, q50, q95)`` per window of the
        post-warm-up sample stream, in arrival order.  The trailing
        partial window is excluded so the summary is independent of
        where the run stopped inside a window.
        """
        self.flush()
        if not self._windows:
            return np.empty((0, 4), dtype=float)
        return np.asarray(self._windows, dtype=float)

    @property
    def warmup_tail(self) -> np.ndarray:
        """Up to the last ``guard_window`` warm-up latencies (the
        samples just before the phase boundary)."""
        tail = self._warm_tail[-self.guard_window:]
        return np.asarray(tail, dtype=float)
