"""Per-request trace capture and export.

Sometimes the histogram is not enough: debugging a surprising tail
means looking at *individual requests* — their full timestamp trail
through client CPU, kernel, wire, IRQ, and worker service.  This
module collects complete :class:`~repro.workloads.base.Request`
records from a load-tester instance and exports them as CSV for
external analysis (pandas, R, spreadsheets).

Usage::

    trace = RequestTrace(limit=10_000)
    inst = TreadmillInstance(bench, "tm0", cfg, request_observer=trace.observe)
    ...
    trace.write_csv("requests.csv")
    slow = trace.slowest(20)        # the 20 worst requests, full trail
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, Union

import numpy as np

from ..workloads.base import Request

__all__ = ["RequestTrace", "TRACE_FIELDS"]

#: Columns exported per request, in order.
TRACE_FIELDS = [
    "req_id",
    "conn_id",
    "client_name",
    "op",
    "request_bytes",
    "response_bytes",
    "t_user_send",
    "t_nic_send",
    "t_server_nic_in",
    "t_service_start",
    "t_service_end",
    "t_server_nic_out",
    "t_nic_recv",
    "t_user_recv",
    "user_latency_us",
    "server_latency_us",
    "network_latency_us",
    "client_latency_us",
]


class RequestTrace:
    """Collects completed requests, bounded by ``limit``.

    When the limit is reached, further requests are counted but not
    stored (``dropped``), keeping memory bounded on long runs.
    """

    def __init__(self, limit: int = 100_000):
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = limit
        self.requests: List[Request] = []
        self.dropped = 0

    def observe(self, request: Request) -> None:
        """Record one completed request (pass as ``request_observer``)."""
        if len(self.requests) < self.limit:
            self.requests.append(request)
        else:
            self.dropped += 1

    def __len__(self) -> int:
        return len(self.requests)

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def latencies(self) -> np.ndarray:
        return np.array([r.user_latency_us for r in self.requests])

    def slowest(self, n: int = 10) -> List[Request]:
        """The ``n`` highest-latency requests, worst first."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return sorted(
            self.requests, key=lambda r: r.user_latency_us, reverse=True
        )[:n]

    def interarrival_cv(self) -> float:
        """Coefficient of variation of observed send gaps.

        ~1.0 for a Poisson schedule, ~0 for a metronome — a quick check
        that the load tester offered the arrival process it promised.
        """
        if len(self.requests) < 3:
            raise ValueError("need at least 3 requests")
        sends = np.sort(np.array([r.t_user_send for r in self.requests]))
        gaps = np.diff(sends)
        gaps = gaps[gaps > 0]
        if gaps.size < 2 or gaps.mean() == 0:
            return 0.0
        return float(gaps.std() / gaps.mean())

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def _row(self, request: Request) -> List:
        return [
            request.req_id,
            request.conn_id,
            request.client_name,
            request.op,
            request.request_bytes,
            request.response_bytes,
            request.t_user_send,
            request.t_nic_send,
            request.t_server_nic_in,
            request.t_service_start,
            request.t_service_end,
            request.t_server_nic_out,
            request.t_nic_recv,
            request.t_user_recv,
            request.user_latency_us,
            request.server_latency_us,
            request.network_latency_us,
            request.client_latency_us,
        ]

    def to_csv_string(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(TRACE_FIELDS)
        for request in self.requests:
            writer.writerow(self._row(request))
        return buf.getvalue()

    def write_csv(self, path: Union[str, Path]) -> int:
        """Write all recorded requests; returns the row count."""
        with open(path, "w", newline="") as f:
            f.write(self.to_csv_string())
        return len(self.requests)
