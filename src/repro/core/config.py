"""JSON workload configuration.

Section III-A ("Configurable workload"): "a JSON formatted
configuration file can be used to describe the workload characteristics
(e.g., request size distribution) and fed into Treadmill."  This module
is that entry point: :func:`workload_from_json` builds a fully
configured workload model from a dict or a JSON file, and
:func:`treadmill_config_from_json` does the same for the load-tester
parameters.

Example configuration::

    {
      "workload": "memcached",
      "get_fraction": 0.95,
      "key_size": {"type": "uniform", "low": 16, "high": 64},
      "value_size": {"type": "lognormal", "mean": 320, "sigma": 1.2}
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from ..workloads.base import Workload
from ..workloads.generators import distribution_from_spec
from ..workloads.mcrouter import McrouterWorkload
from ..workloads.memcached import MemcachedWorkload
from ..workloads.searchleaf import SearchLeafWorkload
from .arrival import arrival_from_spec
from .treadmill import TreadmillConfig

__all__ = ["workload_from_json", "treadmill_config_from_json", "load_json"]


def load_json(source: Union[str, Path, Dict]) -> Dict:
    """Accept a dict, a JSON string, or a path to a JSON file."""
    if isinstance(source, dict):
        return source
    if isinstance(source, Path) or (
        isinstance(source, str) and source.lstrip()[:1] not in ("{", "[")
    ):
        path = Path(source)
        if not path.exists():
            raise FileNotFoundError(f"workload config file not found: {path}")
        with open(path) as f:
            return json.load(f)
    return json.loads(source)


_SIZE_FIELDS = ("key_size", "value_size")

_MEMCACHED_SCALARS = (
    "get_fraction",
    "base_work_us",
    "work_per_kb_us",
    "mem_accesses_base",
    "mem_accesses_per_kb",
    "set_work_factor",
    "fixed_us",
    "service_noise_sigma",
)

_MCROUTER_SCALARS = (
    "get_fraction",
    "deserialize_us_per_kb",
    "route_work_us",
    "reply_work_us",
    "mem_accesses_base",
    "fixed_us",
    "service_noise_sigma",
)

_SEARCHLEAF_SCALARS = (
    "scan_us_per_term",
    "mem_accesses_per_term",
    "expensive_query_fraction",
    "expensive_factor",
    "fixed_us",
    "service_noise_sigma",
)


def workload_from_json(source: Union[str, Path, Dict]) -> Workload:
    """Build a workload model from a JSON configuration.

    The ``workload`` key selects the model (``memcached`` or
    ``mcrouter``); remaining keys override that model's constructor
    defaults.  Distribution-valued fields use the
    :func:`~repro.workloads.generators.distribution_from_spec`
    vocabulary.
    """
    cfg = dict(load_json(source))
    kind = cfg.pop("workload", None)
    if kind is None:
        raise ValueError("configuration must name a 'workload'")

    kwargs: Dict = {}
    for fld in _SIZE_FIELDS:
        if fld in cfg:
            kwargs[fld] = distribution_from_spec(cfg.pop(fld))

    if kind == "memcached":
        allowed = _MEMCACHED_SCALARS
        cls = MemcachedWorkload
    elif kind == "mcrouter":
        allowed = _MCROUTER_SCALARS
        cls = McrouterWorkload
        if "backend_wait" in cfg:
            kwargs["backend_wait"] = distribution_from_spec(cfg.pop("backend_wait"))
    elif kind == "searchleaf":
        allowed = _SEARCHLEAF_SCALARS
        cls = SearchLeafWorkload
        if "terms" in cfg:
            kwargs["terms"] = distribution_from_spec(cfg.pop("terms"))
    else:
        raise ValueError(
            f"unknown workload {kind!r} (have: memcached, mcrouter, searchleaf)"
        )

    for key in list(cfg):
        if key in allowed:
            kwargs[key] = cfg.pop(key)
    if cfg:
        raise ValueError(
            f"unknown {kind} configuration keys: {sorted(cfg)} "
            f"(allowed: {sorted(allowed) + list(_SIZE_FIELDS)})"
        )
    return cls(**kwargs)


def treadmill_config_from_json(source: Union[str, Path, Dict]) -> TreadmillConfig:
    """Build a :class:`~repro.core.treadmill.TreadmillConfig` from JSON."""
    cfg = dict(load_json(source))
    if "arrival" in cfg:
        cfg["arrival"] = arrival_from_spec(cfg["arrival"])
    try:
        return TreadmillConfig(**cfg)
    except TypeError as exc:
        raise ValueError(f"bad treadmill configuration: {exc}") from None
