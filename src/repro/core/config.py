"""JSON workload configuration.

Section III-A ("Configurable workload"): "a JSON formatted
configuration file can be used to describe the workload characteristics
(e.g., request size distribution) and fed into Treadmill."  This module
is that entry point: :func:`workload_from_json` builds a fully
configured workload model from a dict or a JSON file, and
:func:`treadmill_config_from_json` does the same for the load-tester
parameters.

Example configuration::

    {
      "workload": "memcached",
      "get_fraction": 0.95,
      "key_size": {"type": "uniform", "low": 16, "high": 64},
      "value_size": {"type": "lognormal", "mean": 320, "sigma": 1.2}
    }
"""

from __future__ import annotations

import dataclasses
import difflib
import json
from pathlib import Path
from typing import Dict, Iterable, Union

from ..workloads.base import Workload
from ..workloads.generators import distribution_from_spec
from ..workloads.mcrouter import McrouterWorkload
from ..workloads.memcached import MemcachedWorkload
from ..workloads.searchleaf import SearchLeafWorkload
from .arrival import arrival_from_spec
from .treadmill import TreadmillConfig

__all__ = [
    "workload_from_json",
    "treadmill_config_from_json",
    "hardware_from_json",
    "load_json",
    "unknown_key_error",
    "require_known_keys",
]


def load_json(source: Union[str, Path, Dict]) -> Dict:
    """Accept a dict, a JSON string, or a path to a JSON file."""
    if isinstance(source, dict):
        return source
    if isinstance(source, Path) or (
        isinstance(source, str) and source.lstrip()[:1] not in ("{", "[")
    ):
        path = Path(source)
        if not path.exists():
            raise FileNotFoundError(f"workload config file not found: {path}")
        with open(path) as f:
            return json.load(f)
    return json.loads(source)


def unknown_key_error(context: str, unknown: Iterable[str], allowed: Iterable[str]) -> ValueError:
    """A precise error for unknown configuration keys.

    Names every bad key, lists the allowed vocabulary, and — when a
    close match exists — suggests the nearest valid key, so a typo like
    ``"get_fracton"`` points straight at ``"get_fraction"`` instead of
    a bare rejection.  Used by both the legacy workload/treadmill
    loaders and the scenario schema loader.
    """
    allowed = sorted(set(allowed))
    parts = []
    for key in sorted(set(unknown)):
        close = difflib.get_close_matches(key, allowed, n=1, cutoff=0.6)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        parts.append(f"{key!r}{hint}")
    plural = "keys" if len(parts) > 1 else "key"
    return ValueError(
        f"unknown {context} {plural}: {', '.join(parts)}; allowed: {allowed}"
    )


def require_known_keys(context: str, cfg: Dict, allowed: Iterable[str]) -> None:
    """Raise :func:`unknown_key_error` if ``cfg`` has keys outside
    ``allowed`` (strict validation: unknown keys are never ignored)."""
    allowed = set(allowed)
    unknown = [k for k in cfg if k not in allowed]
    if unknown:
        raise unknown_key_error(context, unknown, allowed)


_SIZE_FIELDS = ("key_size", "value_size")

_MEMCACHED_SCALARS = (
    "get_fraction",
    "base_work_us",
    "work_per_kb_us",
    "mem_accesses_base",
    "mem_accesses_per_kb",
    "set_work_factor",
    "fixed_us",
    "service_noise_sigma",
)

_MCROUTER_SCALARS = (
    "get_fraction",
    "deserialize_us_per_kb",
    "route_work_us",
    "reply_work_us",
    "mem_accesses_base",
    "fixed_us",
    "service_noise_sigma",
)

_SEARCHLEAF_SCALARS = (
    "scan_us_per_term",
    "mem_accesses_per_term",
    "expensive_query_fraction",
    "expensive_factor",
    "fixed_us",
    "service_noise_sigma",
)


def workload_from_json(source: Union[str, Path, Dict]) -> Workload:
    """Build a workload model from a JSON configuration.

    The ``workload`` key selects the model (``memcached`` or
    ``mcrouter``); remaining keys override that model's constructor
    defaults.  Distribution-valued fields use the
    :func:`~repro.workloads.generators.distribution_from_spec`
    vocabulary.
    """
    cfg = dict(load_json(source))
    kind = cfg.pop("workload", None)
    if kind is None:
        raise ValueError("configuration must name a 'workload'")

    kwargs: Dict = {}
    for fld in _SIZE_FIELDS:
        if fld in cfg:
            kwargs[fld] = distribution_from_spec(cfg.pop(fld))

    if kind == "memcached":
        allowed = _MEMCACHED_SCALARS
        cls = MemcachedWorkload
    elif kind == "mcrouter":
        allowed = _MCROUTER_SCALARS
        cls = McrouterWorkload
        if "backend_wait" in cfg:
            kwargs["backend_wait"] = distribution_from_spec(cfg.pop("backend_wait"))
    elif kind == "searchleaf":
        allowed = _SEARCHLEAF_SCALARS
        cls = SearchLeafWorkload
        if "terms" in cfg:
            kwargs["terms"] = distribution_from_spec(cfg.pop("terms"))
    else:
        raise ValueError(
            f"unknown workload {kind!r} (have: memcached, mcrouter, searchleaf)"
        )

    for key in list(cfg):
        if key in allowed:
            kwargs[key] = cfg.pop(key)
    if cfg:
        extra = {"backend_wait"} if kind == "mcrouter" else (
            {"terms"} if kind == "searchleaf" else set()
        )
        raise unknown_key_error(
            f"{kind} configuration",
            cfg,
            set(allowed) | set(_SIZE_FIELDS) | extra,
        )
    return cls(**kwargs)


def hardware_from_json(source: Union[str, Path, Dict]) -> "HardwareSpec":
    """Build a :class:`~repro.sim.machine.HardwareSpec` from JSON.

    Sections (``cpu``, ``numa``, ``nic``, ``kernel``) override the
    corresponding config dataclass's defaults field by field, plus the
    top-level ``boot_quality_sigma``.  Strict at every level: unknown
    sections and unknown fields within a section both raise
    :func:`unknown_key_error` naming the nearest valid key.
    """
    from ..sim.cpu import CpuConfig
    from ..sim.kernel import KernelConfig
    from ..sim.machine import HardwareSpec
    from ..sim.memory import NumaConfig
    from ..sim.nic import NicConfig

    sections = {
        "cpu": CpuConfig,
        "numa": NumaConfig,
        "nic": NicConfig,
        "kernel": KernelConfig,
    }
    cfg = dict(load_json(source))
    require_known_keys(
        "hardware configuration", cfg, list(sections) + ["boot_quality_sigma"]
    )
    kwargs: Dict = {}
    for section, cls in sections.items():
        if section in cfg:
            sub = dict(cfg[section])
            require_known_keys(
                f"hardware.{section} configuration",
                sub,
                [f.name for f in dataclasses.fields(cls)],
            )
            kwargs[section] = cls(**sub)
    if "boot_quality_sigma" in cfg:
        kwargs["boot_quality_sigma"] = float(cfg["boot_quality_sigma"])
    return HardwareSpec(**kwargs)


def treadmill_config_from_json(source: Union[str, Path, Dict]) -> TreadmillConfig:
    """Build a :class:`~repro.core.treadmill.TreadmillConfig` from JSON.

    Strict: unknown keys raise :func:`unknown_key_error` (naming the
    bad key and its nearest valid neighbour) instead of surfacing as an
    opaque ``TypeError`` from the dataclass constructor.
    """
    cfg = dict(load_json(source))
    require_known_keys(
        "treadmill configuration",
        cfg,
        [f.name for f in dataclasses.fields(TreadmillConfig)],
    )
    if "arrival" in cfg:
        cfg["arrival"] = arrival_from_spec(cfg["arrival"])
    try:
        return TreadmillConfig(**cfg)
    except TypeError as exc:
        raise ValueError(f"bad treadmill configuration: {exc}") from None
