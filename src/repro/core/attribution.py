"""Tail-latency attribution: factorial sweep + quantile regression.

This is the paper's Section IV/V pipeline, end to end:

1. Define the factor space (Table III: ``numa``, ``turbo``, ``dvfs``,
   ``nic``, each at two levels).
2. Run a randomized, replicated 2^4 full-factorial sweep, each
   experiment being an independent server boot measured by lightly
   utilized Treadmill instances; sub-sample each experiment's raw
   latencies (the paper keeps 20k per experiment).
3. Fit quantile regression with all interaction terms at each quantile
   of interest, with bootstrap standard errors and p-values
   (Table IV) and pseudo-R-squared (Fig. 11).
4. Derive the downstream artifacts: estimated latency for every
   configuration (Figs. 7/9), average per-factor impacts (Figs. 8/10),
   and the recommended configuration whose adoption gives the paper's
   "43% lower p99, 93% lower variance" result (Fig. 12).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exec.executors import _ExecutorBase, execute_specs
from ..exec.progress import ProgressHook
from ..exec.spec import RunResult, RunSpec
from ..sim.cpu import GOVERNOR_ONDEMAND, GOVERNOR_PERFORMANCE
from ..sim.machine import HardwareSpec
from ..sim.memory import POLICY_INTERLEAVE, POLICY_SAME_NODE
from ..sim.nic import AFFINITY_ALL_NODES, AFFINITY_SAME_NODE
from ..stats.design import Factor, FactorialDesign, model_matrix
from ..stats.inference import ExperimentSample, fit_with_inference, screen_factor
from ..stats.quantreg import QuantRegResult
from ..workloads.base import Workload

__all__ = [
    "TREADMILL_FACTORS",
    "apply_factors",
    "subsample_latencies",
    "fit_report",
    "fit_grouped_experiments",
    "AttributionConfig",
    "AttributionReport",
    "AttributionStudy",
]


def subsample_latencies(
    raw: np.ndarray, limit: int, seed: int, run_index: int
) -> np.ndarray:
    """Cap one experiment's raw latencies at ``limit`` samples.

    The paper keeps 20k raw latencies per experiment.  Index through a
    permutation of positions rather than ``rng.choice(raw,
    replace=False)``: choice materializes a shuffled copy of the full
    value array, while a position permutation costs O(n) small
    integers and one fancy-index.  The RNG is keyed on (seed,
    run_index) so the same experiment always keeps the same subsample.
    """
    if raw.size > limit:
        rng = np.random.default_rng((seed, run_index, 0x5EED))
        idx = rng.permutation(raw.size)[:limit]
        raw = raw[idx]
    return raw

#: The paper's Table III.
TREADMILL_FACTORS: List[Factor] = [
    Factor("numa", low=POLICY_SAME_NODE, high=POLICY_INTERLEAVE),
    Factor("turbo", low="off", high="on"),
    Factor("dvfs", low=GOVERNOR_ONDEMAND, high=GOVERNOR_PERFORMANCE),
    Factor("nic", low=AFFINITY_SAME_NODE, high=AFFINITY_ALL_NODES),
]


def apply_factors(base: HardwareSpec, coded: Sequence[int]) -> HardwareSpec:
    """Return a copy of ``base`` with the coded factor levels applied.

    Coded order follows :data:`TREADMILL_FACTORS`:
    ``(numa, turbo, dvfs, nic)`` with 0 = low level, 1 = high level.
    """
    if len(coded) != 4:
        raise ValueError(f"expected 4 coded levels, got {len(coded)}")
    numa_c, turbo_c, dvfs_c, nic_c = (int(c) for c in coded)
    for c in (numa_c, turbo_c, dvfs_c, nic_c):
        if c not in (0, 1):
            raise ValueError("coded levels must be 0 or 1")
    cpu = dataclasses.replace(
        base.cpu,
        turbo_enabled=bool(turbo_c),
        governor=GOVERNOR_PERFORMANCE if dvfs_c else GOVERNOR_ONDEMAND,
    )
    numa = dataclasses.replace(
        base.numa,
        policy=POLICY_INTERLEAVE if numa_c else POLICY_SAME_NODE,
    )
    nic = dataclasses.replace(
        base.nic,
        affinity=AFFINITY_ALL_NODES if nic_c else AFFINITY_SAME_NODE,
    )
    return dataclasses.replace(base, cpu=cpu, numa=numa, nic=nic)


@dataclass
class AttributionConfig:
    """Configuration of one attribution study (one workload, one load)."""

    workload: Workload
    base_hardware: HardwareSpec = field(default_factory=HardwareSpec)
    target_utilization: float = 0.7
    #: Independent experiments per factor configuration (the paper
    #: uses >= 30; scale down for quick studies).
    replications: int = 8
    #: Raw latency samples retained per experiment (paper: 20k).  The
    #: run's quantile responses are computed from this subsample, so it
    #: must stay large enough for a precise p99 (the paper validated
    #: 20k against larger sets).
    samples_per_experiment: int = 20_000
    taus: Sequence[float] = (0.5, 0.95, 0.99)
    #: Treadmill instances and per-instance samples for each experiment.
    num_instances: int = 4
    measurement_samples_per_instance: int = 3000
    warmup_samples: int = 500
    n_boot: int = 120
    perturb_sd: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.target_utilization < 1.0:
            raise ValueError("target_utilization must be in (0, 1)")
        if self.replications < 1:
            raise ValueError("replications must be >= 1")


@dataclass
class AttributionReport:
    """Everything the paper derives from one study."""

    factors: List[Factor]
    taus: Tuple[float, ...]
    experiments: List[ExperimentSample]
    fits: Dict[float, QuantRegResult]
    pseudo_r2: Dict[float, float]

    @property
    def names(self) -> List[str]:
        return [f.name for f in self.factors]

    def estimated_latency(self, coded: Sequence[int], tau: float) -> float:
        """Model-estimated tau-quantile latency for one configuration
        (summing the qualified coefficients plus the intercept, as the
        paper's Table IV walk-through demonstrates)."""
        X, _ = model_matrix([list(coded)], self.names)
        return float(self.fits[tau].predict(X)[0])

    def all_config_estimates(self, tau: float) -> Dict[Tuple[int, ...], float]:
        """Figs. 7/9: estimated latency for every configuration."""
        design = FactorialDesign(self.factors)
        return {
            cfg: self.estimated_latency(cfg, tau) for cfg in design.configs()
        }

    def factor_average_impact(self, factor: str, tau: float) -> float:
        """Figs. 8/10: average latency change from turning ``factor``
        high, with every other factor equally likely low or high."""
        if factor not in self.names:
            raise KeyError(f"unknown factor {factor!r}")
        idx = self.names.index(factor)
        estimates = self.all_config_estimates(tau)
        hi = [v for cfg, v in estimates.items() if cfg[idx] == 1]
        lo = [v for cfg, v in estimates.items() if cfg[idx] == 0]
        return float(np.mean(hi) - np.mean(lo))

    def best_config(self, tau: float) -> Tuple[int, ...]:
        """Configuration minimizing the estimated tau-quantile latency
        (the recommendation behind Fig. 12)."""
        estimates = self.all_config_estimates(tau)
        return min(estimates, key=estimates.get)

    def table_rows(self, tau: float) -> List[Dict[str, float]]:
        """Table IV rows for one quantile: term, Est., Std.Err, p."""
        fit = self.fits[tau]
        rows = []
        for i, term in enumerate(fit.columns):
            rows.append(
                {
                    "term": term,
                    "estimate_us": float(fit.coefficients[i]),
                    "stderr_us": (
                        float(fit.stderr[i]) if fit.stderr is not None else float("nan")
                    ),
                    "p_value": (
                        float(fit.p_values[i])
                        if fit.p_values is not None
                        else float("nan")
                    ),
                }
            )
        return rows


class AttributionStudy:
    """Runs the factorial sweep and fits the attribution model.

    The randomized replicated schedule is built up front and submitted
    to the execution layer *as one batch* — at paper scale that is 480
    independent server boots with no ordering constraints, which a
    parallel executor spreads across every core (and the result cache
    deduplicates across the five artifacts sharing one sweep).
    """

    def __init__(
        self,
        config: AttributionConfig,
        factors: Optional[List[Factor]] = None,
        executor: Optional[_ExecutorBase] = None,
    ):
        self.config = config
        self.factors = factors or list(TREADMILL_FACTORS)
        self.design = FactorialDesign(self.factors)
        self.executor = executor

    def spec_for(self, coded: Sequence[int], run_index: int) -> RunSpec:
        """The :class:`RunSpec` of one experiment at one configuration."""
        cfg = self.config
        return RunSpec(
            workload=cfg.workload,
            hardware=apply_factors(cfg.base_hardware, tuple(coded)),
            target_utilization=cfg.target_utilization,
            num_instances=cfg.num_instances,
            warmup_samples=cfg.warmup_samples,
            measurement_samples_per_instance=cfg.measurement_samples_per_instance,
            keep_raw=True,
            seed=cfg.seed,
            run_index=run_index,
            tag=f"cfg={tuple(coded)} run={run_index}",
        )

    def _subsample(self, run: RunResult, run_index: int) -> np.ndarray:
        cfg = self.config
        return subsample_latencies(
            run.raw_samples(), cfg.samples_per_experiment, cfg.seed, run_index
        )

    def _experiment(self, coded: Tuple[int, ...], run_index: int) -> ExperimentSample:
        """One independent experiment at one configuration."""
        run = execute_specs([self.spec_for(coded, run_index)], self.executor)[0]
        return ExperimentSample(
            coded=tuple(coded), samples=self._subsample(run, run_index)
        )

    def run_experiments(
        self, progress: Optional[ProgressHook] = None
    ) -> List[ExperimentSample]:
        """The randomized replicated sweep (480 experiments at paper
        scale: 2^4 configurations x 30 replications), submitted to the
        execution layer as a single batch."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        schedule = [tuple(coded) for coded in self.design.schedule(cfg.replications, rng)]
        specs = [
            self.spec_for(coded, run_index)
            for run_index, coded in enumerate(schedule)
        ]
        runs = execute_specs(specs, self.executor, progress=progress)
        return [
            ExperimentSample(coded=coded, samples=self._subsample(run, run_index))
            for run_index, (coded, run) in enumerate(zip(schedule, runs))
        ]

    def screen_factors(
        self,
        experiments: List[ExperimentSample],
        tau: float = 0.99,
        n_perm: int = 300,
    ) -> Dict[str, float]:
        """Section IV-B's factor selection: permutation-test p-values
        for each candidate factor's effect on the tau-quantile.

        Factors with large p-values did not move the quantile in the
        sweep and can be dropped from the model."""
        rng = np.random.default_rng(self.config.seed + 2)
        return {
            factor.name: screen_factor(
                experiments, idx, tau, n_perm=n_perm, rng=rng
            )
            for idx, factor in enumerate(self.factors)
        }

    def analyze(
        self, experiments: Optional[List[ExperimentSample]] = None
    ) -> AttributionReport:
        """Fit the full-interaction model at every quantile of interest."""
        cfg = self.config
        if experiments is None:
            experiments = self.run_experiments()
        return fit_report(
            experiments,
            self.factors,
            cfg.taus,
            n_boot=cfg.n_boot,
            perturb_sd=cfg.perturb_sd,
            seed=cfg.seed,
        )


def fit_report(
    experiments: List[ExperimentSample],
    factors: List[Factor],
    taus: Sequence[float],
    n_boot: int = 120,
    perturb_sd: float = 0.01,
    seed: int = 0,
) -> AttributionReport:
    """Fit the full-interaction model over one set of experiments.

    This is :meth:`AttributionStudy.analyze` factored out so scenario
    attribution can fit the same model once per (fleet, pool) group
    without owning a study/sweep: one bootstrap RNG is seeded at
    ``seed + 1`` and shared across quantiles in order, exactly as the
    study does.
    """
    rng = np.random.default_rng(seed + 1)
    names = [f.name for f in factors]
    fits: Dict[float, QuantRegResult] = {}
    r2: Dict[float, float] = {}
    for tau in taus:
        fit, fit_r2 = fit_with_inference(
            experiments,
            names,
            tau,
            n_boot=n_boot,
            perturb_sd=perturb_sd,
            rng=rng,
        )
        fits[tau] = fit
        r2[tau] = fit_r2
    return AttributionReport(
        factors=list(factors),
        taus=tuple(taus),
        experiments=list(experiments),
        fits=fits,
        pseudo_r2=r2,
    )


def fit_grouped_experiments(
    experiments_by_group: "Dict[Tuple[str, str], List[ExperimentSample]]",
    factors: List[Factor],
    taus: Sequence[float],
    n_boot: int = 120,
    perturb_sd: float = 0.01,
    seed: int = 0,
) -> "Dict[Tuple[str, str], AttributionReport]":
    """One attribution fit per (fleet, pool) group.

    Scenario sweeps measure every group under the *same* factorial
    schedule (common random numbers across groups), so each group gets
    its own independent model over its own latency samples — which is
    what lets a factor's effect be localized to the pool it actually
    hurts.  Each group's fit seeds its own bootstrap RNG, so results
    are independent of dict insertion order.
    """
    return {
        group: fit_report(
            experiments_by_group[group],
            factors,
            taus,
            n_boot=n_boot,
            perturb_sd=perturb_sd,
            seed=seed,
        )
        for group in sorted(experiments_by_group)
    }
