"""The paper's contribution: the Treadmill load tester, the robust
multi-instance multi-run measurement procedure, and the tail-latency
attribution pipeline."""

from .arrival import (
    ArrivalProcess,
    BurstyArrivals,
    DeterministicArrivals,
    LognormalArrivals,
    PoissonArrivals,
    arrival_from_spec,
)
from .controllers import ClosedLoopController, OpenLoopController, OutstandingTracker
from .phases import PhaseManager
from .bench import BenchConfig, TestBench
from .treadmill import InstanceReport, TreadmillConfig, TreadmillInstance
from .aggregation import (
    aggregate_quantile,
    client_share_by_latency,
    per_instance_quantiles,
    pooled_quantile,
)
from .config import treadmill_config_from_json, workload_from_json
from .procedure import (
    MeasurementProcedure,
    ProcedureConfig,
    ProcedureResult,
    RunResult,
)
from .breakdown import QuantileBreakdown, breakdown_at_quantile
from .capacity import CapacityProbe, CapacityResult, find_max_load
from .sweeps import SweepPoint, SweepResult, sweep_utilization
from .trace import RequestTrace, TRACE_FIELDS
from .reporting import render_procedure_report
from .fanout import (
    fanout_degradation,
    fanout_latency_quantile,
    required_leaf_quantile,
    simulate_fanout,
)
from .attribution import (
    TREADMILL_FACTORS,
    AttributionConfig,
    AttributionReport,
    AttributionStudy,
    apply_factors,
)

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "DeterministicArrivals",
    "LognormalArrivals",
    "PoissonArrivals",
    "arrival_from_spec",
    "ClosedLoopController",
    "OpenLoopController",
    "OutstandingTracker",
    "PhaseManager",
    "BenchConfig",
    "TestBench",
    "InstanceReport",
    "TreadmillConfig",
    "TreadmillInstance",
    "aggregate_quantile",
    "client_share_by_latency",
    "per_instance_quantiles",
    "pooled_quantile",
    "treadmill_config_from_json",
    "workload_from_json",
    "MeasurementProcedure",
    "ProcedureConfig",
    "ProcedureResult",
    "RunResult",
    "QuantileBreakdown",
    "CapacityProbe",
    "SweepPoint",
    "SweepResult",
    "sweep_utilization",
    "CapacityResult",
    "find_max_load",
    "RequestTrace",
    "TRACE_FIELDS",
    "breakdown_at_quantile",
    "render_procedure_report",
    "fanout_degradation",
    "fanout_latency_quantile",
    "required_leaf_quantile",
    "simulate_fanout",
    "TREADMILL_FACTORS",
    "AttributionConfig",
    "AttributionReport",
    "AttributionStudy",
    "apply_factors",
]
