"""Cluster fan-out tail analysis (the paper's motivating setting).

The introduction frames why single-server tails matter: "a single
request is distributed among a large number of servers in a 'fan-out'
pattern [where] the overall performance of such systems depends on the
slowest responding machine."  Once Treadmill has measured one server's
latency distribution precisely, this module answers the cluster-level
questions that motivated the measurement:

* :func:`fanout_latency_quantile` — the q-quantile of the *maximum* of
  ``n`` independent per-leaf latencies, computed from the measured
  single-server distribution (empirical inverse-CDF composition:
  ``Q_max(q) = Q_leaf(q^(1/n))``).
* :func:`fanout_degradation` — how far the cluster p99 sits above the
  single-server p99 as the fan-out widens: the "tail at scale" curve.
* :func:`required_leaf_quantile` — the inverse design question: to hit
  a cluster-level SLO at fan-out ``n``, which single-server quantile
  must meet it?  (At n = 100, the cluster p99 is the leaf p99.99 —
  the reason the paper insists on accurate *high*-quantile
  measurement.)

All functions take raw latency samples, exactly what
:class:`~repro.core.treadmill.InstanceReport` provides.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "fanout_latency_quantile",
    "fanout_degradation",
    "required_leaf_quantile",
    "simulate_fanout",
]


def _validate(samples: Sequence[float], fanout: int, q: float) -> np.ndarray:
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("samples must be a non-empty 1-D array")
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    if not 0.0 < q < 1.0:
        raise ValueError("q must be in (0, 1)")
    return arr


def fanout_latency_quantile(
    samples: Sequence[float], fanout: int, q: float
) -> float:
    """q-quantile of the slowest of ``fanout`` independent leaves.

    If leaf latency has CDF F, the max of n i.i.d. draws has CDF F^n,
    so ``Q_max(q) = Q_leaf(q^(1/n))``.
    """
    arr = _validate(samples, fanout, q)
    leaf_q = q ** (1.0 / fanout)
    return float(np.quantile(arr, leaf_q))


def fanout_degradation(
    samples: Sequence[float], fanouts: Sequence[int], q: float = 0.99
) -> dict:
    """Cluster-q latency at each fan-out, normalized to fan-out 1.

    Returns ``{fanout: (latency, ratio_to_single_server)}`` — the
    "tail at scale" degradation curve.
    """
    arr = _validate(samples, 1, q)
    base = float(np.quantile(arr, q))
    out = {}
    for n in fanouts:
        value = fanout_latency_quantile(arr, int(n), q)
        out[int(n)] = (value, value / base if base > 0 else float("inf"))
    return out


def required_leaf_quantile(fanout: int, cluster_q: float = 0.99) -> float:
    """Which leaf quantile governs the cluster-level ``cluster_q``.

    ``cluster_q^(1/fanout)`` — e.g. a 100-way fan-out's p99 is the
    leaf's p99.99.
    """
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    if not 0.0 < cluster_q < 1.0:
        raise ValueError("cluster_q must be in (0, 1)")
    return cluster_q ** (1.0 / fanout)


def simulate_fanout(
    samples: Sequence[float],
    fanout: int,
    n_requests: int,
    rng: np.random.Generator = None,
) -> np.ndarray:
    """Monte-Carlo cluster latencies: max over ``fanout`` leaf draws.

    Provided as an empirical cross-check of the analytic composition
    (useful when leaves are resampled with replacement from a finite
    measurement set).
    """
    arr = _validate(samples, fanout, 0.5)
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if rng is None:
        rng = np.random.default_rng(0)
    draws = rng.choice(arr, size=(n_requests, fanout), replace=True)
    return draws.max(axis=1)
