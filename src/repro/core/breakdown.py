"""Request-level latency breakdown at a quantile.

"Attributing the source of tail latency" happens at two granularities
in the paper: across *hardware factors* (quantile regression, Section
IV) and across *pipeline stages* (Fig. 3's server/client/network
decomposition).  This module provides the second one as a reusable
analysis: given per-request component measurements (collected by a
:class:`~repro.core.treadmill.TreadmillInstance` with
``keep_components=True``), report where the time goes *for the
requests that form the tail*.

The subtlety this handles: the p99 of the total is NOT the sum of the
component p99s (components are dependent and their extremes rarely
coincide).  The honest decomposition conditions on the tail: take the
requests whose total latency lands near the target quantile and
average each component over exactly those requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

__all__ = ["QuantileBreakdown", "breakdown_at_quantile"]


@dataclass
class QuantileBreakdown:
    """Component attribution for requests around one quantile."""

    q: float
    total_us: float
    #: Mean microseconds per component over the conditioned requests.
    components_us: Dict[str, float]
    #: Number of requests in the conditioning window.
    n_requests: int

    def share(self, component: str) -> float:
        """Fraction of the conditioned total spent in ``component``."""
        total = sum(self.components_us.values())
        if total <= 0:
            return 0.0
        return self.components_us[component] / total

    def dominant(self) -> str:
        """The component owning the largest share of the tail."""
        return max(self.components_us, key=self.components_us.get)


def breakdown_at_quantile(
    components: Dict[str, Sequence[float]],
    q: float,
    window: float = 0.005,
) -> QuantileBreakdown:
    """Attribute the ``q``-quantile latency to pipeline components.

    Parameters
    ----------
    components:
        Mapping of component name to per-request latency arrays, all
        the same length and order (e.g. the ``components`` dict of an
        :class:`~repro.core.treadmill.InstanceReport`).
    q:
        Target quantile of the *total* latency.
    window:
        Half-width, in quantile space, of the conditioning band: the
        requests between the ``q - window`` and ``q + window`` totals
        are averaged.  Wider = smoother, narrower = more literally
        "the p99 request".
    """
    if not components:
        raise ValueError("need at least one component series")
    if not 0.0 < q < 1.0:
        raise ValueError("q must be in (0, 1)")
    if not 0.0 < window < min(q, 1.0 - q):
        raise ValueError(
            f"window must be in (0, min(q, 1-q)) = (0, {min(q, 1.0 - q)})"
        )
    arrays = {name: np.asarray(vals, dtype=float) for name, vals in components.items()}
    lengths = {arr.size for arr in arrays.values()}
    if len(lengths) != 1 or lengths == {0}:
        raise ValueError("all component series must be non-empty and equal-length")

    total = np.sum(list(arrays.values()), axis=0)
    lo, hi = np.quantile(total, [q - window, q + window])
    mask = (total >= lo) & (total <= hi)
    if not mask.any():
        # Degenerate distributions: fall back to the nearest request.
        idx = np.argmin(np.abs(total - np.quantile(total, q)))
        mask = np.zeros(total.size, dtype=bool)
        mask[idx] = True
    return QuantileBreakdown(
        q=q,
        total_us=float(np.quantile(total, q)),
        components_us={
            name: float(arr[mask].mean()) for name, arr in arrays.items()
        },
        n_requests=int(mask.sum()),
    )
