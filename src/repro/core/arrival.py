"""Inter-arrival processes for load generation.

The paper's first pitfall (Section II-A) is about *when* a load tester
sends its next request.  Treadmill's open-loop controller draws
exponentially distributed inter-arrival gaps — "consistent with the
measurements obtained from Google production clusters" — so the
offered load is a Poisson process and the server's queueing behaviour
matches production.  Closed-loop testers have no inter-arrival process
at all (the response schedule *is* the send schedule), which is
exactly what breaks them.

Alternative processes (deterministic, lognormal, bursty) are provided
for ablation studies: they let the benchmarks show how sensitive the
measured tail is to the arrival-process assumption.
"""

from __future__ import annotations

import abc
from typing import Dict

import numpy as np

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "LognormalArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "arrival_from_spec",
]


class ArrivalProcess(abc.ABC):
    """Generates successive inter-arrival gaps for one load generator."""

    def __init__(self, rate_rps: float):
        if rate_rps <= 0:
            raise ValueError("arrival rate must be positive")
        #: Target throughput in requests per second.
        self.rate_rps = float(rate_rps)

    @property
    def mean_gap_us(self) -> float:
        return 1e6 / self.rate_rps

    @abc.abstractmethod
    def next_gap_us(self, rng: np.random.Generator) -> float:
        """Time until the next request, in microseconds."""

    def next_gaps_us(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` successive gaps at once.

        **Batching invariant:** the block is drawn from the same stream
        in the same order as ``n`` sequential :meth:`next_gap_us`
        calls, so the values — and therefore every downstream result —
        are bit-identical regardless of block size.  Subclasses
        override with a vectorized draw where numpy guarantees that
        equivalence; this fallback simply loops.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        return np.array([self.next_gap_us(rng) for _ in range(n)], dtype=float)

    @abc.abstractmethod
    def spec(self) -> Dict:
        """JSON-style description."""


class PoissonArrivals(ArrivalProcess):
    """Exponential gaps — Treadmill's default open-loop process."""

    def next_gap_us(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_gap_us))

    def next_gaps_us(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # numpy draws array variates one at a time from the same bit
        # stream, so this equals n sequential next_gap_us calls exactly.
        if n < 1:
            raise ValueError("n must be >= 1")
        return rng.exponential(self.mean_gap_us, n)

    def spec(self) -> Dict:
        return {"type": "poisson", "rate_rps": self.rate_rps}


class DeterministicArrivals(ArrivalProcess):
    """Perfectly paced gaps (a metronome).

    Underestimates queueing relative to Poisson (no arrival variance);
    included to demonstrate that *open loop* alone is not enough — the
    gap distribution matters too.
    """

    def next_gap_us(self, rng: np.random.Generator) -> float:
        return self.mean_gap_us

    def next_gaps_us(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # No randomness consumed — same as the scalar path.
        if n < 1:
            raise ValueError("n must be >= 1")
        return np.full(n, self.mean_gap_us)

    def spec(self) -> Dict:
        return {"type": "deterministic", "rate_rps": self.rate_rps}


class LognormalArrivals(ArrivalProcess):
    """Lognormal gaps with configurable coefficient of variation."""

    def __init__(self, rate_rps: float, cv: float = 1.0):
        super().__init__(rate_rps)
        if cv <= 0:
            raise ValueError("cv must be positive")
        self.cv = float(cv)
        self._sigma = np.sqrt(np.log(1.0 + cv**2))
        self._mu = np.log(self.mean_gap_us) - 0.5 * self._sigma**2

    def next_gap_us(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self._sigma))

    def next_gaps_us(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 1:
            raise ValueError("n must be >= 1")
        return rng.lognormal(self._mu, self._sigma, n)

    def spec(self) -> Dict:
        return {"type": "lognormal", "rate_rps": self.rate_rps, "cv": self.cv}


class BurstyArrivals(ArrivalProcess):
    """Markov-modulated Poisson: alternating calm and burst phases.

    During a burst the instantaneous rate is ``burst_factor`` times the
    calm rate; phase durations are exponential.  The constructor's
    ``rate_rps`` is the *average* rate.
    """

    def __init__(
        self,
        rate_rps: float,
        burst_factor: float = 5.0,
        burst_fraction: float = 0.1,
        phase_mean_us: float = 10_000.0,
    ):
        super().__init__(rate_rps)
        if burst_factor <= 1.0:
            raise ValueError("burst_factor must exceed 1")
        if not 0.0 < burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        self.burst_factor = float(burst_factor)
        self.burst_fraction = float(burst_fraction)
        self.phase_mean_us = float(phase_mean_us)
        # Solve calm rate so the time-average rate equals rate_rps.
        denom = (1.0 - burst_fraction) + burst_fraction * burst_factor
        self._calm_rate = rate_rps / denom
        self._in_burst = False
        self._phase_left_us = 0.0

    def next_gap_us(self, rng: np.random.Generator) -> float:
        if self._phase_left_us <= 0.0:
            self._in_burst = rng.random() < self.burst_fraction
            self._phase_left_us = float(rng.exponential(self.phase_mean_us))
        rate = self._calm_rate * (self.burst_factor if self._in_burst else 1.0)
        gap = float(rng.exponential(1e6 / rate))
        self._phase_left_us -= gap
        return gap

    def next_gaps_us(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Each gap depends on the mutable phase state and may consume a
        # variable number of draws (phase transitions), so there is no
        # exact vectorization; the scalar loop *is* the batched form
        # and trivially preserves the draw order.
        if n < 1:
            raise ValueError("n must be >= 1")
        next_gap = self.next_gap_us
        return np.array([next_gap(rng) for _ in range(n)], dtype=float)

    def spec(self) -> Dict:
        return {
            "type": "bursty",
            "rate_rps": self.rate_rps,
            "burst_factor": self.burst_factor,
            "burst_fraction": self.burst_fraction,
            "phase_mean_us": self.phase_mean_us,
        }


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally modulated Poisson arrivals (a compressed diurnal
    cycle), with an optional superimposed flash crowd.

    The instantaneous rate follows

    ``rate(t) = base * (1 + amplitude * sin(2*pi*t/period + phase))``

    plus, when ``flash_factor > 1``, a multiplicative flash-crowd
    window of ``flash_duration_us`` starting at ``flash_at_us`` —
    the scenario library's "diurnal/flash-crowd" pattern.  Gaps are
    generated by thinning against the peak rate, so the process is an
    exact non-homogeneous Poisson process; like
    :class:`BurstyArrivals` it is stateful (elapsed time accumulates
    across draws), so the batched path is the scalar loop.
    """

    def __init__(
        self,
        rate_rps: float,
        amplitude: float = 0.5,
        period_us: float = 2_000_000.0,
        phase: float = 0.0,
        flash_factor: float = 1.0,
        flash_at_us: float = 0.0,
        flash_duration_us: float = 0.0,
    ):
        super().__init__(rate_rps)
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period_us <= 0:
            raise ValueError("period_us must be positive")
        if flash_factor < 1.0:
            raise ValueError("flash_factor must be >= 1")
        if flash_duration_us < 0 or flash_at_us < 0:
            raise ValueError("flash window must be non-negative")
        self.amplitude = float(amplitude)
        self.period_us = float(period_us)
        self.phase = float(phase)
        self.flash_factor = float(flash_factor)
        self.flash_at_us = float(flash_at_us)
        self.flash_duration_us = float(flash_duration_us)
        self._t_us = 0.0

    def _rate_at(self, t_us: float) -> float:
        """Instantaneous rate (requests per us) at elapsed time t."""
        base = self.rate_rps / 1e6
        rate = base * (
            1.0
            + self.amplitude
            * np.sin(2.0 * np.pi * t_us / self.period_us + self.phase)
        )
        if (
            self.flash_factor > 1.0
            and self.flash_at_us <= t_us < self.flash_at_us + self.flash_duration_us
        ):
            rate *= self.flash_factor
        return rate

    @property
    def _peak_rate(self) -> float:
        peak = (self.rate_rps / 1e6) * (1.0 + self.amplitude)
        if self.flash_duration_us > 0:
            peak *= self.flash_factor
        return peak

    def next_gap_us(self, rng: np.random.Generator) -> float:
        # Thinning (Lewis & Shedler): candidate gaps at the peak rate,
        # accepted with probability rate(t)/peak.
        peak = self._peak_rate
        start = self._t_us
        t = start
        while True:
            t += float(rng.exponential(1.0 / peak))
            if float(rng.random()) * peak <= self._rate_at(t):
                self._t_us = t
                return t - start

    def next_gaps_us(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Stateful (elapsed time) and rejection-based: the scalar loop
        # is the batched form, preserving the draw order exactly.
        if n < 1:
            raise ValueError("n must be >= 1")
        next_gap = self.next_gap_us
        return np.array([next_gap(rng) for _ in range(n)], dtype=float)

    def spec(self) -> Dict:
        return {
            "type": "diurnal",
            "rate_rps": self.rate_rps,
            "amplitude": self.amplitude,
            "period_us": self.period_us,
            "phase": self.phase,
            "flash_factor": self.flash_factor,
            "flash_at_us": self.flash_at_us,
            "flash_duration_us": self.flash_duration_us,
        }


_BUILDERS = {
    "poisson": lambda s: PoissonArrivals(s["rate_rps"]),
    "deterministic": lambda s: DeterministicArrivals(s["rate_rps"]),
    "lognormal": lambda s: LognormalArrivals(s["rate_rps"], s.get("cv", 1.0)),
    "bursty": lambda s: BurstyArrivals(
        s["rate_rps"],
        s.get("burst_factor", 5.0),
        s.get("burst_fraction", 0.1),
        s.get("phase_mean_us", 10_000.0),
    ),
    "diurnal": lambda s: DiurnalArrivals(
        s["rate_rps"],
        s.get("amplitude", 0.5),
        s.get("period_us", 2_000_000.0),
        s.get("phase", 0.0),
        s.get("flash_factor", 1.0),
        s.get("flash_at_us", 0.0),
        s.get("flash_duration_us", 0.0),
    ),
}


def arrival_from_spec(spec: Dict) -> ArrivalProcess:
    """Build an arrival process from a JSON-style dict."""
    if not isinstance(spec, dict) or "type" not in spec:
        raise ValueError(f"arrival spec must be a dict with a 'type': {spec!r}")
    builder = _BUILDERS.get(spec["type"])
    if builder is None:
        raise ValueError(
            f"unknown arrival type {spec['type']!r} (known: {sorted(_BUILDERS)})"
        )
    try:
        return builder(spec)
    except KeyError as exc:
        raise ValueError(f"arrival spec {spec!r} missing field {exc}") from None
