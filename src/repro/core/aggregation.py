"""Cross-client statistical aggregation — the sound way and the pitfall.

Section III-B: "the common practice that combines distributions
obtained from all Treadmill instances to a holistic distribution and
then extracts interested metrics could be heavily biased by outliers
[...]. Instead, we first compute the interested metrics from each
individual Treadmill instance, and then combine them by applying
aggregation functions (e.g., mean, median) on these metrics."

This module provides both paths so the bias is demonstrable
(Fig. 2 / the fig02 benchmark):

* :func:`aggregate_quantile` — extract the quantile per instance, then
  combine the per-instance metrics (mean/median/max).  Statistically
  sound; a single weird client moves the estimate by at most 1/n of
  its own deviation under ``mean`` and not at all under ``median``.
* :func:`pooled_quantile` — merge all samples into one distribution
  first (the pitfall).  A single cross-rack client that contributes
  most of the tail mass then *owns* the high quantiles.
* :func:`client_share_by_latency` — the stacked decomposition of
  Fig. 2: at each latency level, which client contributed what share
  of the samples.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = [
    "per_instance_quantiles",
    "aggregate_quantile",
    "grouped_quantiles",
    "pooled_quantile",
    "client_share_by_latency",
    "combiner_weights",
    "sample_share_imbalance",
]

_COMBINERS = {
    "mean": np.mean,
    "median": np.median,
    "max": np.max,
    "min": np.min,
}


def per_instance_quantiles(samples_by_client: Dict[str, Sequence[float]], q: float) -> Dict[str, float]:
    """The q-quantile of each client's own distribution."""
    if not samples_by_client:
        raise ValueError("need at least one client's samples")
    out = {}
    for name, samples in samples_by_client.items():
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise ValueError(f"client {name!r} has no samples")
        out[name] = float(np.quantile(arr, q))
    return out


def aggregate_quantile(
    samples_by_client: Dict[str, Sequence[float]],
    q: float,
    combine: str = "mean",
) -> float:
    """Sound aggregation: per-instance metric extraction, then combine."""
    fn = _COMBINERS.get(combine)
    if fn is None:
        raise ValueError(f"unknown combiner {combine!r} (have {sorted(_COMBINERS)})")
    metrics = per_instance_quantiles(samples_by_client, q)
    return float(fn(list(metrics.values())))


def grouped_quantiles(
    samples_by_client: Dict[str, Sequence[float]],
    group_of_client: Dict[str, "tuple[str, str]"],
    qs: Sequence[float],
    combine: str = "mean",
) -> "Dict[tuple[str, str], Dict[float, float]]":
    """Per-(fleet, pool) aggregation for scenario runs.

    Clients are partitioned by their grouping key and each group is
    aggregated independently with :func:`aggregate_quantile` — the
    paper's per-instance-then-combine rule applied *within* each
    (client fleet, server pool) pair, so a hot pool's tail is never
    diluted by a healthy one's samples.  Clients missing from
    ``group_of_client`` raise: a silent default would mis-assign load.
    """
    groups: "Dict[tuple[str, str], Dict[str, Sequence[float]]]" = {}
    for name, samples in samples_by_client.items():
        if name not in group_of_client:
            raise ValueError(f"client {name!r} has no (fleet, pool) group")
        groups.setdefault(group_of_client[name], {})[name] = samples
    return {
        group: {q: aggregate_quantile(members, q, combine) for q in qs}
        for group, members in groups.items()
    }


def combiner_weights(names: Sequence[str], combine: str = "mean") -> Dict[str, float]:
    """The standing each client's *metric* gets under a combiner.

    Every supported combiner treats the per-instance metrics
    symmetrically — each client contributes exactly one number,
    independent of how many samples it recorded — so the weights are
    uniform.  The aggregation-bias guard compares these weights with
    the clients' actual sample *shares*: when they diverge, the sound
    per-instance rule and the pooled pitfall give materially different
    answers and aggregation choice is load-bearing (Section III-B,
    Fig. 2).
    """
    if combine not in _COMBINERS:
        raise ValueError(f"unknown combiner {combine!r} (have {sorted(_COMBINERS)})")
    names = list(names)
    if not names:
        raise ValueError("need at least one client")
    w = 1.0 / len(names)
    return {name: w for name in names}


def sample_share_imbalance(
    counts_by_client: Dict[str, int],
    combine: str = "mean",
) -> float:
    """Total-variation distance between sample shares and combiner
    weights, in ``[0, 1]``.

    0 means every client contributed samples exactly in proportion to
    the standing its metric gets; values near 1 mean one client's
    samples dominate a pool that the aggregation treats as balanced.
    """
    weights = combiner_weights(list(counts_by_client), combine)
    total = float(sum(counts_by_client.values()))
    if total <= 0:
        raise ValueError("no samples recorded")
    return 0.5 * sum(
        abs(counts_by_client[name] / total - weights[name])
        for name in counts_by_client
    )


def pooled_quantile(samples_by_client: Dict[str, Sequence[float]], q: float) -> float:
    """The pitfall: merge all samples, then take the quantile.

    Provided for demonstrating the Fig. 2 bias; production code should
    use :func:`aggregate_quantile`.
    """
    if not samples_by_client:
        raise ValueError("need at least one client's samples")
    pooled = np.concatenate(
        [np.asarray(s, dtype=float) for s in samples_by_client.values()]
    )
    if pooled.size == 0:
        raise ValueError("no samples to pool")
    return float(np.quantile(pooled, q))


def client_share_by_latency(
    samples_by_client: Dict[str, Sequence[float]],
    num_bins: int = 40,
) -> Dict[str, np.ndarray]:
    """Fig. 2's stacked decomposition.

    Returns a dict with ``"edges"`` (bin right edges over the pooled
    latency range) and, per client, the *fraction of samples within
    each bin* contributed by that client (fractions across clients sum
    to 1 in every non-empty bin).
    """
    if not samples_by_client:
        raise ValueError("need at least one client's samples")
    if num_bins < 2:
        raise ValueError("num_bins must be >= 2")
    arrays = {k: np.asarray(v, dtype=float) for k, v in samples_by_client.items()}
    pooled = np.concatenate(list(arrays.values()))
    if pooled.size == 0:
        raise ValueError("no samples")
    lo, hi = pooled.min(), pooled.max()
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, num_bins + 1)
    counts = {
        name: np.histogram(arr, bins=edges)[0].astype(float)
        for name, arr in arrays.items()
    }
    totals = np.sum(list(counts.values()), axis=0)
    shares: Dict[str, np.ndarray] = {"edges": edges[1:]}
    with np.errstate(divide="ignore", invalid="ignore"):
        for name, c in counts.items():
            share = np.where(totals > 0, c / np.maximum(totals, 1), 0.0)
            shares[name] = share
    return shares
