"""Human-readable measurement reports with honest uncertainty.

The paper's methodological message is that a tail-latency number
without run-level repetition and distribution-free uncertainty is not
a measurement.  :func:`render_procedure_report` turns a
:class:`~repro.core.procedure.ProcedureResult` into the report a
practitioner should actually read:

* per-quantile estimates with across-run dispersion,
* distribution-free order-statistic confidence intervals computed on
  the pooled final run (for within-run sampling uncertainty),
* convergence diagnostics (did the repeat-until-converged rule
  actually converge, and how wide is the mean's interval), and
* client-side health (max client utilization — the Section II-C bias
  guard).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..stats.convergence import MeanConvergence
from ..stats.quantile import order_statistic_ci
from .procedure import ProcedureResult

__all__ = ["render_procedure_report"]


def render_procedure_report(
    result: ProcedureResult,
    quantiles: Sequence[float] = None,
    confidence: float = 0.95,
) -> str:
    """Render a full measurement report as plain text."""
    if not result.runs:
        raise ValueError("result has no runs")
    qs = list(quantiles) if quantiles is not None else sorted(result.estimates)
    lines: List[str] = []
    lines.append("Tail-latency measurement report")
    lines.append("=" * 48)
    lines.append(f"independent runs: {len(result.runs)}")
    lines.append(f"converged: {'yes' if result.converged else 'NO - treat with caution'}")

    last = result.runs[-1]
    lines.append(
        "server utilization (last run): "
        f"{last.server_utilization:.1%}"
    )
    max_client = max(last.client_utilizations.values())
    guard = "ok" if max_client < 0.3 else "WARNING: client-side queueing bias likely"
    lines.append(f"max client utilization: {max_client:.1%} ({guard})")
    lines.append("")

    lines.append("estimates (mean over runs; dispersion is across-run sd):")
    raw = last.raw_samples()
    for q in qs:
        est = result.estimates[q]
        sd = result.dispersion[q]
        line = f"  p{int(q * 100):>4}: {est:9.1f} us  (run-to-run sd {sd:6.1f})"
        if raw.size > 10:
            lo, hi = order_statistic_ci(raw, q, confidence=confidence)
            line += f"  [within-run {int(confidence * 100)}% CI {lo:.1f}..{hi:.1f}]"
        lines.append(line)
    lines.append("")

    primary = max(qs)
    per_run = result.per_run(primary)
    rule = MeanConvergence(min_runs=2)
    for value in per_run:
        rule.add(value)
    lines.append(
        f"p{int(primary * 100)} per run: "
        + ", ".join(f"{v:.1f}" for v in per_run)
    )
    half = rule.half_width()
    if np.isfinite(half):
        lines.append(
            f"mean of per-run p{int(primary * 100)}: {rule.mean():.1f} "
            f"+/- {half:.1f} us (95% CI of the mean)"
        )
    return "\n".join(lines)
