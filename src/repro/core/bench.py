"""Test-bench wiring: one server, a topology, and client machines.

A :class:`TestBench` assembles everything a load-testing experiment
needs inside a single virtual-time simulator:

* the :class:`~repro.sim.machine.ServerMachine` under test (booted
  fresh, so every bench carries new hidden placement state — one bench
  corresponds to one of the paper's independent *runs*),
* a rack :class:`~repro.sim.network.Topology` with the server and any
  number of client hosts, and
* per-client packet plumbing: request packets travel client NIC ->
  network -> server pipeline -> network -> client NIC, with a
  :class:`~repro.sim.tcpdump.PacketCapture` riding each client NIC for
  ground truth.

Load testers (Treadmill and the pitfall baselines alike) only deal in
:meth:`add_client` / :meth:`open_connections` and the returned
machines; all routing stays here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..sim.engine import Simulator
from ..sim.machine import ClientMachine, ClientSpec, HardwareSpec, ServerMachine
from ..sim.network import LinkConfig, SpineConfig, Topology
from ..sim.rng import RngRegistry
from ..sim.tcpdump import PacketCapture
from ..workloads.base import Request, Workload

__all__ = ["BenchConfig", "TestBench", "drive_until", "drive_to_completion"]


def drive_until(sim: Simulator, predicate: Callable[[], bool], check_every: int = 256) -> None:
    """Run ``sim`` until ``predicate()`` is true.

    The predicate is polled every ``check_every`` events to keep the
    loop overhead negligible; raises if the event heap drains while
    the predicate is still false (a wiring bug: nothing left to wait
    for).  Events are executed in batches of ``check_every`` via the
    kernel's fused ``run`` loop rather than one ``step()`` call per
    event — same predicate cadence, a fraction of the dispatch
    overhead.  Shared by :class:`TestBench` and the scenario bench
    (:mod:`repro.scenarios.bench`): one drive loop, one semantics.
    """
    if check_every < 1:
        raise ValueError("check_every must be >= 1")
    while True:
        if predicate():
            return
        executed = sim.run(max_events=check_every)
        if executed < check_every and sim.peek() is None:
            if predicate():
                return
            raise RuntimeError(
                "simulation drained before the run condition was met "
                "(no pending events; check load-tester wiring)"
            )


def drive_to_completion(sim: Simulator, instances) -> None:
    """Run until every instance reports done, then drain in-flight work."""
    pending = list(instances)
    drive_until(sim, lambda: all(inst.done for inst in pending))
    for inst in pending:
        inst.stop()
    # Let in-flight requests and responses finish.
    sim.run()


@dataclass
class BenchConfig:
    """Everything needed to stand up one experiment run."""

    workload: Workload
    hardware: HardwareSpec = field(default_factory=HardwareSpec)
    seed: int = 0
    server_name: str = "server"
    server_rack: str = "rack0"
    spine: SpineConfig = field(default_factory=SpineConfig)
    #: Access-link configuration for the server host.
    server_link: LinkConfig = field(default_factory=LinkConfig)


class TestBench:
    """One wired experiment run (server + network + clients)."""

    #: Not a pytest test class, despite the name.
    __test__ = False

    def __init__(self, config: BenchConfig, run_index: int = 0, partition=None):
        self.config = config
        self.run_index = run_index
        #: Optional :class:`~repro.sim.partition.PartitionedSimulator`
        #: with every host already assigned to a shard.  When set, each
        #: host's machine and links land on its owning sub-kernel and
        #: cross-shard flows become boundary channels; ``bench.sim`` is
        #: then the *server's* kernel.
        self._partition = partition
        if partition is None:
            self.sim = Simulator()
        else:
            self.sim = partition.sim_for_host(config.server_name)
        # Each run derives an independent seed so repeated runs are
        # independent experiments (the hysteresis procedure needs this).
        self.rng = RngRegistry(hash((config.seed, run_index)) & 0x7FFFFFFF)
        # Spine delays draw from a per-source-host stream, so the draw
        # order is a local property of each host's uplink FIFO — the
        # property that lets sub-kernels replay the identical draws no
        # matter how the simulation is sharded.
        self.topology = Topology(
            self.sim,
            spine_config=config.spine,
            spine_streams=lambda host: self.rng.stream(f"spine/{host}"),
            sim_for_host=None if partition is None else partition.sim_for_host,
        )
        self.topology.add_host(
            config.server_name, config.server_rack, link_config=config.server_link
        )
        self.server = ServerMachine(
            self.sim,
            config.hardware,
            config.workload,
            self.rng.child("server"),
            name=config.server_name,
        )
        self.server.boot()
        self.clients: Dict[str, ClientMachine] = {}
        self.captures: Dict[str, PacketCapture] = {}
        self._conn_counter = 0
        self._done_waiters: List[Callable[[], bool]] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_client(
        self,
        name: str,
        rack: Optional[str] = None,
        client_spec: Optional[ClientSpec] = None,
        link_config: Optional[LinkConfig] = None,
        capture: bool = True,
    ) -> ClientMachine:
        """Stand up a load-tester host and wire its packet paths."""
        if name in self.clients:
            raise ValueError(f"duplicate client {name!r}")
        rack = rack if rack is not None else self.config.server_rack
        self.topology.add_host(name, rack, link_config=link_config)
        cap = PacketCapture(name) if capture else None
        fwd = self.topology.path(name, self.config.server_name)
        rev = self.topology.path(self.config.server_name, name)

        partition = self._partition
        host_sim = self.sim if partition is None else partition.sim_for_host(name)
        client = ClientMachine(
            host_sim,
            client_spec or ClientSpec(),
            name,
            send_packet=lambda request: None,  # replaced below
            capture=cap,
        )

        server_receive = self.server.receive
        deliver = client.deliver
        server_name = self.config.server_name

        if partition is None:

            def respond(request: Request) -> None:
                rev.send(request.response_bytes, deliver, request)

            def send_packet(request: Request) -> None:
                fwd.send(request.request_bytes, server_receive, request, respond)

        else:
            # Identical flows, cut-aware: a channel whose endpoints
            # share a shard degenerates to the closures above; a cut
            # channel exports at the boundary.  Creation order (reverse
            # path first — it is the forward continuation) is fixed, so
            # channel ids are a pure function of the spec.
            respond = partition.channel(
                rev, deliver, src=server_name, dst=name,
                size_attr="response_bytes",
            )
            send_packet = partition.channel(
                fwd, server_receive, respond, src=name, dst=server_name,
                size_attr="request_bytes",
            )

        client._send_packet = send_packet
        self.clients[name] = client
        if cap is not None:
            self.captures[name] = cap
        return client

    def open_connections(self, count: int) -> List[int]:
        """Accept ``count`` new connections on the server; returns ids."""
        if count < 1:
            raise ValueError("count must be >= 1")
        ids = []
        for _ in range(count):
            conn_id = self._conn_counter
            self._conn_counter += 1
            self.server.accept(conn_id)
            ids.append(conn_id)
        return ids

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_until(self, predicate: Callable[[], bool], check_every: int = 256) -> None:
        """Run the simulation until ``predicate()`` is true.

        Delegates to the module-level :func:`drive_until` (shared with
        the scenario bench) — see its docstring for semantics.
        """
        drive_until(self.sim, predicate, check_every)

    def run_to_completion(self, instances) -> None:
        """Run until every instance reports done, then drain in-flight work."""
        drive_to_completion(self.sim, instances)
