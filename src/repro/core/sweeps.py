"""Latency-vs-load sweeps: the standard systems curve, done right.

Plotting tail latency against offered load is the first thing anyone
does with a load tester — and the paper's pitfalls corrupt exactly this
curve (closed loops flatten its knee, saturated clients steepen it).
:func:`sweep_utilization` produces the curve with the library's sound
methodology: at each utilization point it runs the full multi-instance
procedure (optionally with repeated runs) and records per-quantile
estimates plus the measured utilization, client health, and dispersion.

The result renders as a text table and exposes knee detection — the
lowest utilization where the chosen quantile exceeds a multiple of its
low-load baseline — which is the operational summary of the curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..exec.executors import _ExecutorBase, default_executor
from ..exec.progress import ProgressHook
from ..sim.machine import HardwareSpec
from ..workloads.base import Workload
from .procedure import MeasurementProcedure, ProcedureConfig

__all__ = ["SweepPoint", "SweepResult", "sweep_utilization"]


@dataclass
class SweepPoint:
    """Measurements at one utilization level."""

    target_utilization: float
    measured_utilization: float
    estimates_us: Dict[float, float]
    dispersion_us: Dict[float, float]
    max_client_utilization: float


@dataclass
class SweepResult:
    """The full latency-vs-load curve."""

    quantiles: Sequence[float]
    points: List[SweepPoint]

    def series(self, q: float) -> List[float]:
        """The latency series for one quantile, in sweep order."""
        return [p.estimates_us[q] for p in self.points]

    def knee_utilization(self, q: float = 0.99, factor: float = 2.0) -> Optional[float]:
        """Lowest target utilization where the ``q`` latency exceeds
        ``factor`` times its value at the sweep's first point; ``None``
        if the curve never gets there."""
        if factor <= 1.0:
            raise ValueError("factor must exceed 1")
        series = self.series(q)
        base = series[0]
        for point, value in zip(self.points, series):
            if value > factor * base:
                return point.target_utilization
        return None

    def render(self) -> str:
        header = ["util (target/measured)"] + [
            f"p{int(q * 100)} (us)" for q in self.quantiles
        ] + ["max client util"]
        widths = [len(h) for h in header]
        rows = []
        for p in self.points:
            row = [f"{p.target_utilization:.0%} / {p.measured_utilization:.0%}"]
            row += [f"{p.estimates_us[q]:.1f}" for q in self.quantiles]
            row += [f"{p.max_client_utilization:.0%}"]
            rows.append(row)
            widths = [max(w, len(c)) for w, c in zip(widths, row)]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        lines += ["  ".join(c.rjust(w) for c, w in zip(row, widths)) for row in rows]
        return "\n".join(lines)


def sweep_utilization(
    workload: Workload,
    utilizations: Sequence[float],
    quantiles: Sequence[float] = (0.5, 0.95, 0.99),
    hardware: Optional[HardwareSpec] = None,
    num_instances: int = 2,
    samples_per_instance: int = 1500,
    runs_per_point: int = 2,
    seed: int = 0,
    executor: Optional[_ExecutorBase] = None,
    progress: Optional[ProgressHook] = None,
) -> SweepResult:
    """Measure the latency-vs-load curve over ``utilizations``.

    Each point uses ``runs_per_point`` independent runs (hysteresis
    defense; clamped to >= 2 so dispersion is always defined) through
    the standard :class:`MeasurementProcedure` — the sweep holds no
    aggregation logic of its own, so its numbers can never drift from
    the procedure's.  The sweep preserves the order given (ascending
    is conventional but not required).  ``executor`` schedules each
    point's runs through :mod:`repro.exec`; when omitted the
    process-wide defaults apply.
    """
    if not utilizations:
        raise ValueError("need at least one utilization point")
    for u in utilizations:
        if not 0.0 < u < 1.0:
            raise ValueError(f"utilization {u} outside (0, 1)")
    hardware = hardware or HardwareSpec()
    runs_per_point = max(2, runs_per_point)
    owned = executor is None
    executor = executor if not owned else default_executor()
    points: List[SweepPoint] = []
    try:
        for idx, util in enumerate(utilizations):
            proc = MeasurementProcedure(
                ProcedureConfig(
                    workload=workload,
                    hardware=hardware,
                    target_utilization=util,
                    num_instances=num_instances,
                    measurement_samples_per_instance=samples_per_instance,
                    quantiles=tuple(quantiles),
                    primary_quantile=max(quantiles),
                    keep_raw=True,
                    min_runs=runs_per_point,
                    max_runs=runs_per_point,
                    seed=seed + idx,
                ),
                executor=executor,
            )
            result = proc.run(progress=progress)
            points.append(
                SweepPoint(
                    target_utilization=util,
                    measured_utilization=result.mean_server_utilization(),
                    estimates_us={q: result.estimates[q] for q in quantiles},
                    dispersion_us={q: result.dispersion[q] for q in quantiles},
                    max_client_utilization=result.max_client_utilization(),
                )
            )
    finally:
        if owned:
            executor.close()
    return SweepResult(quantiles=tuple(quantiles), points=points)
