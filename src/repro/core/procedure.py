"""The paper's robust tail-latency measurement procedure.

Section III-B assembles the methodology from the pieces the pitfalls
demand:

1. **Multiple Treadmill instances** (client machines) split the
   offered load so every client stays lightly utilized — no
   client-side queueing bias.
2. **Per-instance metric extraction, then aggregation** of metrics
   across instances (mean/median) — no pooled-distribution bias.
3. **Repeat the whole experiment** (fresh server boot, fresh seeds)
   and aggregate per-run results *until the mean converges* — the only
   defense against performance hysteresis, since no amount of extra
   samples within one run helps.

:class:`MeasurementProcedure` expresses that loop on top of the
unified execution layer (:mod:`repro.exec`): each independent run is a
:class:`~repro.exec.spec.RunSpec`, the first ``min_runs`` are
submitted as one batch (they are needed unconditionally, so a parallel
executor overlaps them), and convergence is then probed incrementally.
Results are bit-identical to serial execution regardless of the
executor, because every run is a pure function of its spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exec.executors import _ExecutorBase, default_executor
from ..exec.progress import ProgressHook
from ..exec.spec import RunResult, RunSpec, metric_samples
from ..measure.api import measure_spec
from ..sim.machine import HardwareSpec
from ..stats.convergence import MeanConvergence
from ..workloads.base import Workload

__all__ = ["ProcedureConfig", "RunResult", "ProcedureResult", "MeasurementProcedure"]


@dataclass
class ProcedureConfig:
    """Configuration of the full measurement procedure."""

    workload: Workload
    hardware: HardwareSpec = field(default_factory=HardwareSpec)
    #: Either an absolute offered load or a target server utilization
    #: (exactly one must be set).
    total_rate_rps: Optional[float] = None
    target_utilization: Optional[float] = None
    num_instances: int = 4
    connections_per_instance: int = 16
    warmup_samples: int = 300
    measurement_samples_per_instance: int = 5_000
    quantiles: Sequence[float] = (0.5, 0.95, 0.99)
    #: Metric combiner across instances within one run.
    combine: str = "mean"
    #: The quantile whose across-run mean drives the stopping rule.
    primary_quantile: float = 0.99
    min_runs: int = 3
    max_runs: int = 12
    convergence_rel_tol: float = 0.05
    keep_raw: bool = False
    seed: int = 0
    #: Measurement backend executing each independent run ("sim" — the
    #: virtual-time simulator — or "live" for a real endpoint; any name
    #: from the :mod:`repro.measure` registry).  The procedure itself
    #: is backend-agnostic: phases, convergence, and aggregation do not
    #: change.
    backend: str = "sim"

    def __post_init__(self) -> None:
        if (self.total_rate_rps is None) == (self.target_utilization is None):
            raise ValueError(
                "set exactly one of total_rate_rps / target_utilization"
            )
        if self.num_instances < 1:
            raise ValueError("num_instances must be >= 1")
        if self.primary_quantile not in tuple(self.quantiles):
            raise ValueError("primary_quantile must be one of quantiles")


@dataclass
class ProcedureResult:
    """Outcome of the repeat-until-converged procedure."""

    runs: List[RunResult]
    #: Across-run mean of each per-run metric.
    estimates: Dict[float, float]
    #: Across-run standard deviation of each metric.
    dispersion: Dict[float, float]
    converged: bool

    def per_run(self, q: float) -> List[float]:
        return [r.metrics[q] for r in self.runs]

    def mean_server_utilization(self) -> float:
        return float(np.mean([r.server_utilization for r in self.runs]))

    def max_client_utilization(self) -> float:
        return max(
            max(r.client_utilizations.values()) for r in self.runs
        )

    @property
    def guards_status(self) -> str:
        """Worst validity-guard status across all runs (``"pass"``
        when every audited run is clean; un-audited runs — e.g. loaded
        from a pre-guard cache — count as ``pass``)."""
        order = {"pass": 0, "skip": 0, "warn": 1, "fail": 2}
        worst = "pass"
        for r in self.runs:
            report = getattr(r, "guards", None)
            status = report.status if report is not None else "pass"
            if order.get(status, 0) > order[worst]:
                worst = status
        return worst

    def guard_findings(self) -> List["object"]:
        """Every warn/fail verdict across all runs, tagged with the
        run index: ``[(run_index, GuardVerdict), ...]``."""
        findings = []
        for r in self.runs:
            report = getattr(r, "guards", None)
            if report is None:
                continue
            for v in (*report.failures(), *report.warnings()):
                findings.append((r.run_index, v))
        return findings


class MeasurementProcedure:
    """Runs the full multi-instance, multi-run procedure.

    ``executor`` (any :mod:`repro.exec` executor) controls how the
    independent runs are scheduled; when omitted, the process-wide
    execution defaults (CLI ``--jobs`` / ``--cache-dir``) apply.
    """

    def __init__(
        self,
        config: ProcedureConfig,
        executor: Optional[_ExecutorBase] = None,
    ):
        self.config = config
        self.executor = executor

    # ------------------------------------------------------------------
    def spec_for(self, run_index: int) -> RunSpec:
        """The :class:`RunSpec` describing independent run ``run_index``."""
        cfg = self.config
        load = (
            f"{cfg.total_rate_rps:.0f}rps"
            if cfg.total_rate_rps is not None
            else f"util={cfg.target_utilization:.2f}"
        )
        return RunSpec(
            workload=cfg.workload,
            hardware=cfg.hardware,
            total_rate_rps=cfg.total_rate_rps,
            target_utilization=cfg.target_utilization,
            num_instances=cfg.num_instances,
            connections_per_instance=cfg.connections_per_instance,
            warmup_samples=cfg.warmup_samples,
            measurement_samples_per_instance=cfg.measurement_samples_per_instance,
            quantiles=tuple(cfg.quantiles),
            combine=cfg.combine,
            keep_raw=cfg.keep_raw,
            seed=cfg.seed,
            run_index=run_index,
            tag=f"{cfg.workload.name} {load} run={run_index}",
            backend=cfg.backend,
        )

    def run_once(self, run_index: int) -> RunResult:
        """One independent experiment: boot, load, measure, report."""
        return measure_spec(self.spec_for(run_index))

    def run_batch(
        self,
        run_indices: Sequence[int],
        progress: Optional[ProgressHook] = None,
    ) -> List[RunResult]:
        """Execute a fixed set of independent runs through the
        execution layer (ordered by ``run_indices``)."""
        specs = [self.spec_for(i) for i in run_indices]
        if self.executor is not None:
            return self.executor.run(specs, progress=progress)
        with default_executor() as ex:
            return ex.run(specs, progress=progress)

    def run(self, progress: Optional[ProgressHook] = None) -> ProcedureResult:
        """Repeat independent runs until the primary metric's mean
        converges (or ``max_runs`` is hit).

        The unconditional first ``min_runs`` are submitted as one batch
        (parallelizable); further runs are probed one at a time, since
        each depends on the convergence state after the last.
        """
        cfg = self.config
        rule = MeanConvergence(
            rel_tol=cfg.convergence_rel_tol,
            min_runs=cfg.min_runs,
            max_runs=cfg.max_runs,
        )
        owned = self.executor is None
        executor = self.executor if not owned else default_executor()
        try:
            runs: List[RunResult] = executor.run(
                [self.spec_for(i) for i in range(cfg.min_runs)], progress=progress
            )
            for result in runs:
                rule.add(result.metrics[cfg.primary_quantile])
            while not rule.should_stop():
                result = executor.run(
                    [self.spec_for(len(runs))], progress=progress
                )[0]
                runs.append(result)
                rule.add(result.metrics[cfg.primary_quantile])
        finally:
            if owned:
                executor.close()
        estimates = {
            q: float(np.mean([r.metrics[q] for r in runs])) for q in cfg.quantiles
        }
        dispersion = {
            q: float(np.std([r.metrics[q] for r in runs], ddof=1)) if len(runs) > 1 else 0.0
            for q in cfg.quantiles
        }
        return ProcedureResult(
            runs=runs,
            estimates=estimates,
            dispersion=dispersion,
            converged=rule.is_converged(),
        )


def _histogram_samples(report) -> np.ndarray:
    """Backwards-compatible alias of :func:`repro.exec.spec.metric_samples`."""
    return metric_samples(report)
