"""The paper's robust tail-latency measurement procedure.

Section III-B assembles the methodology from the pieces the pitfalls
demand:

1. **Multiple Treadmill instances** (client machines) split the
   offered load so every client stays lightly utilized — no
   client-side queueing bias.
2. **Per-instance metric extraction, then aggregation** of metrics
   across instances (mean/median) — no pooled-distribution bias.
3. **Repeat the whole experiment** (fresh server boot, fresh seeds)
   and aggregate per-run results *until the mean converges* — the only
   defense against performance hysteresis, since no amount of extra
   samples within one run helps.

:class:`MeasurementProcedure` runs that loop and reports the final
estimates with their across-run dispersion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..sim.machine import HardwareSpec
from ..stats.convergence import MeanConvergence
from ..workloads.base import Workload
from .aggregation import aggregate_quantile
from .bench import BenchConfig, TestBench
from .treadmill import InstanceReport, TreadmillConfig, TreadmillInstance

__all__ = ["ProcedureConfig", "RunResult", "ProcedureResult", "MeasurementProcedure"]


@dataclass
class ProcedureConfig:
    """Configuration of the full measurement procedure."""

    workload: Workload
    hardware: HardwareSpec = field(default_factory=HardwareSpec)
    #: Either an absolute offered load or a target server utilization
    #: (exactly one must be set).
    total_rate_rps: Optional[float] = None
    target_utilization: Optional[float] = None
    num_instances: int = 4
    connections_per_instance: int = 16
    warmup_samples: int = 300
    measurement_samples_per_instance: int = 5_000
    quantiles: Sequence[float] = (0.5, 0.95, 0.99)
    #: Metric combiner across instances within one run.
    combine: str = "mean"
    #: The quantile whose across-run mean drives the stopping rule.
    primary_quantile: float = 0.99
    min_runs: int = 3
    max_runs: int = 12
    convergence_rel_tol: float = 0.05
    keep_raw: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if (self.total_rate_rps is None) == (self.target_utilization is None):
            raise ValueError(
                "set exactly one of total_rate_rps / target_utilization"
            )
        if self.num_instances < 1:
            raise ValueError("num_instances must be >= 1")
        if self.primary_quantile not in tuple(self.quantiles):
            raise ValueError("primary_quantile must be one of quantiles")


@dataclass
class RunResult:
    """One independent experiment (one server boot)."""

    run_index: int
    reports: List[InstanceReport]
    #: Sound per-run estimates: per-instance quantiles combined.
    metrics: Dict[float, float]
    server_utilization: float
    client_utilizations: Dict[str, float]

    def ground_truth(self) -> np.ndarray:
        """Pooled NIC-level samples across instances (tcpdump view)."""
        parts = [r.ground_truth_samples for r in self.reports]
        return np.concatenate(parts) if parts else np.empty(0)

    def raw_samples(self) -> np.ndarray:
        """Pooled raw user-level samples (only if keep_raw was set)."""
        parts = [np.asarray(r.raw_samples) for r in self.reports]
        return np.concatenate(parts) if parts else np.empty(0)


@dataclass
class ProcedureResult:
    """Outcome of the repeat-until-converged procedure."""

    runs: List[RunResult]
    #: Across-run mean of each per-run metric.
    estimates: Dict[float, float]
    #: Across-run standard deviation of each metric.
    dispersion: Dict[float, float]
    converged: bool

    def per_run(self, q: float) -> List[float]:
        return [r.metrics[q] for r in self.runs]


class MeasurementProcedure:
    """Runs the full multi-instance, multi-run procedure."""

    def __init__(self, config: ProcedureConfig):
        self.config = config

    # ------------------------------------------------------------------
    def _build_bench(self, run_index: int) -> TestBench:
        cfg = self.config
        return TestBench(
            BenchConfig(workload=cfg.workload, hardware=cfg.hardware, seed=cfg.seed),
            run_index=run_index,
        )

    def _total_rate(self, bench: TestBench) -> float:
        cfg = self.config
        if cfg.total_rate_rps is not None:
            return cfg.total_rate_rps
        per_us = bench.server.arrival_rate_for_utilization(cfg.target_utilization)
        return per_us * 1e6

    def run_once(self, run_index: int) -> RunResult:
        """One independent experiment: boot, load, measure, report."""
        cfg = self.config
        bench = self._build_bench(run_index)
        rate_per_instance = self._total_rate(bench) / cfg.num_instances
        instances = []
        for i in range(cfg.num_instances):
            tm_cfg = TreadmillConfig(
                rate_rps=rate_per_instance,
                connections=cfg.connections_per_instance,
                warmup_samples=cfg.warmup_samples,
                measurement_samples=cfg.measurement_samples_per_instance,
                keep_raw=cfg.keep_raw,
            )
            instances.append(TreadmillInstance(bench, f"client{i}", tm_cfg))
        for inst in instances:
            inst.start()
        bench.run_to_completion(instances)

        reports = [inst.report() for inst in instances]
        samples_by_client = {
            r.name: _histogram_samples(r) for r in reports
        }
        metrics = {
            q: aggregate_quantile(samples_by_client, q, combine=cfg.combine)
            for q in cfg.quantiles
        }
        return RunResult(
            run_index=run_index,
            reports=reports,
            metrics=metrics,
            server_utilization=bench.server.measured_utilization(),
            client_utilizations={
                name: client.utilization() for name, client in bench.clients.items()
            },
        )

    def run(self) -> ProcedureResult:
        """Repeat independent runs until the primary metric's mean
        converges (or max_runs is hit)."""
        cfg = self.config
        rule = MeanConvergence(
            rel_tol=cfg.convergence_rel_tol,
            min_runs=cfg.min_runs,
            max_runs=cfg.max_runs,
        )
        runs: List[RunResult] = []
        while not rule.converged():
            result = self.run_once(len(runs))
            runs.append(result)
            rule.add(result.metrics[cfg.primary_quantile])
        estimates = {
            q: float(np.mean([r.metrics[q] for r in runs])) for q in cfg.quantiles
        }
        dispersion = {
            q: float(np.std([r.metrics[q] for r in runs], ddof=1)) if len(runs) > 1 else 0.0
            for q in cfg.quantiles
        }
        half = rule.half_width()
        mean = rule.mean()
        converged = mean != 0 and half / abs(mean) <= cfg.convergence_rel_tol
        return ProcedureResult(
            runs=runs, estimates=estimates, dispersion=dispersion, converged=converged
        )


def _histogram_samples(report: InstanceReport) -> np.ndarray:
    """Per-instance latency view for metric extraction.

    Raw samples when kept (exact); otherwise the histogram is queried
    directly through a dense quantile grid, which preserves metric
    extraction accuracy to within a bin width.
    """
    if report.raw_samples:
        return np.asarray(report.raw_samples, dtype=float)
    qs = np.linspace(0.0005, 0.9995, 2000)
    return np.asarray(report.histogram.quantiles(qs))
