"""Open-loop and closed-loop request controllers.

The paper's central design distinction (Section II-A, Fig. 1):

* An **open-loop** controller sends requests at times drawn from an
  inter-arrival process *regardless of outstanding responses*.  The
  number of outstanding requests is unbounded and follows the queueing
  distribution a production fan-out actually sees.

* A **closed-loop** controller only sends request ``k+1`` on a
  connection after response ``k`` arrived (thread-per-connection load
  generators behave this way by construction).  The number of
  outstanding requests is capped at the connection count, which
  truncates the queueing distribution and *systematically
  underestimates tail latency*.

Both controllers drive an abstract ``send(conn_id)`` function supplied
by the load tester and are notified of completions via
:meth:`on_response`.  :class:`OutstandingTracker` records the
time-weighted distribution of in-flight requests — the exact quantity
Fig. 1 plots.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..sim.engine import Event, Simulator
from ..workloads.sampling import BlockStream
from .arrival import ArrivalProcess

__all__ = ["OutstandingTracker", "OpenLoopController", "ClosedLoopController"]


class OutstandingTracker:
    """Time-weighted distribution of the number of outstanding requests.

    Every change of the in-flight count credits the elapsed duration to
    the previous count; :meth:`cdf` then returns the fraction of time
    spent at or below each level — Fig. 1's y-axis.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.count = 0
        self._last_change = sim.now
        self._durations: Dict[int, float] = defaultdict(float)

    def _credit(self) -> None:
        now = self.sim.now
        self._durations[self.count] += now - self._last_change
        self._last_change = now

    # increment/decrement inline _credit: they run once per request
    # send/response, and the extra frame is measurable at high rates.
    def increment(self) -> None:
        count = self.count
        now = self.sim.now
        self._durations[count] += now - self._last_change
        self._last_change = now
        self.count = count + 1

    def decrement(self) -> None:
        count = self.count
        if count <= 0:
            raise ValueError("outstanding count would go negative")
        now = self.sim.now
        self._durations[count] += now - self._last_change
        self._last_change = now
        self.count = count - 1

    def finalize(self) -> None:
        """Credit the trailing interval (call once at measurement end)."""
        self._credit()

    def distribution(self) -> Tuple[np.ndarray, np.ndarray]:
        """(levels, time-fraction) pairs, levels ascending."""
        if not self._durations:
            return np.array([0]), np.array([1.0])
        levels = np.array(sorted(self._durations))
        durs = np.array([self._durations[l] for l in levels], dtype=float)
        total = durs.sum()
        if total <= 0:
            return levels, np.full(levels.shape, 1.0 / len(levels))
        return levels, durs / total

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        levels, probs = self.distribution()
        return levels, np.cumsum(probs)

    def mean(self) -> float:
        levels, probs = self.distribution()
        return float(np.dot(levels, probs))

    def quantile(self, q: float) -> int:
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        levels, cdf = self.cdf()
        idx = int(np.searchsorted(cdf, q, side="left"))
        return int(levels[min(idx, len(levels) - 1)])


class OpenLoopController:
    """Precisely timed open-loop send schedule (Treadmill's controller).

    Sends are scheduled on the simulator's virtual clock directly from
    the arrival process; responses are observed only for accounting.
    ``send`` receives a connection id chosen uniformly at random across
    the instance's connections: random splitting preserves the Poisson
    property on every connection (round-robin splitting would turn
    each connection's arrivals into low-variance Erlang gaps and
    artificially suppress server-side queueing — a subtle load-tester
    bug of exactly the kind the paper warns about).
    """

    def __init__(
        self,
        sim: Simulator,
        arrival: ArrivalProcess,
        send: Callable[[int], None],
        connections: List[int],
        rng: np.random.Generator,
        gap_rng: Optional[np.random.Generator] = None,
        rng_block: int = 512,
    ):
        if not connections:
            raise ValueError("need at least one connection")
        self.sim = sim
        self.arrival = arrival
        self._send = send
        self.connections = list(connections)
        self._rng = rng
        self._schedule = sim.schedule
        self._running = False
        self._pending_event: Optional[Event] = None
        self.tracker = OutstandingTracker(sim)
        self.sent = 0
        self.completed = 0
        # Batched mode: with a dedicated ``gap_rng``, inter-arrival
        # gaps refill from a pre-sampled block (bit-identical to scalar
        # draws on that stream — the batching invariant), and the
        # connection picks on ``rng`` batch too (after start()'s single
        # phase draw the stream is homogeneous integer picks, so the
        # block split is exact).  Without ``gap_rng`` everything stays
        # scalar on ``rng`` in the legacy draw order.
        self._gap_stream: Optional[BlockStream] = None
        self._conn_stream: Optional[BlockStream] = None
        if gap_rng is not None:
            self._gap_stream = BlockStream(arrival.next_gaps_us, gap_rng, rng_block)
            n_conns = len(self.connections)
            self._conn_stream = BlockStream(
                lambda r, k: r.integers(0, n_conns, size=k), rng, rng_block
            )
        #: BlockStreams in use (empty in scalar mode) — lets benchmarks
        #: report the RNG-batch hit rate.
        self.streams = tuple(
            s for s in (self._gap_stream, self._conn_stream) if s is not None
        )

    def start(self, delay_us: float = 0.0) -> None:
        """Begin the send schedule, optionally after ``delay_us``.

        The delay lets scenario fleets come online mid-run (a load
        shifted across racks, a flash crowd arriving); the default of
        zero is bit-identical to the historical immediate start.
        """
        if self._running:
            raise RuntimeError("controller already started")
        if delay_us < 0:
            raise ValueError("delay_us must be non-negative")
        self._running = True
        # Random initial phase: multiple instances must not fire in
        # lockstep (with low-variance gap distributions, synchronized
        # phases would superpose into periodic bursts the offered load
        # does not actually contain).
        phase = float(self._rng.uniform(0.0, self.arrival.mean_gap_us))
        self._pending_event = self.sim.schedule(delay_us + phase, self._fire)

    def stop(self) -> None:
        """Stop issuing new requests (in-flight ones still complete)."""
        self._running = False
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None

    def _schedule_next(self) -> None:
        if self._gap_stream is not None:
            gap = self._gap_stream.next()
        else:
            gap = self.arrival.next_gap_us(self._rng)
        self._pending_event = self.sim.schedule(gap, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        conn_stream = self._conn_stream
        gap_stream = self._gap_stream
        if conn_stream is not None and gap_stream is not None:
            # Hot path with both streams inline (one call frame per
            # request matters at high rates).
            conn = self.connections[conn_stream.next()]
            self.tracker.increment()
            self.sent += 1
            # Schedule the next send *before* issuing: the send timing
            # must never depend on how long issuing takes (open-loop
            # property).
            self._pending_event = self._schedule(gap_stream.next(), self._fire)
            self._send(conn)
            return
        if conn_stream is not None:
            conn = self.connections[conn_stream.next()]
        else:
            conn = self.connections[int(self._rng.integers(0, len(self.connections)))]
        self.tracker.increment()
        self.sent += 1
        # Schedule the next send *before* issuing (open-loop property).
        self._schedule_next()
        self._send(conn)

    def on_response(self, conn_id: int) -> None:
        self.completed += 1
        self.tracker.decrement()


class ClosedLoopController:
    """Thread-per-connection closed loop (the pitfall, reproduced).

    Each of the ``connections`` behaves like a blocking worker thread:
    issue, wait for the response, optionally think, issue again.  The
    offered rate is emergent (``connections / (latency + think)``), so
    callers targeting a rate must size ``connections`` and
    ``think_time_us`` accordingly — exactly the awkwardness real
    closed-loop tools have.
    """

    def __init__(
        self,
        sim: Simulator,
        send: Callable[[int], None],
        connections: List[int],
        rng: np.random.Generator,
        think_time_us: float = 0.0,
        target_rate_rps: Optional[float] = None,
    ):
        if not connections:
            raise ValueError("need at least one connection")
        if think_time_us < 0:
            raise ValueError("think time must be non-negative")
        if target_rate_rps is not None and target_rate_rps <= 0:
            raise ValueError("target_rate_rps must be positive")
        self.sim = sim
        self._send = send
        self.connections = list(connections)
        self._rng = rng
        self.think_time_us = think_time_us
        #: Optional QPS throttle: after each response the connection
        #: sleeps so its cycle time averages ``n_conns / rate`` — how
        #: rate-targeted closed-loop tools (mutilate --qps, YCSB
        #: -target) pace themselves.  When the server is slower than
        #: the pace, the loop simply runs response-limited: the
        #: closed-loop saturation flaw the paper demonstrates.
        self.target_rate_rps = target_rate_rps
        self._running = False
        self.tracker = OutstandingTracker(sim)
        self.sent = 0
        self.completed = 0
        self._think_events: List[Event] = []
        self._issue_times: Dict[int, float] = {}

    @property
    def max_outstanding(self) -> int:
        """The structural cap closed loops impose (Fig. 1's truncation)."""
        return len(self.connections)

    def start(self) -> None:
        if self._running:
            raise RuntimeError("controller already started")
        self._running = True
        # Stagger the initial issues: real tools' connections come up
        # as they are established, not in a thundering herd.  With
        # pacing, spread over one pacing cycle; otherwise over a small
        # window.
        if self.target_rate_rps is not None:
            window = len(self.connections) * 1e6 / self.target_rate_rps
        else:
            window = 100.0
        for conn in self.connections:
            delay = float(self._rng.uniform(0.0, window))
            self._think_events.append(self.sim.schedule(delay, self._issue, conn))

    def stop(self) -> None:
        self._running = False
        for ev in self._think_events:
            ev.cancel()
        self._think_events.clear()

    def _issue(self, conn_id: int) -> None:
        if not self._running:
            return
        self.tracker.increment()
        self.sent += 1
        self._issue_times[conn_id] = self.sim.now
        self._send(conn_id)

    def _pacing_delay(self, conn_id: int) -> float:
        """Residual sleep so this connection's cycle hits the pace."""
        if self.target_rate_rps is None:
            return 0.0
        cycle_us = len(self.connections) * 1e6 / self.target_rate_rps
        elapsed = self.sim.now - self._issue_times.get(conn_id, self.sim.now)
        return max(0.0, cycle_us - elapsed)

    def on_response(self, conn_id: int) -> None:
        self.completed += 1
        self.tracker.decrement()
        if not self._running:
            return
        delay = self._pacing_delay(conn_id)
        if self.think_time_us > 0:
            # Exponential think time keeps the loop from phase-locking.
            delay += float(self._rng.exponential(self.think_time_us))
        if delay > 0:
            self._think_events.append(self.sim.schedule(delay, self._issue, conn_id))
        else:
            self._issue(conn_id)
