"""The Treadmill load-tester instance.

One :class:`TreadmillInstance` is one process of the paper's tool
running on one lightly-utilized client machine:

* **open-loop, precisely timed** sends with exponential inter-arrival
  gaps (:mod:`repro.core.arrival`), scheduled on the virtual clock so
  issuing latency can never perturb the schedule;
* **inline response handling** — the response callback runs as soon as
  the user-space wakeup completes (the paper uses wangle's inline
  executor for this), modelled as a single small CPU cost on the
  generator thread rather than a handoff to another queue;
* **warm-up / calibration / measurement phases** feeding an adaptive
  histogram (:mod:`repro.core.phases`);
* a low per-request CPU cost (:class:`~repro.sim.machine.ClientSpec`
  defaults), reflecting the real tool's lock-free implementation — the
  property that keeps client utilization low and the measurement free
  of client-side queueing bias.

Multiple instances against one server, plus repetition across runs,
are orchestrated by :mod:`repro.core.procedure`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..sim.machine import ClientSpec
from ..stats.buffer import FloatBuffer
from ..stats.histogram import AdaptiveHistogram
from ..workloads.base import Request
from .arrival import ArrivalProcess, PoissonArrivals
from .bench import TestBench
from .controllers import OpenLoopController
from .phases import PhaseManager

__all__ = [
    "TreadmillConfig",
    "InstanceReport",
    "PhaseRecorder",
    "TreadmillInstance",
]

#: Default per-request user-space CPU cost of a Treadmill instance.
#: The real tool is highly optimized (lock-free, inline callbacks);
#: 1.2 us/op keeps a 100 kRPS instance under 15% utilization.
TREADMILL_CLIENT_SPEC = ClientSpec(tx_cpu_us=0.6, rx_cpu_us=0.6)


@dataclass
class TreadmillConfig:
    """Configuration of one Treadmill instance."""

    #: This instance's share of the offered load.
    rate_rps: float = 10_000.0
    #: Concurrent connections to the server (sends round-robin).
    connections: int = 4
    warmup_samples: int = 500
    measurement_samples: int = 10_000
    #: Histogram sizing (see AdaptiveHistogram).
    histogram_bins: int = 512
    calibration_samples: int = 500
    #: Retain raw latency samples alongside the histogram (needed by
    #: the attribution pipeline, which sub-samples raw latencies).
    keep_raw: bool = False
    #: Also retain the per-request latency decomposition
    #: (server/network/client components, Fig. 3).
    keep_components: bool = False
    #: Arrival-process factory; defaults to Poisson at ``rate_rps``.
    arrival: Optional[ArrivalProcess] = None
    #: Variates per pre-sampled RNG block on the hot path (gaps,
    #: connection picks, request parameters).  Any value >= 1 produces
    #: identical results — the batching invariant — so this is purely
    #: a speed/memory knob.
    rng_block: int = 512
    #: Virtual-time delay before this instance begins sending.  Lets a
    #: scenario fleet come online mid-run (cross-rack load shift,
    #: flash crowd); zero is the historical immediate start.
    start_us: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.connections < 1:
            raise ValueError("connections must be >= 1")
        if self.rng_block < 1:
            raise ValueError("rng_block must be >= 1")
        if self.start_us < 0:
            raise ValueError("start_us must be non-negative")

    def make_arrival(self) -> ArrivalProcess:
        return self.arrival if self.arrival is not None else PoissonArrivals(self.rate_rps)


@dataclass
class InstanceReport:
    """What one instance reports at the end of a run.

    Per the paper's aggregation rule, downstream code extracts metrics
    (e.g. p99) from each report *individually* and then combines the
    metrics — never the distributions (Section III-B).
    """

    name: str
    histogram: AdaptiveHistogram
    #: Raw measurement-phase latencies (numpy array; empty unless
    #: ``keep_raw`` was set).
    raw_samples: np.ndarray
    requests_sent: int
    responses_recorded: int
    client_utilization: float
    ground_truth_samples: np.ndarray
    #: (server, network, client) latency components per measured
    #: request, when keep_components was set; else empty arrays.
    components: Dict[str, np.ndarray]
    #: Scenario grouping labels: the client fleet this instance belongs
    #: to and the server pool it measured.  Empty outside scenarios;
    #: per-(fleet, pool) aggregation and attribution key on the pair.
    fleet: str = ""
    pool: str = ""
    #: Guard tape (see :meth:`PhaseManager.guard_windows`): windowed
    #: ``(count, mean, q50, q95)`` summaries of the post-warm-up
    #: stream, consumed by the repro.guards drift detectors.
    phase_windows: np.ndarray = field(
        default_factory=lambda: np.empty((0, 4), dtype=float)
    )
    #: The last warm-up latencies (phase-boundary evidence for the
    #: warm-up-insufficiency detector); empty when warm-up was zero.
    warmup_tail: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=float))

    @property
    def group(self) -> "tuple[str, str]":
        """The (fleet, pool) grouping key for scenario aggregation."""
        return (self.fleet, self.pool)

    def quantile(self, q: float) -> float:
        return self.histogram.quantile(q)

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        return self.histogram.quantiles(qs)

    def mean(self) -> float:
        return self.histogram.mean()


class PhaseRecorder:
    """Phase machine + component buffers + report assembly for one
    measurement instance.

    This is the backend-independent half of a Treadmill instance: the
    warm-up/calibration/measurement lifecycle, the optional per-request
    latency decomposition, and the memoized :class:`InstanceReport`
    construction.  The simulated :class:`TreadmillInstance` and the
    wall-clock live driver (:mod:`repro.live.driver`) both own one, so
    every measurement backend reports through the identical machinery —
    the paper's aggregation rule cannot diverge between targets.
    """

    def __init__(
        self,
        name: str,
        config: TreadmillConfig,
        fleet: str = "",
        pool: str = "",
    ):
        self.name = name
        self.config = config
        self.fleet = fleet
        self.pool = pool
        self.phases = PhaseManager(
            warmup_samples=config.warmup_samples,
            measurement_samples=config.measurement_samples,
            histogram=AdaptiveHistogram(
                num_bins=config.histogram_bins,
                calibration_size=config.calibration_samples,
            ),
            keep_raw=config.keep_raw,
        )
        self.components = {
            "server": FloatBuffer(),
            "network": FloatBuffer(),
            "client": FloatBuffer(),
        }
        # report() memo: (collected, ground-truth count) -> arrays.
        self._report_key = None
        self._report_arrays = None

    @property
    def done(self) -> bool:
        return self.phases.done

    def record(
        self,
        latency_us: float,
        server_us: float = 0.0,
        network_us: float = 0.0,
        client_us: float = 0.0,
    ) -> bool:
        """Feed one response latency (and optional decomposition)
        through the phase machine; True when the sample counted."""
        counted = self.phases.record(latency_us)
        if counted and self.config.keep_components:
            self.components["server"].append(server_us)
            self.components["network"].append(network_us)
            self.components["client"].append(client_us)
        return counted

    def report(
        self,
        *,
        requests_sent: int,
        client_utilization: float,
        n_ground_truth: int = 0,
        ground_truth=None,
    ) -> InstanceReport:
        """Assemble the :class:`InstanceReport` for the current state.

        ``ground_truth`` is a zero-argument callable producing the
        NIC-level sample array; it is only invoked when the memo key
        ``(collected, n_ground_truth)`` changed, so repeated report()
        calls at the same point reuse the converted arrays.
        """
        key = (self.phases.collected, n_ground_truth)
        if key != self._report_key:
            self._report_arrays = (
                np.asarray(self.phases.raw_samples, dtype=float),
                ground_truth() if ground_truth is not None else np.empty(0),
                {k: buf.array() for k, buf in self.components.items()},
                self.phases.guard_windows(),
                self.phases.warmup_tail,
            )
            self._report_key = key
        raw, truth, components, windows, warm_tail = self._report_arrays
        return InstanceReport(
            name=self.name,
            histogram=self.phases.histogram,
            raw_samples=raw,
            requests_sent=requests_sent,
            responses_recorded=self.phases.collected,
            client_utilization=client_utilization,
            ground_truth_samples=truth,
            components=components,
            fleet=self.fleet,
            pool=self.pool,
            phase_windows=windows,
            warmup_tail=warm_tail,
        )


class TreadmillInstance:
    """One Treadmill process on one client machine."""

    def __init__(
        self,
        bench: TestBench,
        name: str,
        config: Optional[TreadmillConfig] = None,
        rack: Optional[str] = None,
        client_spec: Optional[ClientSpec] = None,
        link_config=None,
        request_observer=None,
        fleet: str = "",
        pool: str = "",
    ):
        self.bench = bench
        self.name = name
        #: Scenario grouping labels (empty outside scenarios): which
        #: client fleet this instance belongs to and which server pool
        #: it targets.  The bench decides routing; the labels ride
        #: along so reports group per (fleet, pool).
        self.fleet = fleet
        self.pool = pool
        #: Optional callback invoked with every completed Request
        #: (e.g. repro.core.trace.RequestTrace.observe).
        self.request_observer = request_observer
        self.config = config or TreadmillConfig()
        self.client = bench.add_client(
            name,
            rack=rack,
            client_spec=client_spec or TREADMILL_CLIENT_SPEC,
            link_config=link_config,
        )
        self.client.response_handler = self._on_response
        self._rng = bench.rng.stream(f"{name}/requests")
        self.connections = bench.open_connections(self.config.connections)
        # Hot-path batching: request parameters, inter-arrival gaps,
        # and connection picks each draw from a dedicated stream in
        # pre-sampled blocks.  Per-stream block draws are bit-identical
        # to scalar draws (the batching invariant), so rng_block never
        # affects results; the split into per-purpose streams is what
        # makes the batching exact.
        self._sampler = bench.config.workload.request_sampler(
            self._rng,
            stream_factory=lambda p: bench.rng.stream(f"{name}/requests/{p}"),
            block=self.config.rng_block,
        )
        # The controller runs on the *client machine's* kernel — in a
        # serial bench that is bench.sim; in a partitioned bench it is
        # the sub-kernel owning this client's host.
        self.controller = OpenLoopController(
            self.client.sim,
            self.config.make_arrival(),
            self._send,
            self.connections,
            bench.rng.stream(f"{name}/arrivals"),
            gap_rng=bench.rng.stream(f"{name}/gaps"),
            rng_block=self.config.rng_block,
        )
        # Backend-independent half (phases, components, reporting);
        # hot-path aliases avoid an attribute hop per response.
        self.recorder = PhaseRecorder(name, self.config, fleet=fleet, pool=pool)
        self.phases = self.recorder.phases
        self._components = self.recorder.components
        self._req_counter = 0
        self._workload = bench.config.workload
        # Self-stop on completion: the instance shuts its own controller
        # down from inside the response that collects the final sample,
        # so the trailing request count is a function of the sample
        # stream alone — not of how often a drive loop polls ``done``.
        # (Partitioned sub-kernels depend on this order-independence.)
        self.phases.on_done = self._became_done
        #: Virtual time at which the final sample was collected.
        self.completed_at: Optional[float] = None
        #: Optional completion callback ``fn(instance)`` set by the
        #: bench (serial antagonist shutdown, partition completion log).
        self.on_done = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.controller.start(self.config.start_us)

    def stop(self) -> None:
        self.controller.stop()

    def _became_done(self) -> None:
        """Fired once by the phase machine at the final counted sample."""
        self.controller.stop()
        self.completed_at = self.client.sim.now
        if self.on_done is not None:
            self.on_done(self)

    @property
    def done(self) -> bool:
        return self.phases.done

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def _send(self, conn_id: int) -> None:
        counter = self._req_counter
        self._req_counter = counter + 1
        self.client.issue(self._sampler(counter, conn_id))

    @property
    def streams(self):
        """All hot-path BlockStreams (gaps, conn picks, request params)."""
        return self.controller.streams + tuple(self._sampler.streams)

    def _on_response(self, request: Request) -> None:
        # Inline execution: accounting happens in the completion
        # callback itself, immediately (no extra queueing stage).
        self.controller.on_response(request.conn_id)
        counted = self.phases.record(request.user_latency_us)
        if counted and self.config.keep_components:
            self._components["server"].append(request.server_latency_us)
            self._components["network"].append(request.network_latency_us)
            self._components["client"].append(request.client_latency_us)
        if self.request_observer is not None:
            self.request_observer(request)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> InstanceReport:
        capture = self.client.capture
        n_truth = len(capture.latencies_us) if capture is not None else 0
        return self.recorder.report(
            requests_sent=self.controller.sent,
            client_utilization=self.client.utilization(),
            n_ground_truth=n_truth,
            ground_truth=(
                capture.samples if capture is not None else None
            ),
        )
