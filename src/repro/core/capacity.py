"""SLO-driven capacity planning on top of precise measurement.

The paper's introduction motivates accurate tail measurement with
provisioning: "servers are typically acquired in large quantities
(e.g., 1000s at a time), so it is important to choose the best design
possible and carefully provision resources."  The operational question
is: *given a tail-latency SLO, how much load can one server carry?*

:func:`find_max_load` answers it with the library's own methodology —
repeated multi-instance measurements at each probe point — and a
bisection over utilization (tail latency is monotone in offered load,
so bisection is sound).  Because each probe uses the statistically
robust procedure, the answer inherits its accuracy; running the search
with a *flawed* tester would inherit its bias instead, which is a nice
way to quantify what the paper's pitfalls cost in provisioning terms
(an overestimating tester under-provisions utilization and wastes
machines; an underestimating one violates the SLO in production).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..exec.executors import _ExecutorBase, default_executor
from ..sim.machine import HardwareSpec
from ..workloads.base import Workload
from .procedure import MeasurementProcedure, ProcedureConfig

__all__ = ["CapacityProbe", "CapacityResult", "find_max_load"]


@dataclass
class CapacityProbe:
    """One bisection probe: a utilization point and its measured tail."""

    utilization: float
    metric_us: float
    meets_slo: bool


@dataclass
class CapacityResult:
    """Outcome of the SLO capacity search."""

    slo_us: float
    quantile: float
    #: Highest probed utilization that met the SLO (0 if none did).
    max_utilization: float
    #: The measured metric at that utilization.
    achieved_us: float
    probes: List[CapacityProbe]

    @property
    def feasible(self) -> bool:
        return self.max_utilization > 0.0

    def headroom_pct(self) -> float:
        """How much of the SLO budget the operating point leaves unused."""
        if not self.feasible:
            return 0.0
        return 100.0 * (1.0 - self.achieved_us / self.slo_us)


def _measure(
    workload: Workload,
    hardware: HardwareSpec,
    utilization: float,
    quantile: float,
    runs: int,
    samples_per_instance: int,
    instances: int,
    seed: int,
    executor: Optional[_ExecutorBase] = None,
) -> float:
    proc = MeasurementProcedure(
        ProcedureConfig(
            workload=workload,
            hardware=hardware,
            target_utilization=utilization,
            num_instances=instances,
            measurement_samples_per_instance=samples_per_instance,
            quantiles=(0.5, 0.95, quantile) if quantile not in (0.5, 0.95) else (0.5, 0.95, 0.99),
            primary_quantile=quantile,
            keep_raw=True,
            min_runs=max(2, runs),
            max_runs=max(2, runs),
            seed=seed,
        ),
        executor=executor,
    )
    return proc.run().estimates[quantile]


def find_max_load(
    workload: Workload,
    slo_us: float,
    quantile: float = 0.99,
    hardware: Optional[HardwareSpec] = None,
    lo: float = 0.05,
    hi: float = 0.92,
    tolerance: float = 0.02,
    runs_per_probe: int = 2,
    samples_per_instance: int = 1500,
    instances: int = 2,
    seed: int = 0,
    executor: Optional[_ExecutorBase] = None,
) -> CapacityResult:
    """Bisect for the highest utilization whose ``quantile`` latency
    meets ``slo_us``.

    Parameters mirror the measurement procedure; ``tolerance`` is the
    utilization resolution at which the search stops.  Each probe
    averages ``runs_per_probe`` independent runs (hysteresis defense,
    clamped to >= 2) submitted through :mod:`repro.exec` — the search
    itself is sequential (each probe depends on the last), but the
    runs within a probe parallelize, and the result cache makes
    repeated searches over overlapping probe points nearly free.
    """
    if slo_us <= 0:
        raise ValueError("slo_us must be positive")
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    if not 0.0 < lo < hi < 1.0:
        raise ValueError("need 0 < lo < hi < 1")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    hardware = hardware or HardwareSpec()
    probes: List[CapacityProbe] = []
    owned = executor is None
    executor = executor if not owned else default_executor()

    def probe(util: float) -> CapacityProbe:
        metric = _measure(
            workload,
            hardware,
            util,
            quantile,
            runs_per_probe,
            samples_per_instance,
            instances,
            seed + int(util * 1000),
            executor=executor,
        )
        result = CapacityProbe(
            utilization=util, metric_us=metric, meets_slo=metric <= slo_us
        )
        probes.append(result)
        return result

    try:
        low_probe = probe(lo)
        if not low_probe.meets_slo:
            # Even the lightest load violates the SLO: infeasible.
            return CapacityResult(
                slo_us=slo_us,
                quantile=quantile,
                max_utilization=0.0,
                achieved_us=low_probe.metric_us,
                probes=probes,
            )
        high_probe = probe(hi)
        if high_probe.meets_slo:
            return CapacityResult(
                slo_us=slo_us,
                quantile=quantile,
                max_utilization=hi,
                achieved_us=high_probe.metric_us,
                probes=probes,
            )

        best = low_probe
        left, right = lo, hi
        while right - left > tolerance:
            mid = (left + right) / 2.0
            mid_probe = probe(mid)
            if mid_probe.meets_slo:
                best = mid_probe
                left = mid
            else:
                right = mid
        return CapacityResult(
            slo_us=slo_us,
            quantile=quantile,
            max_utilization=best.utilization,
            achieved_us=best.metric_us,
            probes=probes,
        )
    finally:
        if owned:
            executor.close()
