"""`repro.run` — the one front door for executing experiments.

Historically the library had three run spellings: ``run_spec`` (plain
specs), ``run_scenario_spec`` (scenario-carrying specs), and ad-hoc
executor calls inside experiment runners.  :func:`run` consolidates
them: give it a :class:`~repro.exec.spec.RunSpec` or a
:class:`~repro.scenarios.schema.ScenarioSpec`, optionally name a
measurement backend and/or an executor, and it does the right thing.
The old spellings survive as thin deprecated aliases (see
``exec/API.md``, "Migration table").
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

__all__ = ["run"]


def _is_scenario(obj: object) -> bool:
    # Duck-typed so repro.scenarios is only imported when needed.
    return hasattr(obj, "fleets") and hasattr(obj, "pools")


def run(
    spec_or_scenario: object,
    *,
    backend: Optional[str] = None,
    executor: object = None,
    progress: object = None,
    strict_guards: bool = False,
) -> Union[object, List[object]]:
    """Execute an experiment description end to end.

    Parameters
    ----------
    spec_or_scenario:
        A :class:`~repro.exec.spec.RunSpec` (one independent
        experiment — returns its ``RunResult``) or a
        :class:`~repro.scenarios.schema.ScenarioSpec` (compiled to its
        full factor-matrix x replication schedule — returns the list
        of ``RunResult``\\ s in schedule order).
    backend:
        Measurement backend name overriding ``spec.backend`` (e.g.
        ``"live"``); None keeps what the spec says.  Configure backend
        options (like the live target) via
        :func:`repro.measure.set_backend_defaults`.
    executor:
        How to schedule the runs: None uses the direct in-process path
        for a single spec and the process-wide default executor for
        scenarios; a string names a registered executor backend
        (``"serial"``, ``"process"``, ``"cluster"``); anything with a
        ``.run(specs, progress=...)`` method is used as-is (and not
        closed).
    progress:
        Optional :mod:`repro.exec.progress` hook forwarded to the
        executor.
    strict_guards:
        Guards are advisory by default: every result carries its
        validity audit on ``result.guards`` and nothing raises.  With
        ``strict_guards=True`` any run whose audit *fails* a detector
        raises :class:`~repro.guards.api.GuardFailureError` (warnings
        still pass) — the programmatic twin of the CLI's
        ``--strict-guards`` flag.

    Examples
    --------
    ::

        result = repro.run(spec)
        result = repro.run(spec, backend="live")
        results = repro.run(scenario, executor="process")
    """
    from .measure.api import measure_spec

    if _is_scenario(spec_or_scenario):
        from .scenarios.compiler import compile_scenario

        specs: Sequence[object] = compile_scenario(spec_or_scenario)
        single = False
    else:
        specs = [spec_or_scenario]
        single = True

    if backend is not None:
        specs = [s.replace(backend=backend) for s in specs]

    if executor is None:
        if single:
            return _enforce_guards(measure_spec(specs[0]), strict_guards)
        from .exec.executors import execute_specs

        results = execute_specs(specs, progress=progress)
        return [_enforce_guards(r, strict_guards) for r in results]

    if isinstance(executor, str):
        from .exec.api import make_executor

        with make_executor(executor) as ex:
            results = ex.run(specs, progress=progress)
    else:
        results = executor.run(specs, progress=progress)
    results = [_enforce_guards(r, strict_guards) for r in results]
    return results[0] if single else results


def _enforce_guards(result: object, strict: bool) -> object:
    if not strict:
        return result
    report = getattr(result, "guards", None)
    if report is None or report.ok:
        return result
    from .guards.api import GuardFailureError

    failures = report.failures()
    names = ", ".join(v.detector for v in failures)
    raise GuardFailureError(
        f"measurement failed validity guard(s) {names}: "
        + "; ".join(v.summary for v in failures),
        verdicts=failures,
    )
