"""Measurement-validity guards: verdicts, registry, and evaluation.

Treadmill §II argues that most published tail-latency numbers are
invalid before they are ever read: closed-loop clients coordinate
with server slowness (coordinated omission), saturated clients queue
their own requests, pooled aggregation lets one weird client own the
tail, and insufficient warm-up measures a cold server.  This package
turns that pitfall catalogue into *executable detectors* that run
inside every measurement — simulated or live — through the
:mod:`repro.measure` backend protocol (API v2).

Design rules:

* **Deterministic.**  A detector is a pure function of the
  :class:`~repro.exec.spec.RunResult` (and spec/capabilities); it
  draws no randomness and reads no clocks.  Identical results produce
  bit-identical :class:`GuardVerdict`\\ s on every executor backend.
* **Advisory by default.**  Detectors never mutate or reject a
  result; they attach evidence.  Strict enforcement
  (:class:`GuardFailureError`) is opt-in at the facade/CLI layer.
* **Never crash a measurement.**  A detector that raises is reported
  as a ``skip`` verdict carrying the error, not propagated.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "GUARDS_SCHEMA",
    "PASS",
    "WARN",
    "FAIL",
    "SKIP",
    "LATE_GAP_FACTOR",
    "GuardVerdict",
    "GuardReport",
    "GuardThresholds",
    "GuardContext",
    "GuardFailureError",
    "register_detector",
    "available_detectors",
    "detector_info",
    "evaluate_run",
    "guard_thresholds",
    "set_guard_thresholds",
    "current_thresholds",
    "guard_enforcement",
    "set_guard_enforcement",
    "current_enforcement",
    "maybe_enforce",
]

#: Version of the verdict/evidence schema (bump when evidence keys or
#: verdict semantics change incompatibly).
GUARDS_SCHEMA = 1

PASS = "pass"
WARN = "warn"
FAIL = "fail"
#: The detector could not run (missing evidence channel, or it raised).
SKIP = "skip"

_STATUSES = (PASS, WARN, FAIL, SKIP)
#: Severity order for "worst verdict wins".  ``skip`` is benign: a
#: missing evidence channel is not a validity finding.
_SEVERITY = {SKIP: 0, PASS: 0, WARN: 1, FAIL: 2}

#: A send counts as "late" when its actual-minus-scheduled lag exceeds
#: this many mean inter-arrival gaps.  Shared constant so the live
#: driver (which summarizes lags online) and the coordinated-omission
#: detector (which thresholds the late fraction) agree on the bucket.
LATE_GAP_FACTOR = 4.0


class GuardFailureError(RuntimeError):
    """Raised under strict-guards enforcement when a run fails a
    validity detector.  Carries the failing verdicts."""

    def __init__(self, message: str, verdicts: Sequence["GuardVerdict"] = ()):
        super().__init__(message)
        self.verdicts: Tuple[GuardVerdict, ...] = tuple(verdicts)


def _freeze_evidence(evidence) -> Tuple[Tuple[str, object], ...]:
    if isinstance(evidence, dict):
        items = evidence.items()
    else:
        items = tuple(evidence)
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class GuardVerdict:
    """One detector's finding for one run.

    ``evidence`` is a sorted tuple of ``(key, value)`` pairs (values
    are plain floats/ints/strings) so verdicts hash, pickle, and
    compare bit-identically across executor backends.
    """

    detector: str
    status: str
    summary: str
    #: The Treadmill §II pitfall this detector audits.
    pitfall: str = ""
    evidence: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise ValueError(
                f"status must be one of {_STATUSES}, got {self.status!r}"
            )
        object.__setattr__(self, "evidence", _freeze_evidence(self.evidence))

    @property
    def ok(self) -> bool:
        """True unless the detector found a validity problem."""
        return self.status in (PASS, SKIP)

    def evidence_dict(self) -> Dict[str, object]:
        return dict(self.evidence)

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "detector": self.detector,
            "status": self.status,
            "summary": self.summary,
            "pitfall": self.pitfall,
            "evidence": dict(self.evidence),
        }


@dataclass(frozen=True)
class GuardReport:
    """All detector verdicts for one run, attached as
    ``RunResult.guards``."""

    verdicts: Tuple[GuardVerdict, ...] = ()
    schema: int = GUARDS_SCHEMA

    def __post_init__(self) -> None:
        object.__setattr__(self, "verdicts", tuple(self.verdicts))

    @property
    def status(self) -> str:
        """Worst verdict status (``pass`` when every detector is
        quiet or skipped)."""
        worst = PASS
        for v in self.verdicts:
            if _SEVERITY[v.status] > _SEVERITY[worst]:
                worst = v.status
        return worst

    @property
    def ok(self) -> bool:
        return self.status != FAIL

    def verdict(self, detector: str) -> Optional[GuardVerdict]:
        for v in self.verdicts:
            if v.detector == detector:
                return v
        return None

    def failures(self) -> Tuple[GuardVerdict, ...]:
        return tuple(v for v in self.verdicts if v.status == FAIL)

    def warnings(self) -> Tuple[GuardVerdict, ...]:
        return tuple(v for v in self.verdicts if v.status == WARN)

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "status": self.status,
            "verdicts": [v.to_jsonable() for v in self.verdicts],
        }

    def format(self, verbose: bool = False) -> str:
        """Human-readable multi-line summary for CLI output."""
        if not self.verdicts:
            return "guards: (none evaluated)"
        width = max(len(v.detector) for v in self.verdicts)
        lines = [f"guards: {self.status}"]
        for v in self.verdicts:
            lines.append(f"  {v.detector.ljust(width)}  {v.status:<4}  {v.summary}")
            if verbose and v.evidence:
                ev = ", ".join(
                    f"{k}={_fmt_value(val)}" for k, val in v.evidence
                )
                lines.append(f"  {' ' * width}        {ev}")
        return "\n".join(lines)


def _fmt_value(val: object) -> str:
    if isinstance(val, float):
        return f"{val:.4g}"
    return str(val)


@dataclass(frozen=True)
class GuardThresholds:
    """Tunable detector thresholds (digest-neutral: guards audit
    results, they never shape them).

    Scores named ``*_drift_*`` are robust z-scores: deviation of a
    window statistic in units of ``max(MAD, rel_floor * median)`` of
    the reference windows.
    """

    # client saturation --------------------------------------------------
    client_utilization_warn: float = 0.25
    client_utilization_fail: float = 0.50
    #: live driver process CPU fraction (one Python thread, so the
    #: interpreter's fixed per-request cost is expected; only a client
    #: genuinely out of CPU compromises the schedule).
    client_cpu_warn: float = 0.65
    client_cpu_fail: float = 0.90
    #: asyncio loop lag (p99) in units of the mean inter-arrival gap.
    scheduler_lag_warn_gaps: float = 2.0
    scheduler_lag_fail_gaps: float = 8.0
    # coordinated omission -----------------------------------------------
    #: fraction of sends later than LATE_GAP_FACTOR mean gaps.
    late_fraction_warn: float = 0.01
    late_fraction_fail: float = 0.05
    # warm-up insufficiency ----------------------------------------------
    warmup_drift_warn: float = 4.0
    warmup_drift_fail: float = 8.0
    # non-stationarity ---------------------------------------------------
    drift_warn: float = 4.0
    drift_fail: float = 8.0
    # aggregation bias ---------------------------------------------------
    #: total-variation distance between per-client sample shares and
    #: the combiner's per-client weights (see sample_share_imbalance).
    share_imbalance_warn: float = 0.15
    share_imbalance_fail: float = 0.35
    # shared -------------------------------------------------------------
    #: minimum guard-tape windows before drift statistics are trusted.
    min_windows: int = 6
    #: relative scale floor for robust z-scores (fraction of the
    #: reference median), guarding against near-zero MAD.
    rel_floor: float = 0.05

    def __post_init__(self) -> None:
        for f in fields(self):
            if float(getattr(self, f.name)) < 0:
                raise ValueError(f"{f.name} must be non-negative")
        if self.min_windows < 2:
            raise ValueError("min_windows must be >= 2")


_DEFAULT_THRESHOLDS = GuardThresholds()
_current_thresholds = _DEFAULT_THRESHOLDS


def current_thresholds() -> GuardThresholds:
    """The process-wide thresholds detectors evaluate against."""
    return _current_thresholds


def set_guard_thresholds(thresholds: Optional[GuardThresholds]) -> None:
    """Replace the process-wide thresholds (None restores defaults)."""
    global _current_thresholds
    _current_thresholds = thresholds or _DEFAULT_THRESHOLDS


@contextmanager
def guard_thresholds(**overrides) -> Iterator[GuardThresholds]:
    """Scoped threshold overrides::

        with guard_thresholds(client_utilization_fail=0.8):
            result = repro.run(spec)
    """
    previous = _current_thresholds
    set_guard_thresholds(replace(previous, **overrides))
    try:
        yield _current_thresholds
    finally:
        set_guard_thresholds(previous)


# ---------------------------------------------------------------------------
# enforcement mode (advisory by default; strict raises)
# ---------------------------------------------------------------------------
_ENFORCEMENT_MODES = ("advisory", "strict")
_enforcement = "advisory"


def current_enforcement() -> str:
    return _enforcement


def set_guard_enforcement(mode: str) -> None:
    """``"advisory"`` (default) attaches verdicts and never raises;
    ``"strict"`` makes any *failed* detector raise
    :class:`GuardFailureError` from inside the measurement path (the
    CLI's ``--strict-guards``).  Process-wide; prefer the scoped
    :func:`guard_enforcement`."""
    global _enforcement
    if mode not in _ENFORCEMENT_MODES:
        raise ValueError(f"mode must be one of {_ENFORCEMENT_MODES}, got {mode!r}")
    _enforcement = mode


@contextmanager
def guard_enforcement(mode: str) -> Iterator[str]:
    previous = _enforcement
    set_guard_enforcement(mode)
    try:
        yield mode
    finally:
        set_guard_enforcement(previous)


def maybe_enforce(report: GuardReport, context: str = "") -> None:
    """Raise :class:`GuardFailureError` iff strict mode is on and the
    report has failures.  Called by the measurement dispatcher after
    attaching guards; a no-op in advisory mode."""
    if _enforcement != "strict" or report.ok:
        return
    failures = report.failures()
    names = ", ".join(v.detector for v in failures)
    where = f" ({context})" if context else ""
    raise GuardFailureError(
        f"measurement{where} failed validity guard(s) {names}: "
        + "; ".join(v.summary for v in failures),
        verdicts=failures,
    )


# ---------------------------------------------------------------------------
# detector registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GuardContext:
    """Everything a detector may read.  ``capabilities`` is the
    measuring backend's :class:`~repro.measure.api.BenchCapabilities`
    when known (None for results loaded from old caches)."""

    spec: object
    result: object
    capabilities: Optional[object]
    thresholds: GuardThresholds

    def reports(self) -> Sequence[object]:
        return tuple(getattr(self.result, "reports", ()) or ())


@dataclass(frozen=True)
class DetectorInfo:
    name: str
    fn: Callable[[GuardContext], GuardVerdict]
    pitfall: str
    summary: str


_DETECTORS: Dict[str, DetectorInfo] = {}


def register_detector(
    name: str,
    fn: Callable[[GuardContext], GuardVerdict],
    *,
    pitfall: str,
    summary: str,
) -> None:
    """Register a validity detector.  Names are unique; detectors are
    evaluated in sorted-name order so reports are deterministic."""
    if name in _DETECTORS:
        raise ValueError(f"detector {name!r} already registered")
    _DETECTORS[name] = DetectorInfo(name=name, fn=fn, pitfall=pitfall, summary=summary)


def available_detectors() -> List[str]:
    _ensure_builtin_detectors()
    return sorted(_DETECTORS)


def detector_info(name: str) -> DetectorInfo:
    _ensure_builtin_detectors()
    try:
        return _DETECTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown detector {name!r} (have {sorted(_DETECTORS)})"
        ) from None


def _ensure_builtin_detectors() -> None:
    # Import-for-effect: detectors.py registers the built-in set.
    from . import detectors as _detectors  # noqa: F401


def evaluate_run(
    spec: object,
    result: object,
    capabilities: Optional[object] = None,
    thresholds: Optional[GuardThresholds] = None,
) -> GuardReport:
    """Run every registered detector over one run's result.

    Pure and deterministic: the report is a function of
    ``(spec, result, capabilities, thresholds)`` only.  Detector
    exceptions become ``skip`` verdicts — guards never take down a
    measurement they were meant to audit.
    """
    _ensure_builtin_detectors()
    ctx = GuardContext(
        spec=spec,
        result=result,
        capabilities=capabilities,
        thresholds=thresholds or current_thresholds(),
    )
    verdicts: List[GuardVerdict] = []
    for name in sorted(_DETECTORS):
        info = _DETECTORS[name]
        try:
            verdict = info.fn(ctx)
        except Exception as exc:  # noqa: BLE001 — advisory layer
            verdict = GuardVerdict(
                detector=name,
                status=SKIP,
                summary=f"detector error: {type(exc).__name__}: {exc}",
                pitfall=info.pitfall,
            )
        if verdict.detector != name:
            verdict = replace(verdict, detector=name)
        if not verdict.pitfall:
            verdict = replace(verdict, pitfall=info.pitfall)
        verdicts.append(verdict)
    return GuardReport(verdicts=tuple(verdicts))
