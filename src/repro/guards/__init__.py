"""Measurement-validity guards: executable bias detectors on every run.

Treadmill's §II is a catalogue of ways a load test silently lies —
coordinated omission, saturated clients, biased pooled aggregation,
insufficient warm-up, non-stationary interference.  This package turns
that catalogue into code: every measurement (simulated or live) that
goes through :func:`repro.measure.api.measure_spec` is audited by a
registry of seeded, deterministic detectors, and the structured
verdicts ride on ``result.guards`` as a :class:`GuardReport`.

Quick start::

    result = repro.run(spec)
    print(result.guards.format())        # pass/warn/fail per pitfall
    repro.run(spec, strict_guards=True)  # raises GuardFailureError on fail

The detectors are pure functions of ``(spec, result, capabilities,
thresholds)``; on deterministic backends the verdicts are bit-identical
across serial/process/cluster executors because they are computed
inside the measurement itself and travel with the pickled result.  See
``DESIGN.md`` §10 and :mod:`repro.guards.detectors` for the catalogue.
"""

from .api import (
    FAIL,
    GUARDS_SCHEMA,
    LATE_GAP_FACTOR,
    PASS,
    SKIP,
    WARN,
    GuardContext,
    GuardFailureError,
    GuardReport,
    GuardThresholds,
    GuardVerdict,
    available_detectors,
    current_enforcement,
    current_thresholds,
    detector_info,
    evaluate_run,
    guard_enforcement,
    guard_thresholds,
    register_detector,
    set_guard_enforcement,
    set_guard_thresholds,
)

__all__ = [
    "GUARDS_SCHEMA",
    "LATE_GAP_FACTOR",
    "PASS",
    "WARN",
    "FAIL",
    "SKIP",
    "GuardContext",
    "GuardFailureError",
    "GuardReport",
    "GuardThresholds",
    "GuardVerdict",
    "available_detectors",
    "current_enforcement",
    "current_thresholds",
    "detector_info",
    "evaluate_run",
    "guard_enforcement",
    "guard_thresholds",
    "register_detector",
    "set_guard_enforcement",
    "set_guard_thresholds",
]
