"""The built-in validity detectors.

Each detector audits one Treadmill §II methodological pitfall and is
a pure, deterministic function of ``(spec, result, capabilities,
thresholds)`` — see :func:`repro.guards.api.evaluate_run` for the
contract.  Evidence channels they read off the result:

==========================  ================================================
``client_utilizations``     per-instance client CPU utilization (sim: the
                            mechanistic core model; live: process CPU share)
``client_probe``            live driver annotation: event-loop lag and
                            process CPU fraction vs. the offered schedule
``send_lag``                live driver annotation: scheduled-vs-actual
                            send-gap summary (PR-7 send log, always-on)
``reports[i].phase_windows``  guard tape: windowed (count, mean, q50, q95)
                            summaries of the post-warm-up stream
``reports[i].warmup_tail``  the last warm-up latencies (phase boundary)
``live_health``             live driver annotation: reconnects, lost
                            connections, stall-ladder events
==========================  ================================================

A missing channel yields ``skip`` (or a structural ``pass`` when the
backend's capabilities rule the pitfall out by construction), never a
false alarm.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..core.aggregation import sample_share_imbalance
from .api import (
    FAIL,
    LATE_GAP_FACTOR,
    PASS,
    SKIP,
    WARN,
    GuardContext,
    GuardVerdict,
    register_detector,
)

__all__ = [
    "client_saturation",
    "coordinated_omission",
    "warmup_insufficiency",
    "non_stationarity",
    "aggregation_imbalance",
    "degradation",
]


def _grade(value: float, warn: float, fail: float) -> str:
    if value >= fail:
        return FAIL
    if value >= warn:
        return WARN
    return PASS


def _worst(statuses: Sequence[str]) -> str:
    order = {PASS: 0, SKIP: 0, WARN: 1, FAIL: 2}
    worst = PASS
    for s in statuses:
        if order[s] > order[worst]:
            worst = s
    return worst


def _robust_z(value: float, reference: np.ndarray, rel_floor: float) -> float:
    """|value - median(ref)| in units of max(MAD(ref), rel_floor*|median|)."""
    ref = np.asarray(reference, dtype=float)
    center = float(np.median(ref))
    mad = float(np.median(np.abs(ref - center)))
    scale = max(mad, rel_floor * abs(center), 1e-9)
    return abs(float(value) - center) / scale


#: Event-loop lag below OS timer granularity is jitter, not
#: saturation: the loop-lag probe's sleep overshoot is graded against
#: max(mean send gap, this floor) so high-rate clients on coarse
#: timers do not chronically false-alarm.
_LAG_DENOM_FLOOR_S = 5e-3


def _report_windows(report) -> Optional[np.ndarray]:
    windows = getattr(report, "phase_windows", None)
    if windows is None:
        return None
    windows = np.asarray(windows, dtype=float)
    if windows.ndim != 2 or windows.shape[0] == 0 or windows.shape[1] < 4:
        return None
    return windows


# ---------------------------------------------------------------------------
# client saturation
# ---------------------------------------------------------------------------


def client_saturation(ctx: GuardContext) -> GuardVerdict:
    """A loaded client queues its own requests and the queueing shows
    up as fake server tail latency (§II: "lightly-utilized client
    machines").  Reads per-instance client utilization and — on live
    runs — the event-loop lag probe."""
    th = ctx.thresholds
    utils = {
        name: float(u)
        for name, u in (getattr(ctx.result, "client_utilizations", None) or {}).items()
        if u == u  # drop NaN (live runs without a probe)
    }
    probe = getattr(ctx.result, "client_probe", None)
    if not utils and not probe:
        return GuardVerdict(
            detector="client_saturation",
            status=SKIP,
            summary="no client-utilization or scheduler-lag evidence",
        )

    statuses = []
    evidence: Dict[str, object] = {}
    if utils:
        worst_client = max(utils, key=lambda k: (utils[k], k))
        max_util = utils[worst_client]
        statuses.append(
            _grade(max_util, th.client_utilization_warn, th.client_utilization_fail)
        )
        evidence["max_client_utilization"] = max_util
        evidence["max_client"] = worst_client
    lag_gaps = None
    if probe:
        mean_gap = float(probe.get("mean_gap_s", 0.0) or 0.0)
        lag_p99 = float(probe.get("loop_lag_p99_s", 0.0) or 0.0)
        if mean_gap > 0:
            lag_gaps = lag_p99 / max(mean_gap, _LAG_DENOM_FLOOR_S)
            statuses.append(
                _grade(lag_gaps, th.scheduler_lag_warn_gaps, th.scheduler_lag_fail_gaps)
            )
            evidence["loop_lag_p99_gaps"] = lag_gaps
        if "cpu_fraction" in probe:
            cpu = float(probe["cpu_fraction"])
            statuses.append(_grade(cpu, th.client_cpu_warn, th.client_cpu_fail))
            evidence["process_cpu_fraction"] = cpu

    status = _worst(statuses) if statuses else SKIP
    if status == PASS:
        summary = "clients lightly utilized; offered schedule kept"
    elif lag_gaps is not None and lag_gaps >= th.scheduler_lag_warn_gaps:
        summary = (
            f"client scheduler lag p99 is {lag_gaps:.1f}x the mean "
            "inter-arrival gap — the client, not the server, is queueing"
        )
    else:
        summary = (
            f"client utilization up to "
            f"{evidence.get('max_client_utilization', 0.0):.0%} — client-side "
            "queueing can masquerade as server tail latency"
        )
    return GuardVerdict(
        detector="client_saturation",
        status=status,
        summary=summary,
        evidence=evidence,
    )


# ---------------------------------------------------------------------------
# coordinated omission
# ---------------------------------------------------------------------------


def coordinated_omission(ctx: GuardContext) -> GuardVerdict:
    """Closed-loop clients only send when the previous response
    returned, so slow periods are sampled less — the omitted requests
    are exactly the interesting ones (§II).  Audits the
    scheduled-vs-actual send gap distribution."""
    th = ctx.thresholds
    send_lag = getattr(ctx.result, "send_lag", None)
    if send_lag:
        worst_name = None
        worst = None
        for name in sorted(send_lag):
            stats = send_lag[name]
            frac = float(stats.get("late_fraction", 0.0))
            if worst is None or frac > worst["late_fraction"]:
                worst_name = name
                worst = {
                    "late_fraction": frac,
                    "max_lag_gaps": float(stats.get("max_lag_gaps", 0.0)),
                    "p99_lag_gaps": float(stats.get("p99_lag_gaps", 0.0)),
                    "sends": int(stats.get("n", 0)),
                }
        status = _grade(
            worst["late_fraction"], th.late_fraction_warn, th.late_fraction_fail
        )
        if status == PASS:
            summary = (
                "send schedule kept: actual send times track the "
                "open-loop arrival process"
            )
        else:
            summary = (
                f"{worst['late_fraction']:.1%} of sends slipped more than "
                f"{LATE_GAP_FACTOR:g} mean gaps behind schedule — the "
                "offered load coordinated with service slowness"
            )
        evidence = dict(worst)
        evidence["instance"] = worst_name
        evidence["late_gap_factor"] = LATE_GAP_FACTOR
        return GuardVerdict(
            detector="coordinated_omission",
            status=status,
            summary=summary,
            evidence=evidence,
        )

    caps = ctx.capabilities
    if caps is not None and getattr(caps, "deterministic", False) and not getattr(
        caps, "wall_clock", False
    ):
        return GuardVerdict(
            detector="coordinated_omission",
            status=PASS,
            summary=(
                "structurally open-loop: sends are scheduled on the "
                "virtual clock and cannot observe service times"
            ),
            evidence={"structural": "virtual-time schedule"},
        )
    return GuardVerdict(
        detector="coordinated_omission",
        status=SKIP,
        summary="no send-lag evidence (backend did not record the send schedule)",
    )


# ---------------------------------------------------------------------------
# warm-up insufficiency
# ---------------------------------------------------------------------------


def warmup_insufficiency(ctx: GuardContext) -> GuardVerdict:
    """Samples taken before the server reaches steady state (cold
    caches, empty queues, idle-state frequencies) bias the whole
    distribution (§III-A's warm-up phase exists to discard them).
    Tests the first measurement window for drift against the steady
    tail of the run."""
    th = ctx.thresholds
    worst_score = None
    worst_evidence: Dict[str, object] = {}
    usable = 0
    for report in ctx.reports():
        windows = _report_windows(report)
        if windows is None or windows.shape[0] < th.min_windows:
            continue
        usable += 1
        q50s = windows[:, 2]
        steady = q50s[windows.shape[0] // 2:]
        score = _robust_z(q50s[0], steady, th.rel_floor)
        if worst_score is None or score > worst_score:
            worst_score = score
            worst_evidence = {
                "instance": getattr(report, "name", ""),
                "drift_score": score,
                "first_window_q50_us": float(q50s[0]),
                "steady_q50_us": float(np.median(steady)),
                "windows": int(windows.shape[0]),
            }
            tail = np.asarray(getattr(report, "warmup_tail", ()), dtype=float)
            if tail.size:
                worst_evidence["warmup_tail_q50_us"] = float(np.median(tail))
    if usable == 0:
        return GuardVerdict(
            detector="warmup_insufficiency",
            status=SKIP,
            summary=(
                "too few guard-tape windows to test the phase boundary "
                f"(need {th.min_windows})"
            ),
        )
    status = _grade(worst_score, th.warmup_drift_warn, th.warmup_drift_fail)
    if status == PASS:
        summary = "first measurement window matches steady state"
    else:
        summary = (
            f"first measurement window drifts {worst_score:.1f} robust sigmas "
            "from steady state — warm-up ended before the server settled"
        )
    return GuardVerdict(
        detector="warmup_insufficiency",
        status=status,
        summary=summary,
        evidence=worst_evidence,
    )


# ---------------------------------------------------------------------------
# non-stationarity
# ---------------------------------------------------------------------------


def non_stationarity(ctx: GuardContext) -> GuardVerdict:
    """A quantile is only meaningful if the underlying distribution
    held still while it was measured (§II: interference and load drift
    during the run).  Compares early vs. late thirds of the guard-tape
    windows, after dropping the first window (the warm-up boundary
    detector's territory)."""
    th = ctx.thresholds
    worst_score = None
    worst_evidence: Dict[str, object] = {}
    usable = 0
    for report in ctx.reports():
        windows = _report_windows(report)
        if windows is None:
            continue
        body = windows[1:]
        third = body.shape[0] // 3
        if body.shape[0] < th.min_windows or third < 2:
            continue
        usable += 1
        score = 0.0
        per_col = {}
        for col, label in ((2, "q50"), (3, "q95")):
            early = body[:third, col]
            late = body[-third:, col]
            z = _robust_z(float(np.median(late)), early, th.rel_floor)
            per_col[label] = z
            score = max(score, z)
        if worst_score is None or score > worst_score:
            worst_score = score
            worst_evidence = {
                "instance": getattr(report, "name", ""),
                "drift_score": score,
                "q50_drift_score": per_col["q50"],
                "q95_drift_score": per_col["q95"],
                "windows": int(windows.shape[0]),
            }
    if usable == 0:
        return GuardVerdict(
            detector="non_stationarity",
            status=SKIP,
            summary=(
                "too few guard-tape windows for a drift test "
                f"(need {th.min_windows} past the first)"
            ),
        )
    status = _grade(worst_score, th.drift_warn, th.drift_fail)
    if status == PASS:
        summary = "measurement-phase quantiles are stationary"
    else:
        summary = (
            f"windowed quantiles drift {worst_score:.1f} robust sigmas from "
            "early to late in the run — the measured distribution moved"
        )
    return GuardVerdict(
        detector="non_stationarity",
        status=status,
        summary=summary,
        evidence=worst_evidence,
    )


# ---------------------------------------------------------------------------
# aggregation bias
# ---------------------------------------------------------------------------


def aggregation_imbalance(ctx: GuardContext) -> GuardVerdict:
    """The sound rule gives every client's metric equal standing
    (§III-B); pooling weights clients by sample count instead (§II,
    Fig. 2).  When sample shares diverge from the combiner's weights,
    the two answers separate and one weird or over-sampled client can
    own the tail."""
    th = ctx.thresholds
    reports = ctx.reports()
    counts = {
        getattr(r, "name", str(i)): int(getattr(r, "responses_recorded", 0))
        for i, r in enumerate(reports)
    }
    counts = {k: v for k, v in counts.items() if v > 0}
    if len(counts) < 2:
        return GuardVerdict(
            detector="aggregation_imbalance",
            status=PASS if counts else SKIP,
            summary=(
                "single-client run: per-instance and pooled aggregation "
                "coincide"
                if counts
                else "no per-client sample counts recorded"
            ),
        )
    combine = str(getattr(ctx.spec, "combine", "mean") or "mean")

    # Evaluate globally (what result.metrics aggregates over) and per
    # (fleet, pool) group (what group_metrics aggregates over).
    scopes = {"all": counts}
    groups: Dict[str, Dict[str, int]] = {}
    for r in reports:
        name = getattr(r, "name", "")
        if name not in counts:
            continue
        fleet = getattr(r, "fleet", "") or ""
        pool = getattr(r, "pool", "") or ""
        if fleet or pool:
            groups.setdefault(f"({fleet}, {pool})", {})[name] = counts[name]
    for label, members in groups.items():
        if len(members) > 1:
            scopes[label] = members

    worst_scope = None
    worst_tv = -1.0
    for label in sorted(scopes):
        tv = sample_share_imbalance(scopes[label], combine)
        if tv > worst_tv:
            worst_tv = tv
            worst_scope = label
    ratio = max(counts.values()) / min(counts.values())
    status = _grade(worst_tv, th.share_imbalance_warn, th.share_imbalance_fail)
    evidence = {
        "share_imbalance": worst_tv,
        "scope": worst_scope,
        "count_ratio": float(ratio),
        "combine": combine,
        "clients": len(counts),
    }
    if status == PASS:
        summary = "per-client sample counts match the aggregation weights"
    else:
        summary = (
            f"sample shares diverge from {combine!r} combiner weights by "
            f"{worst_tv:.0%} (TV, scope {worst_scope}) — pooled and "
            "per-instance aggregation would disagree"
        )
    return GuardVerdict(
        detector="aggregation_imbalance",
        status=status,
        summary=summary,
        evidence=evidence,
    )


# ---------------------------------------------------------------------------
# live degradation (self-healing driver surface)
# ---------------------------------------------------------------------------


def degradation(ctx: GuardContext) -> GuardVerdict:
    """Partial-result salvage: a live run that survived endpoint
    trouble (reconnects, lost connections, stall warnings) completes
    *degraded* instead of raising — this verdict is where that
    degradation becomes visible to consumers of the result."""
    health = getattr(ctx.result, "live_health", None)
    if health is None:
        caps = ctx.capabilities
        if caps is not None and getattr(caps, "deterministic", False):
            return GuardVerdict(
                detector="degradation",
                status=PASS,
                summary="deterministic backend: no degradation channel to audit",
            )
        return GuardVerdict(
            detector="degradation",
            status=SKIP,
            summary="no health telemetry recorded",
        )
    interesting = (
        "lost_connections",
        "dropped_connections",
        "reconnects",
        "lost_sends",
        "lost_pending",
        "stall_warnings",
        "mid_run_probes",
        # Fleet-level counters (multi-process live runs; absent — and
        # therefore zero — on plain single-process ledgers).
        "lost_clients",
        "respawns",
        "quarantined_clients",
        "heartbeat_misses",
        "dropped_heartbeats",
    )
    evidence = {k: int(health.get(k, 0)) for k in interesting}
    evidence["connections"] = int(health.get("connections", 0))
    if "processes" in health:
        evidence["processes"] = int(health.get("processes", 0))
        evidence["lost_partial_samples"] = int(
            health.get("lost_partial_samples", 0)
        )
    degraded = any(evidence[k] for k in interesting)
    if not degraded:
        return GuardVerdict(
            detector="degradation",
            status=PASS,
            summary="no connection loss, reconnects, stalls, or client loss",
            evidence=evidence,
        )
    parts = [f"{evidence[k]} {k.replace('_', ' ')}" for k in interesting if evidence[k]]
    return GuardVerdict(
        detector="degradation",
        status=WARN,
        summary="degraded live run salvaged: " + ", ".join(parts),
        evidence=evidence,
    )


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------

register_detector(
    "client_saturation",
    client_saturation,
    pitfall="§II client saturation (clients must stay lightly utilized)",
    summary="client CPU utilization and event-loop lag vs. the offered load",
)
register_detector(
    "coordinated_omission",
    coordinated_omission,
    pitfall="§II closed-loop coordinated omission",
    summary="scheduled-vs-actual send gap distribution (open-loop schedule kept?)",
)
register_detector(
    "warmup_insufficiency",
    warmup_insufficiency,
    pitfall="§III-A warm-up phase (cold-start samples must be discarded)",
    summary="phase-boundary drift: first measurement window vs. steady state",
)
register_detector(
    "non_stationarity",
    non_stationarity,
    pitfall="§II non-stationary load/interference during measurement",
    summary="windowed quantile drift across the measurement phase",
)
register_detector(
    "aggregation_imbalance",
    aggregation_imbalance,
    pitfall="§II / Fig. 2 biased aggregation (pooled distributions)",
    summary="per-client sample-count shares vs. aggregation-weight parity",
)
register_detector(
    "degradation",
    degradation,
    pitfall="partial-result salvage on live endpoints",
    summary="reconnects, lost connections, and stall events survived by the run",
)
