"""Seeded fixtures that make each validity detector fire.

A detector you cannot trigger on demand is a detector you cannot
trust.  Every built-in detector has a fixture here — a small, seeded
spec engineered to violate exactly its pitfall — plus a ``clean``
fixture on which all detectors stay quiet.  The test matrix
(``tests/test_guards.py``) and the CLI self-test (``repro guards
run``) both run this catalogue; CI's guards-smoke lane sweeps it.

Fixtures are ordinary specs wherever the violation is reachable
through the simulator (saturation, warm-up, non-stationarity,
aggregation imbalance).  Coordinated omission and live degradation
cannot happen in the virtual-time simulator *by construction* — which
is the point of the structural pass — so their fixtures run on the
``guardfix`` measurement backend registered below: a thin wrapper
that delegates the actual measurement to the simulator and then
attaches the deterministic evidence annotations a misbehaving live
driver would have produced (``send_lag`` / ``live_health``).  The
wrapper reports ``deterministic=False`` so its synthetic results never
enter the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

__all__ = [
    "GuardFixture",
    "available_fixtures",
    "fixture",
    "build_fixture_spec",
    "run_fixture",
    "GuardFixOptions",
]


@dataclass(frozen=True)
class GuardFixture:
    """One self-test case: a spec builder plus the expected finding."""

    name: str
    #: The detector this fixture is engineered to trip.
    detector: str
    #: Worst status the detector must reach on this fixture
    #: (``"warn"`` accepts fail too; ``"pass"`` is the clean fixture).
    expect_at_least: str
    description: str
    build: Callable[[], object] = field(repr=False, compare=False, default=None)
    #: Non-empty for guardfix-backend fixtures: the GuardFixOptions
    #: mode ``run_fixture`` scopes in while measuring.
    backend_mode: str = ""


_FIXTURES: Dict[str, GuardFixture] = {}


def _register(fx: GuardFixture) -> None:
    _FIXTURES[fx.name] = fx


def available_fixtures() -> List[str]:
    return sorted(_FIXTURES)


def fixture(name: str) -> GuardFixture:
    try:
        return _FIXTURES[name]
    except KeyError:
        raise ValueError(
            f"unknown guard fixture {name!r} (have {sorted(_FIXTURES)})"
        ) from None


def build_fixture_spec(name: str) -> object:
    """The RunSpec for fixture ``name`` (fresh object every call)."""
    return fixture(name).build()


def run_fixture(name: str) -> Tuple[GuardFixture, object]:
    """Measure fixture ``name``; returns ``(fixture, RunResult)``.

    The result carries ``.guards`` like any other measurement — the
    caller asserts (or displays) that ``fixture.detector`` fired.
    """
    from ..measure.api import backend_defaults, measure_spec

    fx = fixture(name)
    spec = fx.build()
    if fx.backend_mode:
        with backend_defaults("guardfix", mode=fx.backend_mode):
            return fx, measure_spec(spec)
    return fx, measure_spec(spec)


# ----------------------------------------------------------------------
# the guardfix backend: sim measurement + synthetic live evidence
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GuardFixOptions:
    """Which misbehavior annotation to attach (``backend_defaults``
    reachable, like every backend option)."""

    #: ``"late_sends"`` attaches a send-lag summary with a late
    #: fraction past the fail threshold; ``"degraded"`` attaches
    #: live-health telemetry of a salvaged run; ``"clean"`` attaches
    #: nothing (the wrapper then behaves like the sim backend minus
    #: determinism).
    mode: str = "clean"

    def __post_init__(self) -> None:
        if self.mode not in ("clean", "late_sends", "degraded"):
            raise ValueError(
                "mode must be 'clean', 'late_sends', or 'degraded'"
            )


class _GuardFixRun:
    def __init__(self, spec, options: GuardFixOptions):
        self.spec = spec
        self.options = options

    def drive(self):
        from ..measure.api import make_measurement_backend

        inner = self.spec.replace(backend="sim")
        result = make_measurement_backend("sim").prepare(inner).drive()
        mode = self.options.mode
        if mode == "late_sends":
            # What a closed-loop (or overwhelmed) client looks like:
            # every slow service period pushed sends behind schedule.
            result.send_lag = {
                r.name: {
                    "n": int(r.requests_sent or r.responses_recorded),
                    "mean_gap_s": 1e-4,
                    "late_fraction": 0.12,
                    "max_lag_gaps": 41.0,
                    "p99_lag_gaps": 22.0,
                    "mean_lag_s": 2.4e-4,
                    "p99_lag_s": 2.2e-3,
                    "max_lag_s": 4.1e-3,
                }
                for r in result.reports
            }
        elif mode == "degraded":
            # What a salvaged live run looks like: drops absorbed by
            # reconnects, one connection permanently written off.
            result.live_health = {
                "connections": 8,
                "dropped_connections": 3,
                "reconnects": 2,
                "lost_connections": 1,
                "lost_sends": 4,
                "lost_pending": 6,
                "stall_warnings": 1,
                "mid_run_probes": 1,
                "degraded": True,
                "events": (
                    "connection-drop: client0/conn1",
                    "reconnect: client0/conn1",
                    "stall-warn: idle 1.02s",
                    "connection-lost: client1/conn0",
                ),
            }
        return result


class _GuardFixBackend:
    def __init__(self, options: GuardFixOptions):
        self.options = options

    def prepare(self, spec) -> _GuardFixRun:
        if getattr(spec, "scenario", None) is not None:
            raise ValueError("the guardfix backend runs plain RunSpecs only")
        return _GuardFixRun(spec, self.options)

    def capabilities(self):
        from ..measure.api import BenchCapabilities

        return BenchCapabilities(
            backend="guardfix",
            # The measurement itself is seeded sim, but the synthetic
            # annotation depends on backend *options* which are not in
            # the spec digest — so the cache must never store these.
            deterministic=False,
            wall_clock=True,
            fault_hookable=False,
            scenarios=False,
            utilization_targeting=True,
            guard_evidence=True,
        )

    def close(self) -> None:
        return None


def _register_backend() -> None:
    from ..measure.api import register_measurement_backend

    register_measurement_backend(
        "guardfix",
        lambda options: _GuardFixBackend(options),
        GuardFixOptions,
        summary="sim measurement plus synthetic live-misbehavior evidence "
        "(guard self-tests only; never cached)",
    )


_register_backend()


# ----------------------------------------------------------------------
# fixture specs
# ----------------------------------------------------------------------
def _clean_spec():
    from ..exec.spec import RunSpec
    from ..workloads import MemcachedWorkload

    return RunSpec(
        workload=MemcachedWorkload(),
        total_rate_rps=20_000,
        num_instances=4,
        warmup_samples=300,
        measurement_samples_per_instance=3_000,
        seed=11,
        tag="guardfix:clean",
    )


def _saturation_spec():
    from ..exec.spec import RunSpec
    from ..workloads import MemcachedWorkload

    # One client instance asked to source the whole offered load: its
    # tx/rx CPU cost puts it well past the 50% utilization fail line
    # while the 8-core server stays comfortable (~45%).
    return RunSpec(
        workload=MemcachedWorkload(),
        total_rate_rps=450_000,
        num_instances=1,
        warmup_samples=200,
        measurement_samples_per_instance=3_000,
        seed=11,
        tag="guardfix:client_saturation",
    )


def _warmup_spec():
    from ..exec.spec import RunSpec
    from ..workloads import MemcachedWorkload

    # No warm-up at high load: the first measurement window sees the
    # cold server (idle-state frequency, empty pipeline) settle.
    return RunSpec(
        workload=MemcachedWorkload(),
        target_utilization=0.85,
        num_instances=2,
        warmup_samples=0,
        measurement_samples_per_instance=4_000,
        seed=11,
        tag="guardfix:warmup",
    )


def _nonstationary_spec():
    from ..scenarios.compiler import compile_scenario
    from ..scenarios.schema import ClientFleetSpec, ScenarioSpec, ServerPoolSpec

    # A diurnal ramp phase-aligned to start at the trough: the offered
    # load (and with it the latency distribution) climbs monotonically
    # through the measurement window.
    scn = ScenarioSpec(
        name="guardfix-nonstationary",
        pools=(ServerPoolSpec(name="pool", workload={"workload": "memcached"}),),
        fleets=(
            ClientFleetSpec(
                name="ramp",
                target="pool",
                instances=8,
                rate_rps=520_000,
                arrival={
                    "type": "diurnal",
                    "amplitude": 0.8,
                    "period_us": 200_000.0,
                    "phase": -1.5707963,
                },
                warmup_samples=200,
                measurement_samples_per_instance=3_000,
            ),
        ),
        seed=11,
        description="guard fixture: load ramp during measurement",
    )
    return compile_scenario(scn)[0]


def _aggregation_spec():
    from ..scenarios.compiler import compile_scenario
    from ..scenarios.schema import ClientFleetSpec, ScenarioSpec, ServerPoolSpec

    # Two fleets on one pool offering a 9:1 rate split: every client
    # records until the whole bench finishes, so sample counts land
    # proportional to rates — the fast client contributes 90% of a
    # pooled distribution while the combiner weights both equally
    # (TV distance 0.4 > the 0.35 fail line).  Budgets are matched to
    # the rates so both fleets finish around the same virtual time.
    scn = ScenarioSpec(
        name="guardfix-aggregation",
        pools=(ServerPoolSpec(name="pool", workload={"workload": "memcached"}),),
        fleets=(
            ClientFleetSpec(
                name="whale",
                target="pool",
                instances=1,
                rate_rps=90_000,
                measurement_samples_per_instance=9_000,
                warmup_samples=200,
            ),
            ClientFleetSpec(
                name="minnow",
                target="pool",
                instances=1,
                rate_rps=10_000,
                measurement_samples_per_instance=1_000,
                warmup_samples=200,
            ),
        ),
        seed=11,
        description="guard fixture: 9:1 per-client sample-share imbalance",
    )
    return compile_scenario(scn)[0]


def _late_sends_spec():
    spec = _clean_spec()
    return spec.replace(backend="guardfix", tag="guardfix:coordinated_omission")


def _degraded_spec():
    spec = _clean_spec()
    return spec.replace(backend="guardfix", tag="guardfix:degradation")


_register(
    GuardFixture(
        name="clean",
        detector="",
        expect_at_least="pass",
        description="well-configured 4-instance run; every detector quiet",
        build=_clean_spec,
    )
)
_register(
    GuardFixture(
        name="client_saturation",
        detector="client_saturation",
        expect_at_least="fail",
        description="one client instance sourcing 450 krps (util > 50%)",
        build=_saturation_spec,
    )
)
_register(
    GuardFixture(
        name="coordinated_omission",
        detector="coordinated_omission",
        expect_at_least="fail",
        description="synthetic send log with 12% of sends > 4 gaps late",
        build=_late_sends_spec,
        backend_mode="late_sends",
    )
)
_register(
    GuardFixture(
        name="warmup_insufficiency",
        detector="warmup_insufficiency",
        expect_at_least="warn",
        description="zero warm-up at 85% utilization (cold-start drift)",
        build=_warmup_spec,
    )
)
_register(
    GuardFixture(
        name="non_stationarity",
        detector="non_stationarity",
        expect_at_least="warn",
        description="diurnal load ramp through the measurement window",
        build=_nonstationary_spec,
    )
)
_register(
    GuardFixture(
        name="aggregation_imbalance",
        detector="aggregation_imbalance",
        expect_at_least="fail",
        description="two fleets with a 9:1 sample-count imbalance",
        build=_aggregation_spec,
    )
)
_register(
    GuardFixture(
        name="degradation",
        detector="degradation",
        expect_at_least="warn",
        description="synthetic live-health telemetry of a salvaged run",
        build=_degraded_spec,
        backend_mode="degraded",
    )
)
