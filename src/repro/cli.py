"""Command-line entry point: regenerate paper artifacts.

Usage::

    repro list                     # artifact ids and titles
    repro run fig7 --scale default # regenerate one artifact
    repro run tab4 --jobs 4        # factorial sweep on 4 cores
    repro run fig12 --cache-dir ~/.cache/repro   # reuse shared runs
    repro all --scale quick        # regenerate everything
    repro hardware                 # show the simulated Table II spec
    repro backends                 # execution + measurement backends
    repro live ping tcp://h:7799   # smoke-check a live endpoint
    repro live serve --port 7799   # deterministic reference server
    repro live measure tcp://h:7799 --rate 2000   # one live measurement
    repro guards list              # the validity-detector catalogue
    repro guards run               # self-test every detector fixture

Exit codes: 0 success / converged; 1 generic failure (invalid input,
self-test miss, identity-gate violation); 3 clean live-measurement
error (endpoint dead, wedged, or refusing connections — never a
hang); 4 validity-guard failure under ``--strict-guards``.

Validity guards: every measurement is audited by the detectors in
``repro.guards`` and carries the verdicts on ``result.guards``.
``--strict-guards`` (on ``run``, ``all``, ``scenario run``, ``live
measure``, and ``guards run``) escalates a *failed* audit to exit
code 4; warnings always stay advisory.

Scales: ``quick`` (seconds, smoke), ``default`` (tens of seconds, what
the benchmark suite uses), ``paper`` (the paper's replication counts;
expect a long run).

Execution flags (both ``run`` and ``all``):

* ``--executor NAME`` — pick a registered execution backend:
  ``serial`` (default), ``process`` (local pool), ``cluster``
  (socket-based work-stealing cluster with local workers), or any
  third-party registration.  All backends are byte-identical for
  equal seeds; see ``repro backends``.
* ``--workers N`` — size the chosen backend (pool processes or
  cluster workers).
* ``--jobs N`` — legacy spelling of ``--executor process --workers N``
  (``--jobs 1`` is the serial path).
* ``--cache-dir PATH`` — content-addressed result cache; identical
  experiment specs are simulated once per machine, ever.
* ``--no-cache`` — ignore any configured cache directory.

Resilience flags (honored by backends that support them):

* ``--retries N`` — per-spec retry budget for transient failures
  (process-pool crash retries; cluster lost-work + transient-error
  attempts with exponential backoff and jitter).
* ``--min-healthy-workers N`` — cluster graceful-degradation floor:
  when fewer healthy (connected, non-quarantined) workers remain for
  long enough, the run falls back to the local process pool instead
  of stalling.
* ``--fault-plan JSON|PATH`` — chaos testing only: a serialized
  ``repro.faults.FaultPlan`` injected at the executor's deterministic
  hook points.  Also see ``repro chaos`` for the seeded invariant
  checker.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import List, Optional

from .exec.api import available_backends, backend_info
from .exec.executors import execution
from .experiments.common import SCALES
from .experiments.runner import EXPERIMENTS, experiment_ids, run_experiment
from .sim.machine import HardwareSpec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Treadmill: Attributing the Source of Tail "
            "Latency through Precise Load Testing and Statistical "
            "Inference' (ISCA 2016)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the paper artifacts this tool regenerates")

    def add_exec_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--executor",
            default=None,
            metavar="NAME",
            help=(
                "execution backend: serial, process, cluster, or any "
                "registered third-party backend (see `repro backends`)"
            ),
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="worker count for the chosen backend (pool processes / cluster workers)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="legacy: worker processes for independent experiments (default: 1, serial)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="PATH",
            help="content-addressed result cache directory (default: no cache)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the result cache even if --cache-dir is given",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=None,
            metavar="N",
            help=(
                "per-spec retry budget for transient failures (crashed "
                "workers, expired leases, transport errors); backends "
                "without retry support ignore it"
            ),
        )
        p.add_argument(
            "--min-healthy-workers",
            type=int,
            default=None,
            metavar="N",
            help=(
                "cluster backend: degrade to the local process pool when "
                "fewer healthy workers remain (default: never degrade)"
            ),
        )
        p.add_argument(
            "--fault-plan",
            default=None,
            metavar="JSON|PATH",
            help=(
                "chaos testing: serialized repro.faults.FaultPlan (JSON "
                "text or a file path) injected at the executor hook points"
            ),
        )

    def add_guard_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--strict-guards",
            action="store_true",
            help=(
                "escalate a failed validity audit to exit code 4 "
                "(guards are advisory otherwise)"
            ),
        )

    run_p = sub.add_parser("run", help="regenerate one artifact")
    run_p.add_argument("artifact", choices=experiment_ids())
    run_p.add_argument(
        "--scale", choices=sorted(SCALES), default="default", help="experiment size"
    )
    run_p.add_argument(
        "--out", default=None, help="also write the rendered report to this file"
    )
    add_exec_flags(run_p)
    add_guard_flags(run_p)

    all_p = sub.add_parser("all", help="regenerate every artifact in order")
    all_p.add_argument(
        "--scale", choices=sorted(SCALES), default="default", help="experiment size"
    )
    add_exec_flags(all_p)
    add_guard_flags(all_p)

    sub.add_parser("hardware", help="print the simulated hardware spec (Table II)")
    sub.add_parser(
        "backends",
        help="list the registered execution and measurement backends",
    )

    live_p = sub.add_parser(
        "live",
        help="live-endpoint measurement (ping / serve / measure)",
    )
    live_sub = live_p.add_subparsers(dest="live_command", required=True)
    ping_p = live_sub.add_parser(
        "ping", help="round-trip connectivity check of a live endpoint"
    )
    ping_p.add_argument(
        "target", metavar="URL", help="tcp://host:port or http://host:port"
    )
    ping_p.add_argument(
        "--timeout", type=float, default=5.0, metavar="S", help="seconds to wait"
    )
    serve_p = live_sub.add_parser(
        "serve", help="run the deterministic local reference server"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=7799)
    serve_p.add_argument(
        "--service",
        default='{"type": "constant", "value": 200.0}',
        metavar="JSON",
        help="service-time distribution spec (microseconds)",
    )
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument(
        "--mode", choices=("parallel", "serial"), default="parallel"
    )
    serve_p.add_argument(
        "--drop-after",
        type=int,
        default=0,
        metavar="N",
        help="misbehave: drop each connection after N requests (0 = off)",
    )
    serve_p.add_argument(
        "--accept-delay-s",
        type=float,
        default=0.0,
        metavar="S",
        help="misbehave: serve each new connection only after S seconds",
    )
    serve_p.add_argument(
        "--drift-us-per-request",
        type=float,
        default=0.0,
        metavar="US",
        help="misbehave: ramp service time by US microseconds per request",
    )
    meas_p = live_sub.add_parser(
        "measure",
        help=(
            "one open-loop measurement against a live endpoint "
            "(exit 0 on success, 3 on a clean measurement error, "
            "4 on guard failure under --strict-guards)"
        ),
    )
    meas_p.add_argument(
        "target", metavar="URL", help="tcp://host:port or http://host:port"
    )
    meas_p.add_argument(
        "--rate", type=float, default=2000.0, metavar="RPS", help="offered load"
    )
    meas_p.add_argument("--instances", type=int, default=1, metavar="N")
    meas_p.add_argument("--connections", type=int, default=4, metavar="N")
    meas_p.add_argument("--warmup", type=int, default=50, metavar="N")
    meas_p.add_argument(
        "--samples", type=int, default=500, metavar="N",
        help="measurement samples per instance",
    )
    meas_p.add_argument("--seed", type=int, default=0)
    meas_p.add_argument(
        "--progress-timeout", type=float, default=10.0, metavar="S",
        help="stall ladder rung 3: abort cleanly after this long without progress",
    )
    meas_p.add_argument(
        "--stall-warn", type=float, default=1.0, metavar="S",
        help="stall ladder rung 1: record a stall warning after this long",
    )
    meas_p.add_argument(
        "--stall-probe", type=float, default=5.0, metavar="S",
        help="stall ladder rung 2: actively re-probe the endpoint after this long",
    )
    meas_p.add_argument(
        "--max-lost-fraction", type=float, default=0.25, metavar="F",
        help=(
            "salvage bound: complete degraded while at most this fraction "
            "of connections is permanently lost"
        ),
    )
    meas_p.add_argument(
        "--processes", type=int, default=1, metavar="N",
        help=(
            "shard the load across a supervised fleet of N client OS "
            "processes (crash-safe: heartbeats, seeded respawns, a "
            "fleet salvage bound)"
        ),
    )
    meas_p.add_argument(
        "--respawns", type=int, default=2, metavar="N",
        help="fleet: respawn budget per crashed client process",
    )
    meas_p.add_argument(
        "--max-lost-clients", type=float, default=0.34, metavar="F",
        help=(
            "fleet salvage bound: complete degraded while at most this "
            "fraction of client processes is permanently lost"
        ),
    )
    meas_p.add_argument(
        "--heartbeat-interval", type=float, default=0.25, metavar="S",
        help="fleet: client heartbeat cadence",
    )
    meas_p.add_argument(
        "--heartbeat-timeout", type=float, default=2.0, metavar="S",
        help="fleet: silence past this declares a client process dead",
    )
    meas_p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable report (metrics, guards, health) on stdout",
    )
    add_guard_flags(meas_p)

    scen_p = sub.add_parser(
        "scenario",
        help="declarative N-fleet x M-pool scenarios (list / validate / run)",
    )
    scen_sub = scen_p.add_subparsers(dest="scenario_command", required=True)
    scen_sub.add_parser("list", help="list the library scenarios")
    val_p = scen_sub.add_parser(
        "validate",
        help="load, validate, and compile scenarios without running them",
    )
    val_p.add_argument(
        "scenario",
        nargs="*",
        metavar="NAME|PATH",
        help="library scenario names or JSON file paths (default: whole library)",
    )
    scen_run_p = scen_sub.add_parser(
        "run", help="compile a scenario and execute every RunSpec"
    )
    scen_run_p.add_argument(
        "scenario", metavar="NAME|PATH", help="library scenario name or JSON file path"
    )
    scen_run_p.add_argument(
        "--verify-identical",
        action="store_true",
        help=(
            "run each compiled spec through both the serial and the "
            "process executor and gate on outputs_identical"
        ),
    )
    scen_run_p.add_argument(
        "--backend",
        default="sim",
        metavar="NAME",
        help=(
            "measurement backend for the compiled specs (default sim; "
            "'live' routes the fleets to real endpoints — set "
            "--pool-target per pool)"
        ),
    )
    scen_run_p.add_argument(
        "--pool-target",
        action="append",
        default=[],
        metavar="POOL=URL",
        help=(
            "live backend: endpoint for one scenario pool "
            "(repeatable, e.g. --pool-target web=tcp://127.0.0.1:7799)"
        ),
    )
    scen_run_p.add_argument(
        "--processes", type=int, default=1, metavar="N",
        help="live backend: client processes per measurement (fleet mode)",
    )
    scen_run_p.add_argument(
        "--partitions",
        type=int,
        default=None,
        metavar="N",
        help=(
            "sim backend: shard each measurement across N sub-kernels "
            "(bit-identical to serial by construction; overrides the "
            "compiler's rack-topology default, 0 forces serial)"
        ),
    )
    scen_run_p.add_argument(
        "--partition-mode",
        choices=("inproc", "process"),
        default=None,
        metavar="MODE",
        help=(
            "how partitioned measurements execute: inproc sub-kernels "
            "(default) or one worker process per shard"
        ),
    )
    add_exec_flags(scen_run_p)
    add_guard_flags(scen_run_p)

    guards_p = sub.add_parser(
        "guards",
        help="measurement-validity guards (list the detectors / self-test)",
    )
    guards_sub = guards_p.add_subparsers(dest="guards_command", required=True)
    guards_sub.add_parser(
        "list", help="the detector catalogue and the pitfall each audits"
    )
    gr_p = guards_sub.add_parser(
        "run",
        help=(
            "run detector fixtures and check each fires (exit 1 on a "
            "self-test miss, 4 if --strict-guards and an audit fails)"
        ),
    )
    gr_p.add_argument(
        "fixtures",
        nargs="*",
        metavar="FIXTURE",
        help="fixture names (default: the whole catalogue; see `guards list`)",
    )
    gr_p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable verdicts on stdout",
    )
    gr_p.add_argument(
        "--verbose",
        action="store_true",
        help="print each fired detector's one-line finding",
    )
    add_guard_flags(gr_p)

    chaos_p = sub.add_parser(
        "chaos",
        help=(
            "run one seeded fault-injection experiment and check the "
            "executor invariant (bit-identical to serial, or a clean "
            "attributed failure)"
        ),
    )
    chaos_p.add_argument(
        "--seed", type=int, default=0, metavar="N", help="fault-plan seed"
    )
    chaos_p.add_argument(
        "--workers", type=int, default=2, metavar="N", help="cluster workers"
    )
    chaos_p.add_argument(
        "--specs", type=int, default=10, metavar="N", help="specs in the batch"
    )
    chaos_p.add_argument(
        "--lease-s", type=float, default=1.0, metavar="S", help="task lease seconds"
    )
    chaos_p.add_argument(
        "--restart",
        action="store_true",
        help="also inject a coordinator restart (journal-recovery path)",
    )
    chaos_p.add_argument(
        "--live",
        action="store_true",
        help=(
            "chaos the live fleet instead of the cluster executor: "
            "refserver + multi-process fleet under the live fault kinds "
            "(client crash/hang, heartbeat drop, endpoint reset); the "
            "invariant is degraded-converged or clean error, never a hang"
        ),
    )
    chaos_p.add_argument(
        "--processes", type=int, default=3, metavar="N",
        help="--live: client processes in the fleet",
    )
    chaos_p.add_argument(
        "--partition",
        action="store_true",
        help=(
            "chaos the partitioned simulation instead: drop/duplicate "
            "window-boundary frames between the coordinator and its "
            "shard workers (partition_desync); the invariant is "
            "bit-identical to serial or a clean SimulationError, "
            "never a hang"
        ),
    )
    chaos_p.add_argument(
        "--partitions", type=int, default=2, metavar="N",
        help="--partition: shard worker processes (default: 2)",
    )
    return parser


def _cmd_list() -> int:
    width = max(len(i) for i in experiment_ids())
    for exp_id in experiment_ids():
        print(f"{exp_id.ljust(width)}  {EXPERIMENTS[exp_id].title}")
    return 0


def _cmd_run(artifact: str, scale: str, out: Optional[str] = None) -> int:
    start = time.time()
    report = run_experiment(artifact, scale=scale)
    print(report)
    if out:
        with open(out, "w") as f:
            f.write(report + "\n")
        print(f"[report written to {out}]")
    print(f"\n[{artifact} regenerated at scale={scale} in {time.time() - start:.1f}s]")
    return 0


def _cmd_all(scale: str) -> int:
    for exp_id in experiment_ids():
        print(f"=== {exp_id}: {EXPERIMENTS[exp_id].title} ===")
        _cmd_run(exp_id, scale)
        print()
    return 0


def _effective_cache_dir(args: argparse.Namespace) -> Optional[str]:
    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache_dir", None)


def _cmd_hardware() -> int:
    for key, value in HardwareSpec().describe().items():
        print(f"{key:>10}: {value}")
    return 0


def _cmd_backends() -> int:
    from .measure.api import available_measurement_backends, measurement_backend_info

    exec_names = available_backends()
    meas_names = available_measurement_backends()
    width = max(len(n) for n in (*exec_names, *meas_names))

    print("execution backends (how runs are scheduled):")
    for name in exec_names:
        info = backend_info(name)
        options = ", ".join(f.name for f in dataclasses.fields(info.options))
        print(f"  {name.ljust(width)}  {info.summary}")
        if options:
            print(f"  {' ' * width}  options: {options}")

    print()
    print("measurement backends (what each run measures):")
    for name in meas_names:
        info = measurement_backend_info(name)
        caps = info.factory(info.options()).capabilities()
        flags = ", ".join(
            f.name
            for f in dataclasses.fields(caps)
            if f.name != "backend" and getattr(caps, f.name)
        )
        options = ", ".join(f.name for f in dataclasses.fields(info.options))
        print(f"  {name.ljust(width)}  {info.summary}")
        print(f"  {' ' * width}  capabilities: {flags or '(none)'}")
        if options:
            print(f"  {' ' * width}  options: {options}")
    return 0


def _cmd_live_ping(target: str, timeout_s: float) -> int:
    from .live import LiveMeasurementError, ping

    try:
        rtt_s = ping(target, timeout_s=timeout_s)
    except (LiveMeasurementError, ValueError, OSError) as exc:
        # OSError covers the raw socket family (ConnectionRefusedError,
        # unreachable host, DNS failure) — one line and exit 3, never a
        # traceback.
        print(f"ping {target}: FAILED — {exc}", file=sys.stderr)
        return 3
    print(f"ping {target}: {rtt_s * 1e3:.3f} ms")
    return 0


def _cmd_live_measure(args: argparse.Namespace) -> int:
    import json as _json

    from .exec.spec import RunSpec
    from .live import LiveMeasurementError
    from .measure import backend_defaults, measure_spec
    from .workloads import MemcachedWorkload

    spec = RunSpec(
        workload=MemcachedWorkload(),
        total_rate_rps=args.rate,
        num_instances=args.instances,
        connections_per_instance=args.connections,
        warmup_samples=args.warmup,
        measurement_samples_per_instance=args.samples,
        seed=args.seed,
        backend="live",
        tag=f"live:{args.target}",
    )
    start = time.time()
    try:
        with backend_defaults(
            "live",
            target=args.target,
            progress_timeout_s=args.progress_timeout,
            stall_warn_s=args.stall_warn,
            stall_probe_s=args.stall_probe,
            max_lost_connection_fraction=args.max_lost_fraction,
            processes=args.processes,
            respawn_attempts=args.respawns,
            max_lost_client_fraction=args.max_lost_clients,
            heartbeat_interval_s=args.heartbeat_interval,
            heartbeat_timeout_s=args.heartbeat_timeout,
        ):
            result = measure_spec(spec)
    except (LiveMeasurementError, ValueError, OSError) as exc:
        # The CI smoke contract: a clean attributed failure, never a
        # hang — distinguishable from success by exit code 3.
        if args.json:
            print(_json.dumps({"target": args.target, "error": str(exc)}, indent=1))
        print(f"live measure {args.target}: FAILED — {exc}", file=sys.stderr)
        return 3
    guards = getattr(result, "guards", None)
    sent = sum(r.requests_sent for r in result.reports)
    if args.json:
        payload = {
            "target": args.target,
            "metrics_us": {f"p{q * 100:g}": v for q, v in sorted(result.metrics.items())},
            "requests_sent": int(sent),
            "instances": len(result.reports),
            "wall_s": time.time() - start,
            "guards": guards.to_jsonable() if guards is not None else None,
            "live_health": getattr(result, "live_health", None),
            "send_lag": getattr(result, "send_lag", None),
            "client_probe": getattr(result, "client_probe", None),
        }
        print(_json.dumps(payload, indent=1, default=str))
    else:
        metrics = ", ".join(
            f"p{q * 100:g}={v:.1f}us" for q, v in sorted(result.metrics.items())
        )
        print(f"live measure {args.target}: {metrics}")
        print(
            f"[{sent} requests over {len(result.reports)} instance(s) "
            f"in {time.time() - start:.1f}s]"
        )
        if guards is not None:
            print(guards.format())
    if args.strict_guards and guards is not None and not guards.ok:
        print(
            "live measure: validity guards FAILED (strict mode)", file=sys.stderr
        )
        return 4
    return 0


def _cmd_live_serve(args: argparse.Namespace) -> int:
    from .live import refserver

    return refserver.main(
        [
            "--host", args.host,
            "--port", str(args.port),
            "--service", args.service,
            "--seed", str(args.seed),
            "--mode", args.mode,
            "--drop-after", str(args.drop_after),
            "--accept-delay-s", str(args.accept_delay_s),
            "--drift-us-per-request", str(args.drift_us_per_request),
        ]
    )


def _resolve_scenario(ref: str):
    """A scenario by library name or JSON file path."""
    import os

    from .scenarios import load_scenario, scenario_from_json

    if os.path.exists(ref) or ref.endswith(".json"):
        return scenario_from_json(ref)
    return load_scenario(ref)


def _cmd_scenario_list() -> int:
    from .scenarios import list_scenarios, load_scenario

    names = list_scenarios()
    width = max(len(n) for n in names)
    for name in names:
        spec = load_scenario(name)
        shape = f"{len(spec.fleets)}x{len(spec.pools)}"
        print(f"{name.ljust(width)}  [{shape}]  {spec.description}")
    return 0


def _cmd_scenario_validate(refs: List[str]) -> int:
    from .scenarios import compile_scenario, list_scenarios

    refs = list(refs) or list_scenarios()
    failures = 0
    for ref in refs:
        try:
            spec = _resolve_scenario(ref)
            specs = compile_scenario(spec)
        except (ValueError, KeyError, FileNotFoundError) as exc:
            print(f"{ref}: INVALID — {exc}")
            failures += 1
            continue
        print(
            f"{ref}: ok ({len(specs)} run spec(s), "
            f"first digest {specs[0].digest()[:12]})"
        )
    return 1 if failures else 0


def _result_fingerprint(result) -> str:
    """Content hash of everything a run reports (identity checks)."""
    import hashlib

    import numpy as np

    h = hashlib.sha256()
    h.update(repr(sorted(result.metrics.items())).encode())
    h.update(
        repr(
            sorted((g, sorted(m.items())) for g, m in result.group_metrics.items())
        ).encode()
    )
    for report in result.reports:
        h.update(np.ascontiguousarray(report.raw_samples, dtype=float).tobytes())
        h.update(
            np.ascontiguousarray(report.ground_truth_samples, dtype=float).tobytes()
        )
    return h.hexdigest()


def _cmd_scenario_run(scenario, args: argparse.Namespace) -> int:
    from .exec.api import make_executor
    from .exec.executors import execute_specs
    from .scenarios import compile_scenario

    specs = compile_scenario(scenario)
    if getattr(args, "partitions", None) is not None:
        # Digest-neutral execution override: 0 forces the serial
        # kernel, N shards each measurement across N sub-kernels.
        n = args.partitions if args.partitions > 0 else None
        specs = [s.replace(partitions=n) for s in specs]
    if getattr(args, "partition_mode", None):
        from .measure import set_backend_defaults

        set_backend_defaults("sim", partition_mode=args.partition_mode)
    print(
        f"[scenario {scenario.name}] {len(scenario.fleets)} fleet(s) x "
        f"{len(scenario.pools)} pool(s) -> {len(specs)} run spec(s)"
    )
    start = time.time()
    if args.backend != "sim":
        if args.verify_identical:
            print(
                "scenario run: --verify-identical needs a deterministic "
                "backend; drop it or use --backend sim",
                file=sys.stderr,
            )
            return 1
        return _scenario_run_live(scenario, specs, args, start)
    if args.verify_identical:
        # Two independent lanes, compared result by result: the same
        # gate the perf harness applies (identity, never wall-clock).
        serial = execute_specs(specs, make_executor("serial"))
        process = execute_specs(specs, make_executor("process"))
        identical = all(
            _result_fingerprint(a) == _result_fingerprint(b)
            for a, b in zip(serial, process)
        )
        results = serial
        print(f"outputs_identical: {identical}")
    else:
        identical = None
        results = execute_specs(specs)
    strict_failed = False
    for spec, result in zip(specs, results):
        metrics = ", ".join(
            f"p{q * 100:g}={v:.1f}us" for q, v in sorted(result.metrics.items())
        )
        print(f"{spec.tag}: {metrics} (peak server util {result.server_utilization:.2f})")
        for (fleet, pool), gm in sorted((result.group_metrics or {}).items()):
            gmetrics = ", ".join(
                f"p{q * 100:g}={v:.1f}us" for q, v in sorted(gm.items())
            )
            print(f"  ({fleet}, {pool}): {gmetrics}")
        guards = getattr(result, "guards", None)
        if guards is not None and guards.status != "pass":
            for line in guards.format().splitlines():
                print(f"  {line}")
            if args.strict_guards and not guards.ok:
                strict_failed = True
    print(f"[{scenario.name} completed in {time.time() - start:.1f}s]")
    if strict_failed:
        print(
            f"scenario {scenario.name}: validity guards FAILED (strict mode)",
            file=sys.stderr,
        )
        return 4
    return 0 if identical in (None, True) else 1


def _scenario_run_live(scenario, specs, args: argparse.Namespace, start: float) -> int:
    """Run compiled scenario specs on a non-sim (live) backend.

    Sequential on purpose: a live measurement is wall-clock and may
    already be a multi-process fleet; racing several against the same
    endpoints would let them distort each other's tails.
    """
    import dataclasses

    from .live import LiveMeasurementError
    from .measure import backend_defaults, measure_spec

    strict_failed = False
    try:
        with backend_defaults(
            args.backend,
            pool_targets=tuple(args.pool_target),
            processes=args.processes,
        ):
            for spec in specs:
                spec = dataclasses.replace(spec, backend=args.backend)
                result = measure_spec(spec)
                metrics = ", ".join(
                    f"p{q * 100:g}={v:.1f}us"
                    for q, v in sorted(result.metrics.items())
                )
                print(f"{spec.tag}: {metrics}")
                for (fleet, pool), gm in sorted(
                    (result.group_metrics or {}).items()
                ):
                    gmetrics = ", ".join(
                        f"p{q * 100:g}={v:.1f}us" for q, v in sorted(gm.items())
                    )
                    print(f"  ({fleet}, {pool}): {gmetrics}")
                health = getattr(result, "live_health", None)
                if health is not None and health.get("degraded"):
                    print(f"  [degraded] {dict(health)}")
                guards = getattr(result, "guards", None)
                if guards is not None and guards.status != "pass":
                    for line in guards.format().splitlines():
                        print(f"  {line}")
                    if args.strict_guards and not guards.ok:
                        strict_failed = True
    except (LiveMeasurementError, ValueError, OSError) as exc:
        print(
            f"scenario {scenario.name}: FAILED — {exc}", file=sys.stderr
        )
        return 3
    print(f"[{scenario.name} completed in {time.time() - start:.1f}s]")
    if strict_failed:
        print(
            f"scenario {scenario.name}: validity guards FAILED (strict mode)",
            file=sys.stderr,
        )
        return 4
    return 0


def _load_fault_plan(text: Optional[str]):
    """Parse ``--fault-plan`` (JSON text or a path) into a FaultPlan.

    Imported lazily so production CLI invocations never touch
    ``repro.faults``.
    """
    if not text:
        return None
    import os

    from .faults.plan import FaultPlan  # local import: chaos only

    if os.path.exists(text):
        with open(text, encoding="utf-8") as fh:
            text = fh.read()
    return FaultPlan.from_json(text)


def _execution_scope(args: argparse.Namespace):
    """The scoped execution defaults implied by the CLI flags."""
    backend = getattr(args, "executor", None)
    if backend is not None:
        backend_info(backend)  # fail fast on unknown names
    return execution(
        jobs=args.jobs,
        cache_dir=_effective_cache_dir(args),
        backend=backend,
        workers=getattr(args, "workers", None),
        retries=getattr(args, "retries", None),
        min_healthy_workers=getattr(args, "min_healthy_workers", None),
        fault_plan=_load_fault_plan(getattr(args, "fault_plan", None)),
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json

    if getattr(args, "partition", False):
        from .faults.harness import run_partition_chaos  # local import

        report = run_partition_chaos(
            seed=args.seed, partitions=args.partitions
        )
    elif args.live:
        from .faults.harness import run_live_chaos  # local import: chaos only

        report = run_live_chaos(seed=args.seed, processes=args.processes)
    else:
        from .faults.harness import run_chaos  # local import: chaos only

        report = run_chaos(
            seed=args.seed,
            workers=args.workers,
            n_specs=args.specs,
            lease_s=args.lease_s,
            include_restart=args.restart,
        )
    print(_json.dumps(report.summary(), indent=2))
    if not report.invariant_holds:
        print("[chaos] INVARIANT VIOLATED", file=sys.stderr)
        return 1
    return 0


def _cmd_guards_list() -> int:
    from .guards import available_detectors, detector_info

    names = available_detectors()
    width = max(len(n) for n in names)
    print(f"{len(names)} validity detector(s) audit every measurement:")
    for name in names:
        info = detector_info(name)
        print(f"  {name:<{width}}  [{info.pitfall}]")
        print(f"  {'':<{width}}  {info.summary}")
    return 0


def _cmd_guards_run(args: argparse.Namespace) -> int:
    import json as _json

    from .guards.fixtures import available_fixtures, run_fixture

    names = list(args.fixtures) if args.fixtures else available_fixtures()
    known = set(available_fixtures())
    unknown = [n for n in names if n not in known]
    if unknown:
        print(
            f"unknown fixture(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})",
            file=sys.stderr,
        )
        return 1
    rows = []
    misses = 0
    for name in names:
        fx, result = run_fixture(name)
        report = result.guards
        if fx.detector:
            verdict = report.verdict(fx.detector)
            got = verdict.status if verdict is not None else "missing"
        else:
            # Clean fixture: every detector must stay quiet, so the
            # judged status is the whole report's worst verdict.
            verdict = None
            got = report.status
        fired = _guard_at_least(got, fx.expect_at_least)
        if not fired:
            misses += 1
        rows.append(
            {
                "fixture": name,
                "detector": fx.detector,
                "expect_at_least": fx.expect_at_least,
                "got": got,
                "ok": fired,
                "evidence": dict(verdict.evidence) if verdict is not None else {},
                "report": report.to_jsonable(),
            }
        )
        if not args.json:
            mark = "ok " if fired else "MISS"
            what = fx.detector or "all detectors"
            print(
                f"[{mark}] {name}: {what} expected >= "
                f"{fx.expect_at_least}, got {got}"
            )
            if args.verbose and verdict is not None:
                print(f"       {verdict.summary}")
    if args.json:
        print(_json.dumps({"fixtures": rows, "misses": misses}, indent=1, default=str))
    elif misses:
        print(f"guards self-test: {misses}/{len(names)} fixture(s) MISSED", file=sys.stderr)
    return 1 if misses else 0


def _guard_at_least(got: str, floor: str) -> bool:
    """True when verdict ``got`` is at least as severe as ``floor``."""
    order = {"pass": 0, "skip": 0, "warn": 1, "fail": 2}
    if floor == "pass":
        # A clean fixture must stay clean: nothing above pass.
        return order.get(got, 0) == 0
    return order.get(got, 0) >= order[floor]


def _guard_scope(args: argparse.Namespace):
    """Enforcement scope implied by ``--strict-guards``."""
    from .guards import guard_enforcement

    strict = bool(getattr(args, "strict_guards", False))
    return guard_enforcement("strict" if strict else "advisory")


def main(argv: Optional[List[str]] = None) -> int:
    from .guards import GuardFailureError

    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except GuardFailureError as exc:
        # Strict mode: a failed validity audit is its own exit code so
        # CI can tell "bad measurement" (4) from "broken run" (1/3).
        print(f"validity guards FAILED: {exc}", file=sys.stderr)
        return 4
    except KeyboardInterrupt:
        # The conventional 128+SIGINT code, one line, no traceback —
        # an interrupted live measurement is a user decision, not a bug.
        print("interrupted", file=sys.stderr)
        return 130


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        with _execution_scope(args), _guard_scope(args):
            return _cmd_run(args.artifact, args.scale, args.out)
    if args.command == "all":
        with _execution_scope(args), _guard_scope(args):
            return _cmd_all(args.scale)
    if args.command == "hardware":
        return _cmd_hardware()
    if args.command == "backends":
        return _cmd_backends()
    if args.command == "guards":
        if args.guards_command == "list":
            return _cmd_guards_list()
        if args.guards_command == "run":
            with _guard_scope(args):
                return _cmd_guards_run(args)
    if args.command == "live":
        if args.live_command == "ping":
            return _cmd_live_ping(args.target, args.timeout)
        if args.live_command == "serve":
            return _cmd_live_serve(args)
        if args.live_command == "measure":
            with _guard_scope(args):
                return _cmd_live_measure(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "scenario":
        if args.scenario_command == "list":
            return _cmd_scenario_list()
        if args.scenario_command == "validate":
            return _cmd_scenario_validate(args.scenario)
        if args.scenario_command == "run":
            scenario = _resolve_scenario(args.scenario)
            if scenario.fault_plan is not None and not getattr(
                args, "fault_plan", None
            ):
                # The scenario's embedded fault plan becomes the
                # execution-scope default unless --fault-plan overrides.
                import json as _json

                args.fault_plan = _json.dumps(dict(scenario.fault_plan))
            with _execution_scope(args), _guard_scope(args):
                return _cmd_scenario_run(scenario, args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
