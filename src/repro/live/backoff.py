"""Seeded decorrelated-jitter backoff shared by every live retry path.

Both self-healing layers of the live stack retry with the same
schedule — the :class:`~repro.exec.api.RetryPolicy` semantics
``delay = min(cap, uniform(base, prev * 3))`` — and both must be
*reproducible*: the same ``(seed, run_index, instance, slot)`` tuple
yields the identical delay sequence on every run, so a flaky-looking
reconnect storm can be replayed exactly.

* the **connection** path (:mod:`repro.live.driver`): one RNG per
  ``(seed, run_index, instance_index, connection_slot)``, consumed by
  :meth:`_LiveInstance._reconnect`;
* the **process-respawn** path (:mod:`repro.live.fleet`): one RNG per
  ``(seed, run_index, process_slot, RESPAWN_CHANNEL)``, consumed by
  the supervisor when a client process dies.

Keeping the two schedules in one module (instead of two inlined
copies) is what lets ``tests/test_live_fleet.py`` pin their
determinism side by side.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = [
    "RESPAWN_CHANNEL",
    "jitter_rng",
    "next_delay",
    "backoff_schedule",
]

#: The ``slot`` value that separates the process-respawn RNG stream
#: from the per-connection streams (connection slots are small
#: non-negative ints; this cannot collide with one).
RESPAWN_CHANNEL = 0xF1EE7


def jitter_rng(
    seed: int, run_index: int, instance: int, slot: int
) -> np.random.Generator:
    """The seeded generator behind one backoff schedule.

    Seeding with the full identity tuple (not a hash of it) keeps the
    streams independent across instances and slots — numpy's
    ``SeedSequence`` treats each tuple element as entropy.
    """
    return np.random.default_rng(
        (abs(int(seed)), int(run_index), int(instance), int(slot))
    )


def next_delay(
    rng: np.random.Generator, base_s: float, cap_s: float, prev_s: float
) -> float:
    """One decorrelated-jitter step: ``min(cap, uniform(base, prev*3))``."""
    return min(float(cap_s), float(rng.uniform(base_s, prev_s * 3.0)))


def backoff_schedule(
    rng: np.random.Generator, base_s: float, cap_s: float, attempts: int
) -> List[float]:
    """The successive sleep delays across ``attempts`` attempts.

    Attempt 0 is immediate; each later attempt sleeps first, then a
    fresh decorrelated draw becomes the *next* delay — exactly the
    consuming loops' order, variate for variate, so tests can compare
    a recorded schedule against this function verbatim.  Returns
    ``attempts - 1`` delays (an ``attempts <= 1`` budget never sleeps).
    """
    if attempts < 0:
        raise ValueError("attempts must be >= 0")
    delays: List[float] = []
    delay = float(base_s)
    for attempt in range(attempts):
        if attempt:
            delays.append(delay)
            delay = next_delay(rng, base_s, cap_s, delay)
    return delays
