"""repro.live — wall-clock measurement against real endpoints.

The Treadmill procedure (open-loop Poisson arrivals, warm-up/
calibration/measurement phases, per-instance-then-aggregate quantiles,
repeat-until-converged) applied to a *live* TCP or HTTP endpoint via
asyncio, behind the same :class:`~repro.measure.api.MeasurementBackend`
protocol the simulator implements.  Select it per spec with
``RunSpec(backend="live", total_rate_rps=...)`` and point it at an
endpoint with::

    from repro.measure import backend_defaults
    with backend_defaults("live", target="tcp://127.0.0.1:7799"):
        result = repro.run(spec)

Modules:

* :mod:`repro.live.protocol` — the minimal wire protocols (TCP
  line-echo and minimal HTTP) plus target-URL parsing.
* :mod:`repro.live.driver` — the open-loop asyncio driver
  (``LiveBackend``/``LiveOptions``) registered as backend ``"live"``.
* :mod:`repro.live.refserver` — a deterministic local reference server
  (seeded service-time distribution, injectable stalls) used to
  validate the backend against the simulator.

The driver is **never closed-loop**: send times come from the same
:class:`~repro.core.arrival.ArrivalProcess` gap streams the simulator
uses, scheduled against absolute wall-clock deadlines, and a send is
never gated on an outstanding response (the paper's §II client-bias
pitfall — see the coordinated-omission guard test).
"""

from .driver import LiveBackend, LiveMeasurementError, LiveOptions, ping
from .protocol import parse_target
from .refserver import RefServerConfig, ReferenceServer, serve_in_thread

__all__ = [
    "LiveBackend",
    "LiveMeasurementError",
    "LiveOptions",
    "ping",
    "parse_target",
    "RefServerConfig",
    "ReferenceServer",
    "serve_in_thread",
]
