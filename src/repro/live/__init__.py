"""repro.live — wall-clock measurement against real endpoints.

The Treadmill procedure (open-loop Poisson arrivals, warm-up/
calibration/measurement phases, per-instance-then-aggregate quantiles,
repeat-until-converged) applied to a *live* TCP or HTTP endpoint via
asyncio, behind the same :class:`~repro.measure.api.MeasurementBackend`
protocol the simulator implements.  Select it per spec with
``RunSpec(backend="live", total_rate_rps=...)`` and point it at an
endpoint with::

    from repro.measure import backend_defaults
    with backend_defaults("live", target="tcp://127.0.0.1:7799"):
        result = repro.run(spec)

Add ``processes=N`` to shard the load across a supervised fleet of N
client OS processes (crash-safe: heartbeats, seeded respawns, a
salvage bound — see :mod:`repro.live.fleet`), and
``pool_targets={"pool": "tcp://..."}`` to run a scenario-carrying spec
against M real endpoints.

Modules:

* :mod:`repro.live.protocol` — the minimal wire protocols (TCP
  line-echo and minimal HTTP) plus target-URL parsing.
* :mod:`repro.live.driver` — the open-loop asyncio driver
  (``LiveBackend``/``LiveOptions``) registered as backend ``"live"``,
  and the spec→\\ :class:`~repro.live.driver.InstanceAssignment`
  lowering shared by every execution shape.
* :mod:`repro.live.backoff` — the seeded decorrelated-jitter schedule
  behind both connection reconnects and process respawns.
* :mod:`repro.live.fleet` / :mod:`repro.live.clientproc` — the
  multi-process fleet supervisor and its client-process entry point.
* :mod:`repro.live.refserver` — a deterministic local reference server
  (seeded service-time distribution, injectable stalls) used to
  validate the backend against the simulator.

The driver is **never closed-loop**: send times come from the same
:class:`~repro.core.arrival.ArrivalProcess` gap streams the simulator
uses, scheduled against absolute wall-clock deadlines, and a send is
never gated on an outstanding response (the paper's §II client-bias
pitfall — see the coordinated-omission guard test).
"""

from .backoff import RESPAWN_CHANNEL, backoff_schedule, jitter_rng
from .driver import (
    InstanceAssignment,
    LiveBackend,
    LiveMeasurementError,
    LiveOptions,
    assignments_for_spec,
    ping,
)
from .fleet import FleetRun
from .protocol import parse_target
from .refserver import RefServerConfig, ReferenceServer, serve_in_thread

__all__ = [
    "LiveBackend",
    "LiveMeasurementError",
    "LiveOptions",
    "InstanceAssignment",
    "FleetRun",
    "assignments_for_spec",
    "ping",
    "parse_target",
    "RESPAWN_CHANNEL",
    "jitter_rng",
    "backoff_schedule",
    "RefServerConfig",
    "ReferenceServer",
    "serve_in_thread",
]
