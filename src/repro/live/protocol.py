"""Minimal wire protocols for live-endpoint measurement.

Two interchangeable request/response encodings over one TCP stream:

* **echo** — newline-delimited: request ``q <seq>\\n``, response
  ``r <seq>\\n``.  The smallest possible protocol; per-request cost on
  both sides is a few microseconds, so the client machine stays far
  from saturation (the paper's lightly-utilized-client requirement).
* **http** — a minimal HTTP/1.1 exchange on a keep-alive connection:
  ``GET /echo?seq=<seq>`` answered with a 200 carrying an ``X-Seq``
  header.  Enough for smoke-testing real HTTP stacks; not a general
  HTTP client.

Both carry an explicit sequence number so responses can be matched to
sends out of order — a server with variable service times completes
requests in whatever order it likes, and the open-loop driver must not
care.

``PING\\n`` / ``PONG\\n`` is the connectivity handshake used by
``repro live ping``.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = [
    "PROTOCOLS",
    "PING",
    "PONG",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "encode_http_request",
    "http_request_seq",
    "encode_http_response",
    "parse_target",
]

PROTOCOLS: Tuple[str, ...] = ("echo", "http")

PING = b"PING\n"
PONG = b"PONG\n"


# ----------------------------------------------------------------------
# echo protocol
# ----------------------------------------------------------------------
def encode_request(seq: int) -> bytes:
    return b"q %d\n" % seq


def decode_request(line: bytes) -> Optional[int]:
    """Sequence number of an echo request line, or None if not one."""
    if not line.startswith(b"q "):
        return None
    try:
        return int(line[2:])
    except ValueError:
        return None


def encode_response(seq: int) -> bytes:
    return b"r %d\n" % seq


def decode_response(line: bytes) -> Optional[int]:
    """Sequence number of an echo response line, or None if malformed."""
    if not line.startswith(b"r "):
        return None
    try:
        return int(line[2:])
    except ValueError:
        return None


# ----------------------------------------------------------------------
# minimal HTTP
# ----------------------------------------------------------------------
def encode_http_request(seq: int) -> bytes:
    return (
        b"GET /echo?seq=%d HTTP/1.1\r\n"
        b"Host: refserver\r\n"
        b"Connection: keep-alive\r\n"
        b"\r\n" % seq
    )


def http_request_seq(request_line: bytes) -> Optional[int]:
    """Sequence number from a ``GET /echo?seq=N`` request line."""
    marker = b"seq="
    idx = request_line.find(marker)
    if idx < 0:
        return None
    tail = request_line[idx + len(marker):]
    digits = bytearray()
    for byte in tail:
        if 48 <= byte <= 57:
            digits.append(byte)
        else:
            break
    try:
        return int(bytes(digits))
    except ValueError:
        return None


def encode_http_response(seq: int) -> bytes:
    body = b"ok"
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"X-Seq: %d\r\n"
        b"Content-Length: %d\r\n"
        b"Connection: keep-alive\r\n"
        b"\r\n" % (seq, len(body))
    ) + body


# ----------------------------------------------------------------------
# target URLs
# ----------------------------------------------------------------------
def parse_target(target: str) -> Tuple[str, str, int]:
    """Parse a live target URL into ``(protocol, host, port)``.

    Accepted spellings::

        tcp://127.0.0.1:7799      -> ("echo", "127.0.0.1", 7799)
        http://127.0.0.1:8080     -> ("http", "127.0.0.1", 8080)
        127.0.0.1:7799            -> ("echo", "127.0.0.1", 7799)
    """
    proto = "echo"
    rest = target
    if "://" in target:
        scheme, rest = target.split("://", 1)
        scheme = scheme.lower()
        if scheme in ("tcp", "echo"):
            proto = "echo"
        elif scheme == "http":
            proto = "http"
        else:
            raise ValueError(
                f"unsupported live target scheme {scheme!r} in {target!r}; "
                "use tcp:// or http://"
            )
    rest = rest.rstrip("/")
    host, sep, port_s = rest.rpartition(":")
    if not sep or not host:
        raise ValueError(f"live target {target!r} must include host:port")
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(f"live target {target!r} has a non-numeric port") from None
    if not 0 < port < 65536:
        raise ValueError(f"live target {target!r} port out of range")
    return proto, host, port
