"""Minimal wire protocols for live-endpoint measurement.

Two interchangeable request/response encodings over one TCP stream:

* **echo** — newline-delimited: request ``q <seq>\\n``, response
  ``r <seq>\\n``.  The smallest possible protocol; per-request cost on
  both sides is a few microseconds, so the client machine stays far
  from saturation (the paper's lightly-utilized-client requirement).
* **http** — a minimal HTTP/1.1 exchange on a keep-alive connection:
  ``GET /echo?seq=<seq>`` answered with a 200 carrying an ``X-Seq``
  header.  Enough for smoke-testing real HTTP stacks; not a general
  HTTP client.

Both carry an explicit sequence number so responses can be matched to
sends out of order — a server with variable service times completes
requests in whatever order it likes, and the open-loop driver must not
care.

``PING\\n`` / ``PONG\\n`` is the connectivity handshake used by
``repro live ping``.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = [
    "PROTOCOLS",
    "PING",
    "PONG",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "encode_http_request",
    "http_request_seq",
    "encode_http_response",
    "TARGET_SCHEMES",
    "parse_target",
]

PROTOCOLS: Tuple[str, ...] = ("echo", "http")

PING = b"PING\n"
PONG = b"PONG\n"


# ----------------------------------------------------------------------
# echo protocol
# ----------------------------------------------------------------------
def encode_request(seq: int) -> bytes:
    return b"q %d\n" % seq


def decode_request(line: bytes) -> Optional[int]:
    """Sequence number of an echo request line, or None if not one."""
    if not line.startswith(b"q "):
        return None
    try:
        return int(line[2:])
    except ValueError:
        return None


def encode_response(seq: int) -> bytes:
    return b"r %d\n" % seq


def decode_response(line: bytes) -> Optional[int]:
    """Sequence number of an echo response line, or None if malformed."""
    if not line.startswith(b"r "):
        return None
    try:
        return int(line[2:])
    except ValueError:
        return None


# ----------------------------------------------------------------------
# minimal HTTP
# ----------------------------------------------------------------------
def encode_http_request(seq: int) -> bytes:
    return (
        b"GET /echo?seq=%d HTTP/1.1\r\n"
        b"Host: refserver\r\n"
        b"Connection: keep-alive\r\n"
        b"\r\n" % seq
    )


def http_request_seq(request_line: bytes) -> Optional[int]:
    """Sequence number from a ``GET /echo?seq=N`` request line."""
    marker = b"seq="
    idx = request_line.find(marker)
    if idx < 0:
        return None
    tail = request_line[idx + len(marker):]
    digits = bytearray()
    for byte in tail:
        if 48 <= byte <= 57:
            digits.append(byte)
        else:
            break
    try:
        return int(bytes(digits))
    except ValueError:
        return None


def encode_http_response(seq: int) -> bytes:
    body = b"ok"
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"X-Seq: %d\r\n"
        b"Content-Length: %d\r\n"
        b"Connection: keep-alive\r\n"
        b"\r\n" % (seq, len(body))
    ) + body


# ----------------------------------------------------------------------
# target URLs
# ----------------------------------------------------------------------
#: Schemes parse_target accepts, and the wire protocol each selects.
TARGET_SCHEMES = {"tcp": "echo", "echo": "echo", "http": "http"}

_TARGET_FORMS = (
    "tcp://HOST:PORT, http://HOST:PORT, or HOST:PORT "
    "(bracket IPv6 literals: tcp://[::1]:7799)"
)


def _target_error(target: str, problem: str, hint: str = "") -> ValueError:
    """A target parse error with the nearest-form hint style the
    scenario loader uses (state the problem, then the accepted forms,
    then — when one is recognizable — the closest valid spelling)."""
    msg = f"live target {target!r}: {problem}; expected {_TARGET_FORMS}"
    if hint:
        msg += f" — did you mean {hint!r}?"
    return ValueError(msg)


def parse_target(target: str) -> Tuple[str, str, int]:
    """Parse a live target URL into ``(protocol, host, port)``.

    Accepted spellings::

        tcp://127.0.0.1:7799      -> ("echo", "127.0.0.1", 7799)
        http://127.0.0.1:8080     -> ("http", "127.0.0.1", 8080)
        127.0.0.1:7799            -> ("echo", "127.0.0.1", 7799)
        tcp://[::1]:7799          -> ("echo", "::1", 7799)

    IPv6 literals must be bracketed (the colons are ambiguous
    otherwise); the brackets are stripped from the returned host.
    Malformed targets raise :class:`ValueError` naming the problem and
    the nearest accepted form.
    """
    if not isinstance(target, str) or not target.strip():
        raise _target_error(target, "empty target")
    target = target.strip()
    proto = "echo"
    rest = target
    if "://" in target:
        scheme, rest = target.split("://", 1)
        scheme_l = scheme.lower()
        if scheme_l not in TARGET_SCHEMES:
            import difflib

            close = difflib.get_close_matches(
                scheme_l, sorted(TARGET_SCHEMES), n=1, cutoff=0.6
            )
            hint = f"{close[0]}://{rest}" if close else ""
            raise _target_error(
                target, f"unsupported scheme {scheme!r}", hint=hint
            )
        proto = TARGET_SCHEMES[scheme_l]
    rest = rest.rstrip("/")
    if not rest:
        raise _target_error(target, "missing host:port")
    if rest.startswith("["):
        # Bracketed IPv6 literal: [::1]:7799
        end = rest.find("]")
        if end < 0:
            raise _target_error(target, "unclosed '[' in IPv6 literal")
        host = rest[1:end]
        tail = rest[end + 1:]
        if not host:
            raise _target_error(target, "empty IPv6 literal")
        if not tail.startswith(":"):
            raise _target_error(
                target,
                "missing port after IPv6 literal",
                hint=f"tcp://[{host}]:7799",
            )
        port_s = tail[1:]
    else:
        host, sep, port_s = rest.rpartition(":")
        if not sep or not host:
            raise _target_error(
                target, "missing host or port", hint=f"tcp://{rest}:7799"
            )
        if ":" in host:
            raise _target_error(
                target,
                "unbracketed IPv6 literal (the colons are ambiguous)",
                hint=f"tcp://[{host}]:{port_s}",
            )
    try:
        port = int(port_s)
    except ValueError:
        raise _target_error(target, f"non-numeric port {port_s!r}") from None
    if not 0 < port < 65536:
        raise _target_error(target, f"port {port} out of range 1-65535")
    return proto, host, port
