"""A deterministic local reference server for validating the live backend.

The server answers the :mod:`repro.live.protocol` wire formats (echo
lines, minimal HTTP, PING/PONG) with a **seeded, configurable
service-time distribution**: every accepted request is completed after
a delay drawn from the configured distribution — either one of the
:mod:`repro.workloads.generators` specs (``{"type": "lognormal",
...}``) or an :class:`EmpiricalDistribution` replaying latencies
recorded from a simulated run (the sim-vs-live identity test feeds it
exactly that).  Same seed ⇒ same service-time sequence, which is as
deterministic as a wall-clock target can be; the *measured* latencies
on top still include real scheduling and network-stack jitter, which
is the point.

**Injectable stalls** reuse the duck-typed hook protocol of
:mod:`repro.faults` (an ``injector`` with ``fire(site) -> action`` and
an optional ``seconds`` on the action — the exact shape of
:class:`repro.faults.plan.FaultInjector`; this module never imports
``repro.faults``, mirroring how ``repro.exec`` never does).  The
server consults ``fire("server.request")`` on every accepted request;
a returned action freezes *global* request completion for
``action.seconds`` — the antagonist-stall signature the
coordinated-omission guard test injects.  Tests may also call
:meth:`ReferenceServer.stall` directly.

**Misbehavior modes** (for exercising the self-healing driver and the
validity guards, individually attributable): ``drop_after=N`` closes
every connection after its Nth request with the last response unsent
(reconnect/salvage path), ``accept_delay_s`` serves each connection
only after a fixed delay (slow accept), and ``drift_us_per_request``
ramps the service time over the run (a live non-stationarity source).

Run standalone::

    python -m repro.live.refserver --port 7799 \\
        --service '{"type": "lognormal", "mean": 500.0, "sigma": 0.8}'
"""

from __future__ import annotations

import argparse
import asyncio
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..workloads.generators import Distribution, distribution_from_spec
from .protocol import (
    PING,
    PONG,
    decode_request,
    encode_http_response,
    encode_response,
    http_request_seq,
)

__all__ = [
    "EmpiricalDistribution",
    "RefServerConfig",
    "ReferenceServer",
    "ServerThread",
    "serve_in_thread",
    "main",
]

#: Hook site consulted once per accepted request (duck-typed
#: ``injector.fire(site)``, same protocol as ``repro.faults``).
STALL_SITE = "server.request"

#: Hook site consulted once per accepted request *before* servicing:
#: a matching action (``endpoint_reset``) closes the connection
#: abruptly with the request unanswered — the driver's reconnect path
#: under chaos.
RESET_SITE = "server.connection"


class EmpiricalDistribution(Distribution):
    """Replay a recorded sample set (e.g. simulated latencies).

    Draws uniformly (seeded) from ``values``; ``scale`` multiplies
    every draw, letting microsecond-scale simulated latencies be
    stretched into the milliseconds where wall-clock timers are
    meaningful, then divided back out by the consumer.
    """

    def __init__(self, values: Sequence[float], scale: float = 1.0):
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            raise ValueError("EmpiricalDistribution needs at least one value")
        if np.any(arr < 0):
            raise ValueError("values must be non-negative")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.values = arr
        self.scale = float(scale)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.values[rng.integers(0, self.values.size)]) * self.scale

    def sample_block(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 1:
            raise ValueError("n must be >= 1")
        return self.values[rng.integers(0, self.values.size, n)] * self.scale

    def mean(self) -> float:
        return float(self.values.mean()) * self.scale

    def spec(self) -> Dict:
        return {
            "type": "empirical",
            "values": self.values.tolist(),
            "scale": self.scale,
        }


def _service_distribution(service: object) -> Distribution:
    if isinstance(service, Distribution):
        return service
    if isinstance(service, dict):
        if service.get("type") == "empirical":
            return EmpiricalDistribution(
                service["values"], service.get("scale", 1.0)
            )
        return distribution_from_spec(service)
    raise TypeError(
        "service must be a Distribution or a JSON-style spec dict, "
        f"got {type(service).__name__}"
    )


@dataclass
class RefServerConfig:
    """Configuration of one reference server."""

    host: str = "127.0.0.1"
    #: 0 lets the OS pick a free port (read it back from ``.port``).
    port: int = 0
    #: Service-time distribution in **microseconds** (a
    #: :class:`~repro.workloads.generators.Distribution`, a generator
    #: spec dict, or ``{"type": "empirical", "values": [...]}``).
    service: object = field(
        default_factory=lambda: {"type": "constant", "value": 200.0}
    )
    #: Seed of the service-time stream (same seed ⇒ same sequence).
    seed: int = 0
    #: ``"parallel"`` completes each request service_us after receipt
    #: (a perfectly scalable server: no queueing, responses may
    #: reorder).  ``"serial"`` services one request at a time per
    #: connection in FIFO order (queueing becomes visible).
    mode: str = "parallel"
    #: Optional duck-typed fault injector; ``fire("server.request")``
    #: is consulted per request and an action's ``seconds`` stalls all
    #: completions globally.
    injector: object = None
    #: Misbehavior: drop each connection after it has carried this
    #: many requests (the last one goes unanswered — its response is
    #: in flight when the socket closes).  0 disables.  Exercises the
    #: driver's reconnect/salvage path.
    drop_after: int = 0
    #: Misbehavior: sleep this long at the top of every accepted
    #: connection before serving it (slow accept — e.g. an overloaded
    #: listener backlog).  Exercises connect timeouts and the stall
    #: ladder.
    accept_delay_s: float = 0.0
    #: Misbehavior: ramp the service time by this many microseconds
    #: per request seen (a server that degrades under sustained load).
    #: Exercises the non-stationarity guard on a live run.
    drift_us_per_request: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("parallel", "serial"):
            raise ValueError("mode must be 'parallel' or 'serial'")
        if self.drop_after < 0:
            raise ValueError("drop_after must be >= 0")
        if self.accept_delay_s < 0:
            raise ValueError("accept_delay_s must be >= 0")
        if self.drift_us_per_request < 0:
            raise ValueError("drift_us_per_request must be >= 0")


class ReferenceServer:
    """The asyncio server; create, ``await start()``, ``await stop()``."""

    def __init__(self, config: Optional[RefServerConfig] = None):
        self.config = config or RefServerConfig()
        self.service = _service_distribution(self.config.service)
        self._rng = np.random.default_rng(self.config.seed)
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: Wall-clock (loop-time) point before which no response may
        #: complete; stalls push it forward.
        self._stalled_until = 0.0
        self.requests_seen = 0
        self.port: int = self.config.port

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "ReferenceServer":
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- stalls --------------------------------------------------------
    def stall(self, seconds: float) -> None:
        """Freeze all request completions for ``seconds`` from now.

        Thread-safe: tests running the server in a background thread
        may call this from the main thread.
        """
        if self._loop is None:
            raise RuntimeError("server not started")
        # May be called from a foreign thread; route through the loop.
        self._loop.call_soon_threadsafe(self._stall_now, seconds)

    def _stall_now(self, seconds: float) -> None:
        now = self._loop.time()
        self._stalled_until = max(self._stalled_until, now + float(seconds))

    # -- request handling ----------------------------------------------
    def _service_delay_s(self) -> float:
        return self.service.sample(self._rng) * 1e-6

    def _completion_time(self, now: float) -> float:
        """Loop time at which the request just received may complete."""
        self.requests_seen += 1
        injector = self.config.injector
        if injector is not None:
            action = injector.fire(STALL_SITE)
            if action is not None:
                self._stall_now(float(getattr(action, "seconds", 0.0)))
        delay_s = self._service_delay_s()
        if self.config.drift_us_per_request:
            # Ramped misbehavior: the server slows (or speeds up) with
            # every request it has ever seen — a moving distribution.
            delay_s = max(
                0.0,
                delay_s
                + self.config.drift_us_per_request * self.requests_seen * 1e-6,
            )
        done_at = now + delay_s
        return max(done_at, self._stalled_until)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = self._loop
        tasks = []
        served = 0
        if self.config.accept_delay_s > 0:
            # Slow-accept misbehavior: the connection exists but the
            # server takes its time before answering anything on it.
            await asyncio.sleep(self.config.accept_delay_s)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if line.startswith(b"PING"):
                    writer.write(PONG)
                    continue
                if line.startswith(b"GET "):
                    # Minimal HTTP: drain headers, answer with X-Seq.
                    while True:
                        header = await reader.readline()
                        if header in (b"\r\n", b"\n", b""):
                            break
                    seq = http_request_seq(line)
                    if seq is None:
                        break
                    payload = encode_http_response(seq)
                else:
                    seq = decode_request(line)
                    if seq is None:
                        break
                    payload = encode_response(seq)
                served += 1
                if self.config.drop_after and served >= self.config.drop_after:
                    # drop_after misbehavior: the Nth request never
                    # gets its answer — the socket just goes away,
                    # taking any in-flight responses with it.
                    break
                injector = self.config.injector
                if injector is not None:
                    action = injector.fire(RESET_SITE)
                    if action is not None and getattr(
                        action, "kind", ""
                    ) == "endpoint_reset":
                        # Chaos: reset this connection with the request
                        # unanswered (same observable as drop_after).
                        break
                done_at = self._completion_time(loop.time())
                if self.config.mode == "serial":
                    delay = done_at - loop.time()
                    if delay > 0:
                        await asyncio.sleep(delay)
                    writer.write(payload)
                else:
                    tasks.append(
                        loop.create_task(
                            self._respond_at(writer, payload, done_at)
                        )
                    )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            for t in tasks:
                t.cancel()
            writer.close()

    async def _respond_at(
        self, writer: asyncio.StreamWriter, payload: bytes, done_at: float
    ) -> None:
        # Re-check the stall clock after sleeping: a stall injected
        # while this response was pending must still delay it.
        loop = self._loop
        while True:
            target = max(done_at, self._stalled_until)
            delay = target - loop.time()
            if delay <= 0:
                break
            await asyncio.sleep(delay)
        if not writer.is_closing():
            writer.write(payload)


# ----------------------------------------------------------------------
# background-thread harness (tests, CI smoke)
# ----------------------------------------------------------------------
class ServerThread:
    """A :class:`ReferenceServer` running its own event loop in a
    daemon thread; exposes ``port``, ``stall()`` and ``stop()``."""

    def __init__(self, config: Optional[RefServerConfig] = None):
        self.server = ReferenceServer(config)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def boot():
            await self.server.start()
            self._started.set()

        self._loop.create_task(boot())
        self._loop.run_forever()
        # Drain callbacks scheduled during shutdown, then close.
        self._loop.run_until_complete(asyncio.sleep(0))
        self._loop.close()

    def start(self, timeout_s: float = 5.0) -> "ServerThread":
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise RuntimeError("reference server failed to start")
        return self

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def target(self) -> str:
        return f"tcp://{self.server.config.host}:{self.port}"

    def stall(self, seconds: float) -> None:
        self.server.stall(seconds)

    def stop(self) -> None:
        if not self._thread.is_alive():
            return

        async def shutdown():
            await self.server.stop()
            self._loop.stop()

        asyncio.run_coroutine_threadsafe(shutdown(), self._loop)
        self._thread.join(timeout=5.0)


def serve_in_thread(
    config: Optional[RefServerConfig] = None,
) -> ServerThread:
    """Start a reference server on a background thread; returns the
    running :class:`ServerThread` (``.target`` is ready to measure)."""
    return ServerThread(config).start()


# ----------------------------------------------------------------------
# CLI: python -m repro.live.refserver
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.live.refserver",
        description="Deterministic reference server for live measurement",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7799)
    parser.add_argument(
        "--service",
        default='{"type": "constant", "value": 200.0}',
        help="service-time distribution spec (JSON, microseconds)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mode", choices=("parallel", "serial"), default="parallel")
    parser.add_argument(
        "--drop-after",
        type=int,
        default=0,
        help="misbehavior: drop each connection after N requests (0 = off)",
    )
    parser.add_argument(
        "--accept-delay-s",
        type=float,
        default=0.0,
        help="misbehavior: sleep this long before serving each connection",
    )
    parser.add_argument(
        "--drift-us-per-request",
        type=float,
        default=0.0,
        help="misbehavior: ramp service time by this many us per request",
    )
    args = parser.parse_args(argv)
    config = RefServerConfig(
        host=args.host,
        port=args.port,
        service=json.loads(args.service),
        seed=args.seed,
        mode=args.mode,
        drop_after=args.drop_after,
        accept_delay_s=args.accept_delay_s,
        drift_us_per_request=args.drift_us_per_request,
    )

    async def serve() -> None:
        server = ReferenceServer(config)
        await server.start()
        print(f"refserver listening on tcp://{config.host}:{server.port}", flush=True)
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
