"""One fleet client process: ``python -m repro.live.clientproc``.

The worker side of the :mod:`repro.live.fleet` supervisor.  A client
process connects *back* to its supervisor over the PR-2 length-prefixed
frame protocol (:mod:`repro.exec.protocol` — same versioned handshake
as the cluster executor's workers), receives its slice of
:class:`~repro.live.driver.InstanceAssignment` work orders, and runs
them on the unchanged in-process driver core
(:func:`~repro.live.driver.drive_assignments`): the identical
open-loop send machinery, phase machine, self-healing reconnects and
stall ladder as the single-process backend.  Because assignments carry
the instance *names* and the RNG registry keys streams by name, the
slice draws exactly the gap sub-streams the single-process driver
would — the fleet's offered load composes to the same schedule.

While measuring, the process streams heartbeats every
``heartbeat_interval_s``::

    {"type": "heartbeat", "slot": N, "sent": ..., "responses": ...,
     "cpu_fraction": ...,            # process CPU over the last beat
     "partial": {name: {"collected": ..., "done": ...}, ...}}

so the supervisor can distinguish *alive-and-behind* from *dead*,
spot a saturated client (``cpu_fraction`` pinned at 1.0 distorts the
tail it measures), and account for partial progress when the process
is lost.  On completion it sends one ``result`` message carrying the
pickled per-instance reports plus the health/lag/probe evidence, then
exits 0.  A clean measurement failure sends an ``error`` message and
exits 3 (the CLI's clean-error code); the supervisor turns missing
processes into respawns, quarantine, or a fleet-level degraded merge.

Chaos directives (``--chaos`` assignments carry them) are honoured
in-process: ``crash`` schedules an abrupt ``os._exit`` mid-measurement
(a SIGKILL stand-in that needs no signal plumbing on any platform) and
``hang`` wedges the process *before* its first heartbeat — exercising
the supervisor's heartbeat deadline rather than its exit-code path.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import socket
import sys
import threading
import time
from typing import Dict, List, Optional

from ..exec.protocol import ProtocolError, hello, recv_msg, send_msg
from .driver import LiveMeasurementError, drive_assignments

__all__ = ["main", "CRASH_EXIT_CODE"]

#: The exit code of a directive-induced crash (distinguishable from a
#: clean error's 3 and a Python traceback's 1 in supervisor logs).
CRASH_EXIT_CODE = 41


def _apply_directive(directive: Optional[Dict[str, object]]) -> None:
    """Arm a chaos directive shipped with the assignment."""
    if not directive:
        return
    kind = directive.get("kind")
    if kind == "crash":
        after_s = float(directive.get("after_s", 0.2))
        timer = threading.Timer(after_s, os._exit, args=(CRASH_EXIT_CODE,))
        timer.daemon = True
        timer.start()
    elif kind == "hang":
        # Wedge before the first heartbeat: the supervisor must detect
        # this via its heartbeat deadline, not an exit code.
        while True:
            time.sleep(3600)
    else:
        raise ProtocolError(f"unknown chaos directive {directive!r}")


def _run_slice(sock: socket.socket, slot: int, assign: Dict[str, object]) -> int:
    spec = assign["spec"]
    options = assign["options"]
    assignments = assign["assignments"]
    send_lock = threading.Lock()
    cpu_state = {"t": time.perf_counter(), "cpu": time.process_time()}

    def on_heartbeat(instances, _loop_lags) -> None:
        now = time.perf_counter()
        cpu = time.process_time()
        dt = max(now - cpu_state["t"], 1e-9)
        fraction = min(1.0, (cpu - cpu_state["cpu"]) / dt)
        cpu_state["t"], cpu_state["cpu"] = now, cpu
        beat = {
            "type": "heartbeat",
            "slot": slot,
            "sent": sum(i.sent for i in instances),
            "responses": sum(i.responses for i in instances),
            "cpu_fraction": fraction,
            "partial": {
                i.name: {
                    "collected": i.recorder.phases.collected,
                    "done": i.recorder.done,
                }
                for i in instances
            },
        }
        with send_lock:
            send_msg(sock, beat)

    _apply_directive(assign.get("directive"))
    t0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        instances, health, loop_lags = asyncio.run(
            drive_assignments(spec, options, assignments, on_heartbeat=on_heartbeat)
        )
    except LiveMeasurementError as exc:
        with send_lock:
            send_msg(sock, {"type": "error", "slot": slot, "error": str(exc)})
        return 3
    wall_s = max(time.perf_counter() - t0, 1e-9)
    cpu_fraction = min(1.0, (time.process_time() - cpu0) / wall_s)
    lags: List[float] = loop_lags
    result = {
        "type": "result",
        "slot": slot,
        "reports": [inst.report() for inst in instances],
        "send_lag": {inst.name: inst.lag_summary() for inst in instances},
        "health": health.summary(),
        "cpu_fraction": cpu_fraction,
        "loop_lags": lags,
        "wall_s": wall_s,
    }
    with send_lock:
        send_msg(sock, result)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.live.clientproc",
        description="fleet client process (spawned by repro.live.fleet)",
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT")
    parser.add_argument("--slot", required=True, type=int)
    parser.add_argument("--token", required=True)
    args = parser.parse_args(argv)
    host, _, port_s = args.connect.rpartition(":")
    sock = socket.create_connection((host, int(port_s)), timeout=10.0)
    try:
        sock.settimeout(30.0)
        greeting = hello(worker=f"client{args.slot}")
        greeting["token"] = args.token
        greeting["slot"] = args.slot
        send_msg(sock, greeting)
        reply = recv_msg(sock)
        if reply is None or reply.get("type") != "welcome":
            reason = (reply or {}).get("reason", "connection closed")
            print(f"clientproc[{args.slot}]: rejected: {reason}", file=sys.stderr)
            return 1
        assign = recv_msg(sock)
        if assign is None or assign.get("type") != "assign":
            print(f"clientproc[{args.slot}]: no assignment", file=sys.stderr)
            return 1
        sock.settimeout(None)
        return _run_slice(sock, args.slot, assign)
    except (ProtocolError, OSError) as exc:
        # The supervisor vanished (or dropped our frames): nothing to
        # report to, so exit non-zero and let the fleet ledger account.
        print(f"clientproc[{args.slot}]: {exc}", file=sys.stderr)
        return 1
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover - platform noise
            pass


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
