"""Supervised multi-process live fleet.

A single asyncio loop saturates long before a modern endpoint does —
and a saturated *client* distorts the tail it measures (the paper's
lightly-utilized-client requirement).  :class:`FleetRun` shards one
live spec's :class:`~repro.live.driver.InstanceAssignment` list across
``LiveOptions.processes`` client OS processes
(:mod:`repro.live.clientproc`), round-robin by instance index, so the
union of the slices is exactly the single-process assignment set: the
RNG registry keys gap streams by instance *name*, so the fleet's
offered load composes to the identical schedule, process boundaries
notwithstanding.

The supervisor is deliberately the same shape as the PR-3 cluster
coordinator, because a fleet is only trustworthy if it survives its
own failures:

* clients connect back over the PR-2 **frame protocol** with the
  versioned handshake, then stream **heartbeats** (progress counters,
  partial :class:`~repro.core.treadmill.PhaseRecorder` state, and a
  process-CPU fraction) every ``heartbeat_interval_s``;
* a missed **heartbeat deadline** or an unexpected exit is a crash;
  crashed slots are **respawned** under a per-slot budget with the
  seeded decorrelated-jitter schedule
  (:func:`repro.live.backoff.jitter_rng` on channel
  :data:`~repro.live.backoff.RESPAWN_CHANNEL` — replayable, like the
  connection backoff);
* a per-slot :class:`~repro.exec.distributed.CircuitBreaker`
  quarantines a client that keeps dying, and the heartbeat CPU probe
  quarantines one that is **saturated** (``saturation_cpu_fraction``)
  — a sick client is detected and excluded, not averaged in;
* the merge is **crash-safe**: completed slots' reports aggregate
  through the same :func:`~repro.live.driver.build_live_result` path
  as the single-process driver (so the merged histogram over the
  surviving slices equals a single-process run of those slices'
  streams — the kill-test invariant), while lost slots surface in the
  fleet ledger on ``result.live_health`` (``lost_clients``,
  ``lost_partial_samples`` from their last heartbeat, events) and trip
  the ``degradation`` guard;
* losing more than ``max_lost_client_fraction`` of the processes
  aborts with a clean :class:`LiveMeasurementError` — the
  fleet-level watchdog (heartbeat deadlines + respawn budgets) makes
  every outcome converge or abort; a hang is structurally impossible.

Chaos hooks (``LiveOptions.injector``, duck-typed
:class:`repro.faults.FaultInjector`): ``fleet.spawn`` is consulted at
every (re)spawn and may ship a ``crash``/``hang`` directive to that
client; ``fleet.heartbeat`` is consulted per received heartbeat and
may drop the frame on the floor — exercising the deadline machinery
against a perfectly healthy client.
"""

from __future__ import annotations

import os
import secrets
import socket
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional

import numpy as np

from ..exec.api import HealthPolicy
from ..exec.distributed import CircuitBreaker
from ..exec.protocol import ProtocolError, handshake_reply, recv_msg, send_msg
from .backoff import RESPAWN_CHANNEL, jitter_rng, next_delay
from .driver import (
    InstanceAssignment,
    LiveMeasurementError,
    LiveOptions,
    build_live_result,
)

__all__ = ["FleetRun"]

#: Poll cadence of the supervision loop.
_POLL_S = 0.05

#: Grace before the *first* heartbeat of an incarnation (interpreter
#: start-up + connect-back + handshake are all in this window).
_STARTUP_GRACE_S = 15.0

#: Tighter grace once the client has completed the handshake and
#: received its assignment — from there the first heartbeat is one
#: ``heartbeat_interval_s`` away, so a wedged client is caught fast.
_ASSIGN_GRACE_S = 2.0

#: Events kept on the fleet ledger.
_MAX_FLEET_EVENTS = 64

#: Connection-level health counters summed across completed slots
#: (the single-process _Health vocabulary, so the degradation guard
#: reads fleet ledgers and plain ledgers identically).
_CONN_COUNTERS = (
    "connections",
    "dropped_connections",
    "reconnects",
    "lost_connections",
    "lost_sends",
    "lost_pending",
    "stall_warnings",
    "mid_run_probes",
)


class _Slot:
    """Supervisor-side state of one client process slot."""

    def __init__(self, slot: int, assignments: List[InstanceAssignment]):
        self.slot = slot
        self.name = f"client{slot}"
        self.assignments = assignments
        self.lock = threading.Lock()
        self.proc: Optional[subprocess.Popen] = None
        self.directive: Optional[Dict[str, object]] = None
        #: Bumped per spawn; frames from older incarnations are stale.
        self.incarnation = 0
        self.spawned = 0
        self.respawns_used = 0
        self.respawn_at: Optional[float] = None
        self.backoff_delay: Optional[float] = None
        self.backoff_rng = None
        self.last_beat: float = 0.0
        self.beat_grace: float = _STARTUP_GRACE_S
        self.sat_strikes = 0
        self.last_partial: Dict[str, Dict[str, object]] = {}
        self.result: Optional[Dict[str, object]] = None
        self.error: Optional[str] = None
        self.state = "pending"  # pending -> running -> done | lost
        self.lost_reason = ""

    def terminal(self) -> bool:
        return self.state in ("done", "lost")


class FleetRun:
    """One prepared multi-process live experiment (``MeasurementRun``)."""

    def __init__(
        self,
        spec,
        options: LiveOptions,
        assignments: List[InstanceAssignment],
    ):
        self.spec = spec
        self.options = options
        self.assignments = assignments
        processes = min(options.processes, len(assignments))
        self.slots = [
            _Slot(s, list(assignments[s::processes])) for s in range(processes)
        ]
        self.breaker = CircuitBreaker(
            HealthPolicy(
                # One more strike than the respawn budget: exhausting
                # the budget IS the quarantine decision, the breaker
                # records it and refuses resurrection attempts.
                trip_after=options.respawn_attempts + 1,
                cooldown_s=3600.0,
            )
        )
        self._token = secrets.token_hex(8)
        self._listener: Optional[socket.socket] = None
        self._events: List[str] = []
        self._events_lock = threading.Lock()
        self.heartbeat_misses = 0
        self.dropped_heartbeats = 0
        self.quarantined = 0
        self.respawns = 0
        self.lost_clients = 0

    # -- ledger ---------------------------------------------------------
    def _event(self, kind: str, detail: str = "") -> None:
        with self._events_lock:
            self._events.append(f"{kind}: {detail}" if detail else kind)
            if len(self._events) > _MAX_FLEET_EVENTS:
                del self._events[: len(self._events) - _MAX_FLEET_EVENTS]

    # -- spawn / kill ---------------------------------------------------
    def _spawn(self, slot: _Slot, now: float) -> None:
        directive = None
        injector = self.options.injector
        if injector is not None:
            action = injector.fire("fleet.spawn")
            if action is not None:
                if action.kind == "client_proc_crash":
                    directive = {
                        "kind": "crash",
                        "after_s": float(getattr(action, "seconds", 0.2) or 0.2),
                    }
                elif action.kind == "client_proc_hang":
                    directive = {"kind": "hang"}
                self._event("fault-directive", f"{action.kind} -> {slot.name}")
        env = dict(os.environ)
        import repro

        pkg_parent = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env["PYTHONPATH"] = pkg_parent + os.pathsep + env.get("PYTHONPATH", "")
        host, port = self._listener.getsockname()[:2]
        with slot.lock:
            slot.incarnation += 1
            slot.spawned += 1
            slot.directive = directive
            slot.result = None
            slot.error = None
            slot.sat_strikes = 0
            slot.respawn_at = None
            slot.last_beat = now
            slot.beat_grace = _STARTUP_GRACE_S
            slot.state = "running"
            slot.proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.live.clientproc",
                    "--connect",
                    f"{host}:{port}",
                    "--slot",
                    str(slot.slot),
                    "--token",
                    self._token,
                ],
                env=env,
                stdout=subprocess.DEVNULL,
            )
        self._event("spawn", f"{slot.name} incarnation {slot.incarnation}")

    @staticmethod
    def _kill(slot: _Slot) -> None:
        proc = slot.proc
        if proc is None or proc.poll() is not None:
            return
        proc.kill()
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - kernel lag
            pass

    # -- connection handling --------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: run is over
            threading.Thread(
                target=self._serve_client, args=(conn,), daemon=True
            ).start()

    def _serve_client(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(10.0)
            greeting = recv_msg(conn)
            if greeting is None:
                conn.close()
                return
            if greeting.get("token") != self._token:
                send_msg(conn, {"type": "reject", "reason": "bad token"})
                conn.close()
                return
            reply = handshake_reply(greeting)
            send_msg(conn, reply)
            if reply["type"] != "welcome":
                conn.close()
                return
            slot_idx = int(greeting.get("slot", -1))
            if not 0 <= slot_idx < len(self.slots):
                conn.close()
                return
            slot = self.slots[slot_idx]
            with slot.lock:
                incarnation = slot.incarnation
                directive = slot.directive
                assignments = slot.assignments
            send_msg(
                conn,
                {
                    "type": "assign",
                    "spec": self.spec,
                    # The client runs the plain single-process driver
                    # core on its slice; fleet-level knobs are inert
                    # there, but heartbeat_interval_s matters.
                    "options": self._client_options(),
                    "assignments": assignments,
                    "directive": directive,
                },
            )
            conn.settimeout(None)
            with slot.lock:
                if slot.incarnation == incarnation:
                    slot.last_beat = time.monotonic()
                    slot.beat_grace = _ASSIGN_GRACE_S
            self._reader(slot, incarnation, conn)
        except (ProtocolError, OSError) as exc:
            self._event("protocol-error", str(exc))
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - platform noise
                pass

    def _client_options(self) -> LiveOptions:
        # processes=1 and no injector: the client must not recurse into
        # fleet mode, and live faults fire at the supervisor, not in N
        # client processes at once (which would multiply every nth=1
        # action by the fleet size).
        import dataclasses

        return dataclasses.replace(self.options, processes=1, injector=None)

    def _reader(self, slot: _Slot, incarnation: int, conn: socket.socket) -> None:
        injector = self.options.injector
        while True:
            try:
                msg = recv_msg(conn)
            except (ProtocolError, OSError):
                return
            if msg is None:
                return
            now = time.monotonic()
            with slot.lock:
                if slot.incarnation != incarnation:
                    return  # stale incarnation; its frames are history
                kind = msg.get("type")
                if kind == "heartbeat":
                    if injector is not None:
                        action = injector.fire("fleet.heartbeat")
                        if action is not None and action.kind == "fleet_frame_drop":
                            self.dropped_heartbeats += 1
                            continue  # the deadline machinery takes it
                    slot.last_beat = now
                    slot.beat_grace = 0.0
                    slot.last_partial = msg.get("partial", {})
                    cpu = float(msg.get("cpu_fraction", 0.0))
                    if (
                        self.options.saturation_cpu_fraction < 1.0
                        and cpu >= self.options.saturation_cpu_fraction
                    ):
                        slot.sat_strikes += 1
                    else:
                        slot.sat_strikes = 0
                elif kind == "result":
                    slot.result = msg
                    slot.last_beat = now
                elif kind == "error":
                    slot.error = str(msg.get("error", "unknown client error"))
                    slot.last_beat = now

    # -- failure accounting ---------------------------------------------
    def _lost_partial(self, slot: _Slot) -> int:
        return sum(
            int(p.get("collected", 0)) for p in slot.last_partial.values()
        )

    def _mark_lost(self, slot: _Slot, reason: str) -> None:
        slot.state = "lost"
        slot.lost_reason = reason
        self.lost_clients += 1
        self._event("client-lost", f"{slot.name}: {reason}")
        self._kill(slot)

    def _check_loss_bound(self) -> None:
        fraction = self.lost_clients / len(self.slots)
        if fraction > self.options.max_lost_client_fraction:
            raise LiveMeasurementError(
                f"lost {self.lost_clients}/{len(self.slots)} client "
                f"processes ({fraction:.0%} > fleet salvage bound "
                f"{self.options.max_lost_client_fraction:.0%}); the "
                "surviving slices no longer represent the offered load. "
                "Last losses: "
                + "; ".join(
                    f"{s.name}: {s.lost_reason}"
                    for s in self.slots
                    if s.state == "lost"
                )
            )

    def _handle_failure(self, slot: _Slot, reason: str, now: float) -> None:
        """One incarnation of ``slot`` is gone; respawn or give up."""
        self._kill(slot)
        tripped = self.breaker.record_failure(slot.name, now)
        budget_left = slot.respawns_used < self.options.respawn_attempts
        if budget_left and not tripped and self.breaker.allow(slot.name, now):
            if slot.backoff_rng is None:
                slot.backoff_rng = jitter_rng(
                    self.spec.seed,
                    self.spec.run_index,
                    slot.slot,
                    RESPAWN_CHANNEL,
                )
                slot.backoff_delay = self.options.respawn_backoff_base_s
            else:
                slot.backoff_delay = next_delay(
                    slot.backoff_rng,
                    self.options.respawn_backoff_base_s,
                    self.options.respawn_backoff_cap_s,
                    slot.backoff_delay,
                )
            slot.respawns_used += 1
            slot.respawn_at = now + slot.backoff_delay
            slot.state = "respawning"
            self._event(
                "respawn-scheduled",
                f"{slot.name} in {slot.backoff_delay:.2f}s ({reason})",
            )
        else:
            self._mark_lost(slot, reason)
            self._check_loss_bound()

    # -- the supervision loop -------------------------------------------
    def drive(self):
        t0 = time.perf_counter()
        self._listener = socket.create_server(
            ("127.0.0.1", 0), backlog=len(self.slots) * 2
        )
        accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        accept_thread.start()
        now = time.monotonic()
        try:
            for slot in self.slots:
                self._spawn(slot, now)
            self._supervise()
        finally:
            for slot in self.slots:
                self._kill(slot)
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - platform noise
                pass
        return self._merge(max(time.perf_counter() - t0, 1e-9))

    def _supervise(self) -> None:
        opts = self.options
        while not all(s.terminal() for s in self.slots):
            time.sleep(_POLL_S)
            now = time.monotonic()
            for slot in self.slots:
                with slot.lock:
                    state = slot.state
                    result = slot.result
                    error = slot.error
                    last_beat = slot.last_beat
                    grace = slot.beat_grace
                    sat = slot.sat_strikes
                    proc = slot.proc
                    respawn_at = slot.respawn_at
                if state in ("done", "lost"):
                    continue
                if state == "respawning":
                    if respawn_at is not None and now >= respawn_at:
                        self.respawns += 1
                        self._spawn(slot, now)
                    continue
                if result is not None:
                    slot.state = "done"
                    self.breaker.record_success(slot.name)
                    self._event("client-done", slot.name)
                    continue
                if error is not None:
                    self._handle_failure(slot, f"clean error: {error}", now)
                    continue
                if sat >= opts.saturation_strikes:
                    # Saturated, not crashed: no respawn — the host
                    # cannot carry this slice without distorting it.
                    self.quarantined += 1
                    self._mark_lost(
                        slot,
                        f"saturated (cpu >= {opts.saturation_cpu_fraction:.0%} "
                        f"for {sat} heartbeats)",
                    )
                    self._check_loss_bound()
                    continue
                if proc is not None and proc.poll() is not None:
                    self._handle_failure(
                        slot, f"exited with code {proc.returncode}", now
                    )
                    continue
                if now - last_beat > opts.heartbeat_timeout_s + grace:
                    self.heartbeat_misses += 1
                    self._handle_failure(
                        slot,
                        f"heartbeat deadline missed "
                        f"({now - last_beat:.1f}s silent)",
                        now,
                    )

    # -- crash-safe merge -----------------------------------------------
    def _merge(self, wall_s: float):
        done = [s for s in self.slots if s.state == "done"]
        if not done:
            raise LiveMeasurementError(
                "no fleet client process completed its slice; nothing to merge"
            )
        reports = []
        send_lag: Dict[str, Dict[str, float]] = {}
        ledger: Dict[str, object] = {k: 0 for k in _CONN_COUNTERS}
        cpu_fractions: List[float] = []
        loop_lags: List[float] = []
        for slot in done:
            msg = slot.result
            reports.extend(msg["reports"])
            send_lag.update(msg["send_lag"])
            for key in _CONN_COUNTERS:
                ledger[key] += int(msg["health"].get(key, 0))
            cpu_fractions.append(float(msg.get("cpu_fraction", 0.0)))
            loop_lags.extend(msg.get("loop_lags", ()))
            for event in msg["health"].get("events", ()):
                self._event("client-event", f"{slot.name}: {event}")
        # Merge identity: reports sort back to the single-process
        # assignment order so the aggregation sees the identical
        # per-instance sequence.
        order = {a.name: a.index for a in self.assignments}
        reports.sort(key=lambda r: order.get(r.name, len(order)))
        lost = [s for s in self.slots if s.state == "lost"]
        lost_partial = sum(self._lost_partial(s) for s in lost)
        processes = len(self.slots)
        ledger.update(
            processes=processes,
            spawned=sum(s.spawned for s in self.slots),
            respawns=self.respawns,
            lost_clients=self.lost_clients,
            quarantined_clients=self.quarantined,
            heartbeat_misses=self.heartbeat_misses,
            dropped_heartbeats=self.dropped_heartbeats,
            lost_client_fraction=self.lost_clients / processes,
            lost_partial_samples=lost_partial,
            events=tuple(self._events),
        )
        conn_degraded = any(
            ledger[k]
            for k in _CONN_COUNTERS
            if k != "connections"
        )
        ledger["degraded"] = bool(
            conn_degraded
            or self.lost_clients
            or self.respawns
            or self.quarantined
            or self.heartbeat_misses
            or self.dropped_heartbeats
        )
        lag_arr = np.asarray(loop_lags, dtype=float)
        total_rate = sum(a.rate_rps for a in self.assignments)
        return build_live_result(
            self.spec,
            reports,
            health_summary=ledger,
            send_lag=send_lag,
            client_probe={
                # The hottest client is the validity risk; report it.
                "cpu_fraction": max(cpu_fractions) if cpu_fractions else 0.0,
                "loop_lag_p99_s": float(np.quantile(lag_arr, 0.99))
                if lag_arr.size
                else 0.0,
                "loop_lag_max_s": float(lag_arr.max()) if lag_arr.size else 0.0,
                "mean_gap_s": 1.0 / total_rate if total_rate else float("inf"),
            },
            wall_s=wall_s,
        )
