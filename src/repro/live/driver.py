"""The "live" measurement backend: open-loop asyncio load driver.

One :class:`~repro.exec.spec.RunSpec` with ``backend="live"`` runs the
*identical* Treadmill procedure against a real endpoint in wall-clock
time:

* ``num_instances`` concurrent client instances, each with
  ``connections_per_instance`` TCP connections;
* **open-loop, timestamped sends** — inter-arrival gaps come from the
  same :class:`~repro.core.arrival.ArrivalProcess` streams the
  simulator draws from (seeded ``RngRegistry`` keyed by ``(seed,
  run_index)``, stream names ``client{i}/gaps`` and
  ``client{i}/arrivals``), turned into *absolute* wall-clock deadlines
  ``t0 + Σ gaps``.  A send never waits for an outstanding response and
  a response never advances the send schedule — the paper's §II
  client-bias pitfall (coordinated omission) is structurally
  impossible, which the guard test verifies under an injected 50 ms
  server stall;
* per-connection outstanding-request tracking (responses match sends
  by sequence number, out of order);
* the same warm-up/calibration/measurement phase machine and
  :class:`~repro.stats.histogram.AdaptiveHistogram` via the shared
  :class:`~repro.core.treadmill.PhaseRecorder`, so convergence,
  cross-instance aggregation, and attribution run unchanged.

Wall-clock results are **not deterministic** (the capability flag says
so), so they never enter the result cache and are excluded from the
bit-identity CI gates.  A watchdog turns a dead or wedged endpoint
into a clean :class:`LiveMeasurementError` — converged or clean error,
never a hang.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.treadmill import PhaseRecorder, TreadmillConfig
from ..sim.rng import RngRegistry
from .protocol import (
    PING,
    decode_response,
    encode_http_request,
    encode_request,
    parse_target,
)

__all__ = ["LiveOptions", "LiveMeasurementError", "LiveBackend", "ping"]

#: Gap/connection-pick variates drawn per pre-sampled block (a speed
#: knob, mirroring ``TreadmillConfig.rng_block``).
_GAP_BLOCK = 512


class LiveMeasurementError(RuntimeError):
    """A live measurement failed cleanly (endpoint dead, wedged, or
    refusing connections) instead of hanging."""


@dataclass(frozen=True)
class LiveOptions:
    """Environment of the live backend (never part of a spec digest:
    *where* a measurement runs is configuration, *what* it measures is
    the spec)."""

    #: Endpoint URL: ``tcp://host:port`` (echo protocol) or
    #: ``http://host:port`` (minimal HTTP).
    target: str = "tcp://127.0.0.1:7799"
    #: Budget for establishing each connection.
    connect_timeout_s: float = 5.0
    #: Watchdog: with zero response progress for this long, the run is
    #: aborted with a clean error instead of hanging.
    progress_timeout_s: float = 10.0
    #: Record per-send scheduled/actual timestamps on the result
    #: (``result.send_log``) for offered-rate audits; costs memory, so
    #: off by default.
    record_send_log: bool = False


class _Progress:
    """Shared liveness marker the watchdog polls."""

    __slots__ = ("last",)

    def __init__(self, now: float):
        self.last = now


class _Conn:
    __slots__ = ("reader", "writer", "pending")

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        #: seq -> send timestamp (loop time) of outstanding requests.
        self.pending: Dict[int, float] = {}


class _LiveInstance:
    """One Treadmill instance driving one set of connections."""

    def __init__(
        self,
        name: str,
        spec,
        rate_rps: float,
        rng: RngRegistry,
        options: LiveOptions,
        progress: _Progress,
    ):
        self.name = name
        self.spec = spec
        self.options = options
        self.progress = progress
        config = TreadmillConfig(
            rate_rps=rate_rps,
            connections=spec.connections_per_instance,
            warmup_samples=spec.warmup_samples,
            measurement_samples=spec.measurement_samples_per_instance,
            keep_raw=spec.keep_raw,
        )
        self.recorder = PhaseRecorder(name, config)
        self.arrival = config.make_arrival()
        # Same stream naming as the simulated bench, so the offered
        # arrival sequence for (seed, run_index) is the identical draw.
        self._gap_rng = rng.stream(f"{name}/gaps")
        self._conn_rng = rng.stream(f"{name}/arrivals")
        self.sent = 0
        self.responses = 0
        #: Offered-rate audit trail (filled when record_send_log).
        self.scheduled_ts: List[float] = []
        self.actual_ts: List[float] = []

    # -- lifecycle -----------------------------------------------------
    async def run(self, proto: str, host: str, port: int) -> None:
        conns = await self._connect(host, port)
        send_task = None
        readers = []
        try:
            readers = [
                asyncio.get_running_loop().create_task(self._read_loop(proto, c))
                for c in conns
            ]
            send_task = asyncio.get_running_loop().create_task(
                self._send_loop(proto, conns)
            )
            done, _ = await asyncio.wait(
                [send_task, *readers], return_when=asyncio.FIRST_COMPLETED
            )
            for t in done:
                exc = t.exception()
                if exc is not None:
                    raise exc
            if send_task not in done:
                raise LiveMeasurementError(
                    f"{self.name}: server closed a connection before the "
                    "measurement completed"
                )
        finally:
            tasks = [t for t in (send_task, *readers) if t is not None]
            for t in tasks:
                t.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            for c in conns:
                c.writer.close()

    async def _connect(self, host: str, port: int) -> List[_Conn]:
        conns = []
        for _ in range(self.spec.connections_per_instance):
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port),
                    self.options.connect_timeout_s,
                )
            except (OSError, asyncio.TimeoutError) as exc:
                for c in conns:
                    c.writer.close()
                raise LiveMeasurementError(
                    f"{self.name}: cannot connect to {host}:{port}: {exc}"
                ) from exc
            conns.append(_Conn(reader, writer))
        return conns

    # -- open-loop sender ----------------------------------------------
    async def _send_loop(self, proto: str, conns: List[_Conn]) -> None:
        """Send on absolute deadlines derived from the gap stream.

        The deadline chain ``next_t += gap`` is computed independently
        of every response and of how late the previous send was, so a
        slow server cannot slow the offered load (open loop).  Sends
        go to a uniformly random connection — same policy as the
        simulated :class:`~repro.core.controllers.OpenLoopController`,
        preserving Poisson arrivals per connection.  No per-request
        ``drain()``: awaiting the kernel send buffer would couple the
        schedule to the receiver again.
        """
        loop = asyncio.get_running_loop()
        encode = encode_http_request if proto == "http" else encode_request
        record_log = self.options.record_send_log
        n_conns = len(conns)
        seq = 0
        next_t = loop.time()
        while not self.recorder.done:
            gaps = self.arrival.next_gaps_us(self._gap_rng, _GAP_BLOCK)
            if n_conns > 1:
                picks = self._conn_rng.integers(0, n_conns, _GAP_BLOCK)
            else:
                picks = np.zeros(_GAP_BLOCK, dtype=int)
            for gap_us, pick in zip(gaps, picks):
                next_t += gap_us * 1e-6
                delay = next_t - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                elif (seq & 63) == 0:
                    # Behind schedule: still yield so readers run.
                    await asyncio.sleep(0)
                if self.recorder.done:
                    return
                seq += 1
                conn = conns[pick]
                now = loop.time()
                conn.pending[seq] = now
                if record_log:
                    self.scheduled_ts.append(next_t)
                    self.actual_ts.append(now)
                conn.writer.write(encode(seq))
                self.sent += 1

    # -- reader --------------------------------------------------------
    async def _read_loop(self, proto: str, conn: _Conn) -> None:
        loop = asyncio.get_running_loop()
        read = self._read_http_seq if proto == "http" else self._read_echo_seq
        while True:
            seq = await read(conn.reader)
            if seq is None:
                return  # EOF: surfaced as an error by run()
            sent_at = conn.pending.pop(seq, None)
            if sent_at is None:
                continue  # unmatched (late duplicate); ignore
            latency_us = (loop.time() - sent_at) * 1e6
            # In-flight responses keep arriving after the budget is
            # met; the sample count must match the spec exactly (the
            # simulated bench stops at precisely this point too).
            if not self.recorder.done:
                self.recorder.record(latency_us)
            self.responses += 1
            self.progress.last = loop.time()

    @staticmethod
    async def _read_echo_seq(reader) -> Optional[int]:
        line = await reader.readline()
        if not line:
            return None
        return decode_response(line)

    @staticmethod
    async def _read_http_seq(reader) -> Optional[int]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        seq = None
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"x-seq:"):
                seq = int(line.split(b":", 1)[1])
            elif line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        if length:
            await reader.readexactly(length)
        return seq

    # -- reporting -----------------------------------------------------
    def report(self):
        return self.recorder.report(
            requests_sent=self.sent,
            # A live client's CPU share is not observable from here;
            # the open-loop schedule (not utilization accounting) is
            # what protects against client bias.
            client_utilization=0.0,
        )


class _LiveRun:
    """One prepared live experiment (``MeasurementRun``)."""

    def __init__(self, spec, options: LiveOptions):
        self.spec = spec
        self.options = options

    def drive(self):
        from ..core.aggregation import aggregate_quantile
        from ..exec.spec import RunResult, metric_samples

        spec = self.spec
        t0 = time.perf_counter()
        instances = asyncio.run(self._measure())
        reports = [inst.report() for inst in instances]
        samples_by_client = {r.name: metric_samples(r) for r in reports}
        metrics = {
            q: aggregate_quantile(samples_by_client, q, combine=spec.combine)
            for q in spec.quantiles
        }
        result = RunResult(
            run_index=spec.run_index,
            reports=reports,
            metrics=metrics,
            # Not observable from the client side of a live endpoint.
            server_utilization=float("nan"),
            client_utilizations={r.name: 0.0 for r in reports},
            spec_digest=spec.digest(),
            wall_s=time.perf_counter() - t0,
            events_processed=0,
        )
        if self.options.record_send_log:
            # Offered-rate audit trail for coordinated-omission checks;
            # an annotation, not a RunResult field (sim runs never
            # carry one).
            result.send_log = {
                inst.name: {
                    "scheduled": np.asarray(inst.scheduled_ts),
                    "actual": np.asarray(inst.actual_ts),
                }
                for inst in instances
            }
        return result

    async def _measure(self) -> List[_LiveInstance]:
        spec = self.spec
        options = self.options
        proto, host, port = parse_target(options.target)
        loop = asyncio.get_running_loop()
        progress = _Progress(loop.time())
        # Same per-run seeding as the simulated TestBench: repeated
        # runs are independent experiments drawn from (seed, run_index).
        rng = RngRegistry(hash((spec.seed, spec.run_index)) & 0x7FFFFFFF)
        rate_per_instance = spec.total_rate_rps / spec.num_instances
        instances = [
            _LiveInstance(
                f"client{i}", spec, rate_per_instance, rng, options, progress
            )
            for i in range(spec.num_instances)
        ]

        async def watchdog() -> None:
            interval = max(0.05, options.progress_timeout_s / 8.0)
            while True:
                await asyncio.sleep(interval)
                if loop.time() - progress.last > options.progress_timeout_s:
                    raise LiveMeasurementError(
                        f"no response progress from {options.target} for "
                        f"{options.progress_timeout_s:.1f}s; aborting instead "
                        "of hanging"
                    )

        body = asyncio.ensure_future(
            asyncio.gather(*(inst.run(proto, host, port) for inst in instances))
        )
        guard = loop.create_task(watchdog())
        try:
            done, _ = await asyncio.wait(
                [body, guard], return_when=asyncio.FIRST_COMPLETED
            )
            for t in done:
                exc = t.exception()
                if exc is not None:
                    raise exc
        finally:
            body.cancel()
            guard.cancel()
            await asyncio.gather(body, guard, return_exceptions=True)
        return instances


class LiveBackend:
    """Measurement backend ``"live"`` (wall-clock, never cached)."""

    def __init__(self, options: Optional[LiveOptions] = None):
        self.options = options if options is not None else LiveOptions()

    def prepare(self, spec) -> _LiveRun:
        if getattr(spec, "scenario", None) is not None:
            raise ValueError(
                "the live backend runs plain RunSpecs only; lower the "
                "scenario first (scenarios.compiler.lower_degenerate)"
            )
        if getattr(spec, "total_rate_rps", None) is None:
            raise ValueError(
                "the live backend needs an absolute total_rate_rps: a real "
                "endpoint's service model is unknown, so target_utilization "
                "cannot be resolved (capability 'utilization_targeting' is "
                "False)"
            )
        return _LiveRun(spec, self.options)

    def capabilities(self):
        from ..measure.api import BenchCapabilities

        return BenchCapabilities(
            backend="live",
            deterministic=False,
            wall_clock=True,
            fault_hookable=True,
            scenarios=False,
            utilization_targeting=False,
        )

    def close(self) -> None:
        return None


def ping(target: str, timeout_s: float = 5.0) -> float:
    """Round-trip a PING to ``target``; returns the RTT in seconds.

    Raises :class:`LiveMeasurementError` on refusal, timeout, or an
    unexpected reply — the ``repro live ping`` smoke check.
    """
    _proto, host, port = parse_target(target)

    async def _go() -> float:
        loop = asyncio.get_running_loop()
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout_s
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise LiveMeasurementError(
                f"cannot connect to {target}: {exc}"
            ) from exc
        try:
            t0 = loop.time()
            writer.write(PING)
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout_s)
            if line.strip() != b"PONG":
                raise LiveMeasurementError(
                    f"unexpected ping reply from {target}: {line!r}"
                )
            return loop.time() - t0
        except asyncio.TimeoutError as exc:
            raise LiveMeasurementError(
                f"no PONG from {target} within {timeout_s:.1f}s"
            ) from exc
        finally:
            writer.close()

    return asyncio.run(_go())


def _register() -> None:
    from ..measure.api import register_measurement_backend

    register_measurement_backend(
        "live",
        lambda options: LiveBackend(options),
        LiveOptions,
        summary="wall-clock asyncio open-loop driver for real endpoints "
        "(never cached)",
    )


_register()
