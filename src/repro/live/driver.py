"""The "live" measurement backend: self-healing open-loop asyncio driver.

One :class:`~repro.exec.spec.RunSpec` with ``backend="live"`` runs the
*identical* Treadmill procedure against a real endpoint in wall-clock
time:

* ``num_instances`` concurrent client instances, each with
  ``connections_per_instance`` TCP connections;
* **open-loop, timestamped sends** — inter-arrival gaps come from the
  same :class:`~repro.core.arrival.ArrivalProcess` streams the
  simulator draws from (seeded ``RngRegistry`` keyed by ``(seed,
  run_index)``, stream names ``client{i}/gaps`` and
  ``client{i}/arrivals``), turned into *absolute* wall-clock deadlines
  ``t0 + Σ gaps``.  A send never waits for an outstanding response and
  a response never advances the send schedule — the paper's §II
  client-bias pitfall (coordinated omission) is structurally
  impossible, which the guard test verifies under an injected 50 ms
  server stall;
* per-connection outstanding-request tracking (responses match sends
  by sequence number, out of order);
* the same warm-up/calibration/measurement phase machine and
  :class:`~repro.stats.histogram.AdaptiveHistogram` via the shared
  :class:`~repro.core.treadmill.PhaseRecorder`, so convergence,
  cross-instance aggregation, and attribution run unchanged.

The unit of work is an :class:`InstanceAssignment` — one instance's
name, rate, arrival process, sample budget, and endpoint — which makes
three execution shapes one code path:

* a **plain spec** lowers to ``num_instances`` assignments against one
  endpoint (:func:`assignments_for_spec`);
* a **scenario spec** (N fleets × M pools) lowers to per-fleet
  assignments whose targets come from ``LiveOptions.pool_targets``
  — M *real* endpoints — with the scenario's own RNG layout
  (``{fleet}{i}/gaps`` streams keyed by the scenario seed), per-fleet
  start offsets, and per-(fleet, pool) ``group_metrics`` on the
  result, mirroring :mod:`repro.scenarios.runtime`;
* with ``LiveOptions.processes > 1`` the same assignments are sharded
  across a supervised fleet of client OS processes
  (:mod:`repro.live.fleet`) — each process draws its instances' exact
  gap streams from the shared registry layout, so the offered load
  composes to the single-process schedule precisely.

Endpoint trouble degrades the run instead of killing it (the PR-8
robustness layer):

* a **health probe** before warm-up fails fast on a dead endpoint;
* a dropped connection is **reconnected** with bounded exponential
  backoff and decorrelated jitter (the
  :class:`~repro.exec.api.RetryPolicy` schedule, seeded per
  ``(seed, run_index, instance, slot)`` — :mod:`repro.live.backoff`),
  its in-flight requests counted lost;
* a connection whose reconnect budget is exhausted is **salvaged**:
  its sends re-route to the surviving connections and the run
  completes *degraded* — the loss surfaces as a ``degradation`` guard
  warning on ``result.guards`` — unless more than
  ``max_lost_connection_fraction`` of all connections are gone, which
  aborts cleanly;
* a **stall-escalation ladder** replaces the old single hard deadline:
  ``stall_warn_s`` without progress records a warning,
  ``stall_probe_s`` actively re-probes the endpoint (abort if it is
  gone), ``progress_timeout_s`` aborts with a clean
  :class:`LiveMeasurementError` — converged or clean error, never a
  hang.

Wall-clock results are **not deterministic** (the capability flag says
so), so they never enter the result cache and are excluded from the
bit-identity CI gates.  The driver feeds the validity guards
(``guard_evidence`` capability): an always-on scheduled-vs-actual
send-lag summary (``result.send_lag``), a client CPU / event-loop lag
probe (``result.client_probe``), and degradation telemetry
(``result.live_health``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.treadmill import PhaseRecorder, TreadmillConfig
from ..guards.api import LATE_GAP_FACTOR
from ..sim.rng import RngRegistry
from .backoff import jitter_rng, next_delay
from .protocol import (
    PING,
    decode_response,
    encode_http_request,
    encode_request,
    parse_target,
)

__all__ = [
    "LiveOptions",
    "InstanceAssignment",
    "LiveMeasurementError",
    "LiveBackend",
    "assignments_for_spec",
    "registry_for_spec",
    "ping",
]

#: Gap/connection-pick variates drawn per pre-sampled block (a speed
#: knob, mirroring ``TreadmillConfig.rng_block``).
_GAP_BLOCK = 512

#: Cadence of the event-loop lag probe (sleep-overshoot sampling).
_LAG_PROBE_INTERVAL_S = 0.02

#: Degradation events kept on the result (oldest dropped first).
_MAX_HEALTH_EVENTS = 64


class LiveMeasurementError(RuntimeError):
    """A live measurement failed cleanly (endpoint dead, wedged, or
    refusing connections) instead of hanging."""


def _freeze_pool_targets(value: object) -> Tuple[Tuple[str, str], ...]:
    """Normalize pool→endpoint mappings to a sorted tuple of pairs.

    Accepts a mapping, a sequence of ``(pool, target)`` pairs, or a
    sequence of ``"pool=target"`` strings (the CLI spelling).
    """
    if not value:
        return ()
    pairs: List[Tuple[str, str]] = []
    items = value.items() if isinstance(value, Mapping) else value
    for item in items:
        if isinstance(item, str):
            pool, sep, target = item.partition("=")
            if not sep or not pool or not target:
                raise ValueError(
                    f"pool target {item!r} must be spelled POOL=tcp://host:port"
                )
            pairs.append((pool, target))
        else:
            pool, target = item
            pairs.append((str(pool), str(target)))
    return tuple(sorted(pairs))


@dataclass(frozen=True)
class LiveOptions:
    """Environment of the live backend (never part of a spec digest:
    *where* a measurement runs is configuration, *what* it measures is
    the spec).  All knobs are reachable through
    ``backend_defaults("live", ...)`` scoped config."""

    #: Endpoint URL: ``tcp://host:port`` (echo protocol) or
    #: ``http://host:port`` (minimal HTTP).
    target: str = "tcp://127.0.0.1:7799"
    #: Per-pool endpoints for scenario-carrying specs: a mapping (or
    #: ``POOL=URL`` strings) from scenario pool names to target URLs.
    #: A single-pool scenario falls back to ``target`` when empty.
    pool_targets: Tuple[Tuple[str, str], ...] = ()
    #: Budget for establishing each connection (and each reconnect
    #: attempt, and each health probe).
    connect_timeout_s: float = 5.0
    #: Stall ladder, rung 3 (abort): with zero response progress for
    #: this long, the run is aborted with a clean error.
    progress_timeout_s: float = 10.0
    #: Stall ladder, rung 1 (warn): progress gaps longer than this are
    #: recorded as stall warnings (surfaced by the degradation guard).
    stall_warn_s: float = 1.0
    #: Stall ladder, rung 2 (probe): a progress gap this long triggers
    #: an active endpoint probe; a failed probe aborts immediately
    #: instead of waiting out the full deadline.
    stall_probe_s: float = 5.0
    #: Probe the endpoint once before warm-up starts, so a dead target
    #: fails in milliseconds rather than after a full connect fan-out.
    health_probe: bool = True
    #: Reconnect budget per dropped connection (0 disables reconnects;
    #: the connection is then salvaged or the run aborted per
    #: ``max_lost_connection_fraction``).
    reconnect_attempts: int = 4
    #: Reconnect backoff: first retry delay (decorrelated jitter grows
    #: it towards the cap, RetryPolicy semantics).
    reconnect_backoff_base_s: float = 0.05
    #: Reconnect backoff ceiling.
    reconnect_backoff_cap_s: float = 1.0
    #: Partial-result salvage bound: the run completes (degraded) while
    #: at most this fraction of all connections is permanently lost,
    #: and aborts cleanly beyond it.
    max_lost_connection_fraction: float = 0.25
    #: Record per-send scheduled/actual timestamps on the result
    #: (``result.send_log``) for offered-rate audits; costs memory, so
    #: off by default.  (A bounded send-*lag* summary is always on —
    #: ``result.send_lag`` — feeding the coordinated-omission guard.)
    record_send_log: bool = False
    #: Client OS processes to shard the instances across (the
    #: :mod:`repro.live.fleet` supervisor); 1 keeps the historical
    #: single-process in-loop driver.
    processes: int = 1
    #: Fleet supervision: heartbeat cadence each client process
    #: reports at, and how long the supervisor waits past the last
    #: heartbeat before declaring the process dead.
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 2.0
    #: Respawn budget per client process slot (seeded decorrelated-
    #: jitter backoff between respawns; 0 disables respawns).
    respawn_attempts: int = 2
    respawn_backoff_base_s: float = 0.1
    respawn_backoff_cap_s: float = 2.0
    #: Fleet salvage bound: the run completes (degraded) while at most
    #: this fraction of client processes is permanently lost, and
    #: aborts with a clean :class:`LiveMeasurementError` beyond it.
    #: (Default admits one loss out of three processes.)
    max_lost_client_fraction: float = 0.34
    #: Quarantine: a client process whose heartbeat CPU probe reports
    #: at least this process-CPU fraction for ``saturation_strikes``
    #: consecutive heartbeats is killed and counted lost — a saturated
    #: client distorts the tail it measures, so it must not be
    #: averaged in.  1.0 disables the check.
    saturation_cpu_fraction: float = 1.0
    saturation_strikes: int = 3
    #: Optional duck-typed fault injector (``fire(site) -> action``,
    #: the :mod:`repro.faults` shape) consulted by the fleet
    #: supervisor at ``fleet.spawn`` / ``fleet.heartbeat``.  Chaos
    #: testing only; never set in production.
    injector: object = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "pool_targets", _freeze_pool_targets(self.pool_targets)
        )
        if self.connect_timeout_s <= 0 or self.progress_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.stall_warn_s <= 0 or self.stall_probe_s <= 0:
            raise ValueError("stall thresholds must be positive")
        if self.reconnect_attempts < 0:
            raise ValueError("reconnect_attempts must be >= 0")
        if self.reconnect_backoff_base_s <= 0:
            raise ValueError("reconnect_backoff_base_s must be positive")
        if self.reconnect_backoff_cap_s < self.reconnect_backoff_base_s:
            raise ValueError("reconnect_backoff_cap_s must be >= the base")
        if not 0.0 <= self.max_lost_connection_fraction <= 1.0:
            raise ValueError("max_lost_connection_fraction must be in [0, 1]")
        if self.processes < 1:
            raise ValueError("processes must be >= 1")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ValueError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s"
            )
        if self.respawn_attempts < 0:
            raise ValueError("respawn_attempts must be >= 0")
        if self.respawn_backoff_base_s <= 0:
            raise ValueError("respawn_backoff_base_s must be positive")
        if self.respawn_backoff_cap_s < self.respawn_backoff_base_s:
            raise ValueError("respawn_backoff_cap_s must be >= the base")
        if not 0.0 <= self.max_lost_client_fraction <= 1.0:
            raise ValueError("max_lost_client_fraction must be in [0, 1]")
        if not 0.0 < self.saturation_cpu_fraction <= 1.0:
            raise ValueError("saturation_cpu_fraction must be in (0, 1]")
        if self.saturation_strikes < 1:
            raise ValueError("saturation_strikes must be >= 1")

    def pool_target_map(self) -> Dict[str, str]:
        return dict(self.pool_targets)


@dataclass(frozen=True)
class InstanceAssignment:
    """One live instance's complete work order.

    Plain specs, scenario fleets, and fleet client processes all run
    lists of these; the fields are plain picklable values so a
    supervisor can ship an assignment slice to a client process over
    the frame protocol unchanged.
    """

    #: Instance name — also the RNG stream prefix (``{name}/gaps``),
    #: so a process running a slice draws the same gap sequence the
    #: single-process driver would for that instance.
    name: str
    #: Global instance index (backoff RNG identity).
    index: int
    rate_rps: float
    connections: int
    warmup_samples: int
    measurement_samples: int
    #: Endpoint URL this instance drives.
    target: str
    #: Grouping labels for per-(fleet, pool) metrics ("" on plain specs).
    fleet: str = ""
    pool: str = ""
    #: Optional arrival-process spec dict (``arrival_from_spec``
    #: vocabulary, without ``rate_rps``); None means Poisson.
    arrival: Optional[Mapping] = None
    #: Wall-clock delay before this instance begins sending.
    start_s: float = 0.0


class _Progress:
    """Shared liveness marker the watchdog polls."""

    __slots__ = ("last",)

    def __init__(self, now: float):
        self.last = now


class _Health:
    """Run-wide degradation ledger shared by every instance.

    Counts what the self-healing machinery absorbed; anything non-zero
    turns into a ``degradation`` guard warning on the result.  The
    ledger also enforces the salvage bound: losing more than
    ``max_lost_fraction`` of all connections aborts the run.
    """

    def __init__(self, connections: int, max_lost_fraction: float, target: str):
        self.connections = connections
        self.max_lost_fraction = max_lost_fraction
        self.target = target
        self.dropped_connections = 0
        self.reconnects = 0
        self.lost_connections = 0
        self.lost_sends = 0
        self.lost_pending = 0
        self.stall_warnings = 0
        self.mid_run_probes = 0
        self.events: List[str] = []

    def event(self, kind: str, detail: str = "") -> None:
        self.events.append(f"{kind}: {detail}" if detail else kind)
        if len(self.events) > _MAX_HEALTH_EVENTS:
            del self.events[: len(self.events) - _MAX_HEALTH_EVENTS]

    def permanent_loss(self, label: str) -> None:
        """One connection's reconnect budget is exhausted.  Raises when
        the salvage bound is crossed; otherwise the run degrades."""
        self.lost_connections += 1
        self.event("connection-lost", label)
        fraction = self.lost_connections / max(self.connections, 1)
        if fraction > self.max_lost_fraction:
            raise LiveMeasurementError(
                f"lost {self.lost_connections}/{self.connections} connections "
                f"to {self.target} ({fraction:.0%} > salvage bound "
                f"{self.max_lost_fraction:.0%}); aborting instead of "
                "measuring a shadow of the offered load"
            )

    @property
    def degraded(self) -> bool:
        return bool(
            self.dropped_connections
            or self.reconnects
            or self.lost_connections
            or self.lost_sends
            or self.lost_pending
            or self.stall_warnings
            or self.mid_run_probes
        )

    def summary(self) -> Dict[str, object]:
        return {
            "connections": self.connections,
            "dropped_connections": self.dropped_connections,
            "reconnects": self.reconnects,
            "lost_connections": self.lost_connections,
            "lost_sends": self.lost_sends,
            "lost_pending": self.lost_pending,
            "stall_warnings": self.stall_warnings,
            "mid_run_probes": self.mid_run_probes,
            "degraded": self.degraded,
            "events": tuple(self.events),
        }


class _Conn:
    __slots__ = ("reader", "writer", "pending", "alive")

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        #: seq -> send timestamp (loop time) of outstanding requests.
        self.pending: Dict[int, float] = {}
        self.alive = True


async def _probe_connect(host: str, port: int, timeout_s: float) -> None:
    """Connect-level endpoint health probe.

    Deliberately protocol-agnostic (no PING): response-level liveness
    is the watchdog's job; the probe answers "is anything still
    accepting connections there?".
    """
    try:
        _reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout_s
        )
    except (OSError, asyncio.TimeoutError) as exc:
        raise LiveMeasurementError(
            f"cannot connect to {host}:{port}: {exc}"
        ) from exc
    writer.close()
    try:
        await writer.wait_closed()
    except (OSError, ConnectionError):  # pragma: no cover - platform noise
        pass


# ----------------------------------------------------------------------
# spec / scenario lowering to assignments
# ----------------------------------------------------------------------
def registry_for_spec(spec) -> RngRegistry:
    """The RNG registry every live execution shape shares.

    Plain specs seed from ``(spec.seed, run_index)`` — the simulated
    TestBench layout; scenario specs from ``(scenario.seed,
    run_index)`` — the :class:`~repro.scenarios.bench.ScenarioBench`
    layout.  Streams are keyed by instance *name*, so a fleet client
    process holding a slice of the assignments draws exactly the
    sub-streams the single-process driver would for those instances.
    """
    scenario = getattr(spec, "scenario", None)
    seed = scenario.seed if scenario is not None else spec.seed
    return RngRegistry(hash((seed, spec.run_index)) & 0x7FFFFFFF)


def assignments_for_spec(spec, options: LiveOptions) -> List[InstanceAssignment]:
    """Lower a live spec (plain or scenario-carrying) to assignments."""
    scenario = getattr(spec, "scenario", None)
    if scenario is not None:
        return _scenario_assignments(spec, scenario, options)
    if getattr(spec, "total_rate_rps", None) is None:
        raise ValueError(
            "the live backend needs an absolute total_rate_rps: a real "
            "endpoint's service model is unknown, so target_utilization "
            "cannot be resolved (capability 'utilization_targeting' is "
            "False)"
        )
    rate_per_instance = spec.total_rate_rps / spec.num_instances
    return [
        InstanceAssignment(
            name=f"client{i}",
            index=i,
            rate_rps=rate_per_instance,
            connections=spec.connections_per_instance,
            warmup_samples=spec.warmup_samples,
            measurement_samples=spec.measurement_samples_per_instance,
            target=options.target,
        )
        for i in range(spec.num_instances)
    ]


def _scenario_assignments(
    spec, scenario, options: LiveOptions
) -> List[InstanceAssignment]:
    """Lower a scenario to per-fleet assignments against M endpoints.

    The topology (fleets × pools, rates, arrival processes, start
    offsets, sample budgets) is realized literally; the *service* side
    is the real endpoints named by ``pool_targets``.  Antagonists are
    a simulator-model construct a live endpoint cannot realize, so
    they are refused rather than silently dropped.
    """
    if scenario.antagonists:
        raise ValueError(
            f"scenario {scenario.name!r} declares "
            f"{len(scenario.antagonists)} antagonist(s); the live backend "
            "cannot inject antagonists into a real endpoint — use the sim "
            "backend or remove them"
        )
    targets = options.pool_target_map()
    pool_names = [p.name for p in scenario.pools]
    missing = [p for p in pool_names if p not in targets]
    if missing:
        if len(pool_names) == 1 and not targets:
            # Single-pool scenarios ride the plain target.
            targets = {pool_names[0]: options.target}
        else:
            raise ValueError(
                f"scenario {scenario.name!r}: no live endpoint configured "
                f"for pool(s) {missing}; set backend_defaults('live', "
                "pool_targets={'pool': 'tcp://host:port', ...}) or "
                "--pool-target POOL=URL"
            )
    rates = _fleet_rates(scenario, spec.run_index)
    assignments: List[InstanceAssignment] = []
    index = 0
    for fleet in scenario.fleets:
        rate_per_instance = rates[fleet.name] / fleet.instances
        for i in range(fleet.instances):
            assignments.append(
                InstanceAssignment(
                    name=f"{fleet.name}{i}",
                    index=index,
                    rate_rps=rate_per_instance,
                    connections=fleet.connections_per_instance,
                    warmup_samples=fleet.warmup_samples,
                    measurement_samples=fleet.measurement_samples_per_instance,
                    target=targets[fleet.target],
                    fleet=fleet.name,
                    pool=fleet.target,
                    arrival=dict(fleet.arrival) if fleet.arrival else None,
                    start_s=fleet.start_us * 1e-6,
                )
            )
            index += 1
    return assignments


def _fleet_rates(scenario, run_index: int) -> Dict[str, float]:
    """Each fleet's total offered rate in rps.

    ``target_utilization`` fleets are calibrated against the
    scenario's *declared* pool service model via
    :class:`~repro.scenarios.bench.ScenarioBench` — the same
    arithmetic the simulator uses — on the assumption that the real
    endpoint implements that service distribution (the reference
    server seeded from the pool's service spec does exactly).
    """
    needs_bench = any(f.rate_rps is None for f in scenario.fleets)
    if not needs_bench:
        return {f.name: float(f.rate_rps) for f in scenario.fleets}
    from ..scenarios.bench import ScenarioBench  # lazy: pulls in the sim

    bench = ScenarioBench(scenario, run_index=run_index)
    return {
        f.name: float(bench.fleet_total_rate(f.name)) for f in scenario.fleets
    }


def _arrival_for(assignment: InstanceAssignment):
    if assignment.arrival is None:
        return None
    from ..core.arrival import arrival_from_spec

    return arrival_from_spec(
        {**dict(assignment.arrival), "rate_rps": assignment.rate_rps}
    )


class _LiveInstance:
    """One Treadmill instance driving one set of connections."""

    def __init__(
        self,
        assignment: InstanceAssignment,
        spec,
        rng: RngRegistry,
        options: LiveOptions,
        progress: _Progress,
        health: _Health,
    ):
        self.assignment = assignment
        self.name = assignment.name
        self.index = assignment.index
        self.spec = spec
        self.options = options
        self.progress = progress
        self.health = health
        config = TreadmillConfig(
            rate_rps=assignment.rate_rps,
            connections=assignment.connections,
            warmup_samples=assignment.warmup_samples,
            measurement_samples=assignment.measurement_samples,
            keep_raw=spec.keep_raw,
            arrival=_arrival_for(assignment),
        )
        self.recorder = PhaseRecorder(
            assignment.name,
            config,
            fleet=assignment.fleet,
            pool=assignment.pool,
        )
        self.arrival = config.make_arrival()
        # Same stream naming as the simulated bench, so the offered
        # arrival sequence for (seed, run_index) is the identical draw.
        self._gap_rng = rng.stream(f"{assignment.name}/gaps")
        self._conn_rng = rng.stream(f"{assignment.name}/arrivals")
        self.sent = 0
        self.responses = 0
        self._conns: List[_Conn] = []
        #: Always-on send-lag trail (actual - scheduled per send),
        #: summarized by :meth:`lag_summary` for the CO guard.
        self._lags: List[float] = []
        #: Full offered-rate audit trail (filled when record_send_log).
        self.scheduled_ts: List[float] = []
        self.actual_ts: List[float] = []

    # -- lifecycle -----------------------------------------------------
    async def run(self) -> None:
        proto, host, port = parse_target(self.assignment.target)
        if self.assignment.start_s > 0:
            # A fleet coming online mid-run (load shift, flash crowd):
            # hold the whole instance back, connections included, so
            # the endpoint sees the fleet arrive.
            await asyncio.sleep(self.assignment.start_s)
        loop = asyncio.get_running_loop()
        conns = await self._connect(host, port)
        self._conns = conns
        conn_tasks = [
            loop.create_task(self._conn_loop(proto, host, port, c, slot))
            for slot, c in enumerate(conns)
        ]
        send_task = loop.create_task(self._send_loop(proto, conns))
        pending = {send_task, *conn_tasks}
        try:
            while True:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for t in done:
                    exc = t.exception()
                    if exc is not None:
                        raise exc
                if send_task.done():
                    return  # measurement budget met
                # A conn task retiring here is a permanently lost
                # connection the health ledger already accepted
                # (salvage): keep measuring on the survivors.
        finally:
            for t in (send_task, *conn_tasks):
                t.cancel()
            await asyncio.gather(send_task, *conn_tasks, return_exceptions=True)
            for c in conns:
                if c.writer is not None:
                    c.writer.close()

    async def _connect(self, host: str, port: int) -> List[_Conn]:
        conns = []
        for _ in range(self.assignment.connections):
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port),
                    self.options.connect_timeout_s,
                )
            except (OSError, asyncio.TimeoutError) as exc:
                for c in conns:
                    c.writer.close()
                raise LiveMeasurementError(
                    f"{self.name}: cannot connect to {host}:{port}: {exc}"
                ) from exc
            conns.append(_Conn(reader, writer))
        return conns

    # -- open-loop sender ----------------------------------------------
    async def _send_loop(self, proto: str, conns: List[_Conn]) -> None:
        """Send on absolute deadlines derived from the gap stream.

        The deadline chain ``next_t += gap`` is computed independently
        of every response and of how late the previous send was, so a
        slow server cannot slow the offered load (open loop).  Sends
        go to a uniformly random connection — same policy as the
        simulated :class:`~repro.core.controllers.OpenLoopController`,
        preserving Poisson arrivals per connection.  No per-request
        ``drain()``: awaiting the kernel send buffer would couple the
        schedule to the receiver again.

        A dead connection's picks re-route to the next alive one;
        with none alive the schedule slot is counted as a lost send
        (the arrival process never pauses for endpoint trouble).
        """
        loop = asyncio.get_running_loop()
        encode = encode_http_request if proto == "http" else encode_request
        record_log = self.options.record_send_log
        lags = self._lags
        health = self.health
        n_conns = len(conns)
        seq = 0
        next_t = loop.time()
        while not self.recorder.done:
            gaps = self.arrival.next_gaps_us(self._gap_rng, _GAP_BLOCK)
            if n_conns > 1:
                picks = self._conn_rng.integers(0, n_conns, _GAP_BLOCK)
            else:
                picks = np.zeros(_GAP_BLOCK, dtype=int)
            for gap_us, pick in zip(gaps, picks):
                next_t += gap_us * 1e-6
                delay = next_t - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                elif (seq & 63) == 0:
                    # Behind schedule: still yield so readers run.
                    await asyncio.sleep(0)
                if self.recorder.done:
                    return
                seq += 1
                conn = conns[pick]
                if not conn.alive:
                    for j in range(1, n_conns):
                        alt = conns[(pick + j) % n_conns]
                        if alt.alive:
                            conn = alt
                            break
                    else:
                        health.lost_sends += 1
                        continue
                now = loop.time()
                lags.append(max(0.0, now - next_t))
                if record_log:
                    self.scheduled_ts.append(next_t)
                    self.actual_ts.append(now)
                conn.pending[seq] = now
                try:
                    conn.writer.write(encode(seq))
                except (OSError, RuntimeError):
                    # Transport died between the reader noticing and us:
                    # the conn loop will reconnect; the slot is lost.
                    conn.pending.pop(seq, None)
                    conn.alive = False
                    health.lost_sends += 1
                    continue
                self.sent += 1

    # -- reader + self-healing reconnect ---------------------------------
    async def _conn_loop(self, proto: str, host: str, port: int, conn: _Conn, slot: int) -> None:
        """Read responses until the run ends, reconnecting the
        connection with backoff when the endpoint drops it.

        Returning (rather than raising) means the connection is
        permanently lost but the ledger accepted the loss — the run
        continues degraded on the surviving connections.
        """
        label = f"{self.name}/conn{slot}"
        # Seeded decorrelated-jitter schedule (RetryPolicy semantics;
        # repro.live.backoff pins its determinism).
        backoff_rng = jitter_rng(
            self.spec.seed, self.spec.run_index, self.index, slot
        )
        while True:
            await self._read_until_closed(proto, conn)
            if self.recorder.done:
                return
            conn.alive = False
            self.health.dropped_connections += 1
            self.health.lost_pending += len(conn.pending)
            conn.pending.clear()
            self.health.event("connection-drop", label)
            try:
                conn.writer.close()
            except (OSError, RuntimeError):  # pragma: no cover - defensive
                pass
            if not await self._reconnect(host, port, conn, backoff_rng):
                self.health.permanent_loss(label)  # raises past the bound
                if not any(c.alive for c in self._conns):
                    raise LiveMeasurementError(
                        f"{self.name}: every connection to {host}:{port} "
                        "permanently lost; the measurement cannot finish"
                    )
                return
            self.health.reconnects += 1
            self.health.event("reconnect", label)

    async def _reconnect(self, host: str, port: int, conn: _Conn, rng) -> bool:
        """Bounded exponential backoff with decorrelated jitter:
        ``delay = min(cap, uniform(base, prev * 3))`` between attempts
        (the :class:`~repro.exec.api.RetryPolicy` schedule — see
        :mod:`repro.live.backoff`)."""
        opts = self.options
        delay = opts.reconnect_backoff_base_s
        for attempt in range(opts.reconnect_attempts):
            if attempt:
                await asyncio.sleep(delay)
                delay = next_delay(
                    rng,
                    opts.reconnect_backoff_base_s,
                    opts.reconnect_backoff_cap_s,
                    delay,
                )
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), opts.connect_timeout_s
                )
            except (OSError, asyncio.TimeoutError):
                continue
            conn.reader = reader
            conn.writer = writer
            conn.alive = True
            return True
        return False

    async def _read_until_closed(self, proto: str, conn: _Conn) -> None:
        """Drain responses from one connection until EOF/reset."""
        loop = asyncio.get_running_loop()
        read = self._read_http_seq if proto == "http" else self._read_echo_seq
        while True:
            try:
                seq = await read(conn.reader)
            except (OSError, ConnectionError):
                return
            if seq is None:
                return  # EOF: the conn loop decides whether to reconnect
            sent_at = conn.pending.pop(seq, None)
            if sent_at is None:
                continue  # unmatched (late duplicate); ignore
            latency_us = (loop.time() - sent_at) * 1e6
            # In-flight responses keep arriving after the budget is
            # met; the sample count must match the spec exactly (the
            # simulated bench stops at precisely this point too).
            if not self.recorder.done:
                self.recorder.record(latency_us)
            self.responses += 1
            self.progress.last = loop.time()

    @staticmethod
    async def _read_echo_seq(reader) -> Optional[int]:
        line = await reader.readline()
        if not line:
            return None
        return decode_response(line)

    @staticmethod
    async def _read_http_seq(reader) -> Optional[int]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        seq = None
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"x-seq:"):
                seq = int(line.split(b":", 1)[1])
            elif line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        if length:
            await reader.readexactly(length)
        return seq

    # -- reporting -----------------------------------------------------
    def lag_summary(self) -> Dict[str, float]:
        """Scheduled-vs-actual send lag distribution (seconds and mean
        inter-arrival gaps) — the coordinated-omission evidence."""
        mean_gap_s = 1.0 / self.arrival.rate_rps
        lags = np.asarray(self._lags, dtype=float)
        if lags.size == 0:
            return {
                "n": 0,
                "mean_gap_s": mean_gap_s,
                "max_lag_s": 0.0,
                "mean_lag_s": 0.0,
                "p99_lag_s": 0.0,
                "max_lag_gaps": 0.0,
                "p99_lag_gaps": 0.0,
                "late_fraction": 0.0,
            }
        p99 = float(np.quantile(lags, 0.99))
        return {
            "n": int(lags.size),
            "mean_gap_s": mean_gap_s,
            "max_lag_s": float(lags.max()),
            "mean_lag_s": float(lags.mean()),
            "p99_lag_s": p99,
            "max_lag_gaps": float(lags.max()) / mean_gap_s,
            "p99_lag_gaps": p99 / mean_gap_s,
            "late_fraction": float(np.mean(lags > LATE_GAP_FACTOR * mean_gap_s)),
        }

    def report(self, client_utilization: float = 0.0):
        return self.recorder.report(
            requests_sent=self.sent,
            # Per-core accounting is not observable from here; the
            # driver-level process CPU fraction (client_probe) is the
            # best available stand-in and is what the saturation guard
            # audits.
            client_utilization=client_utilization,
        )


# ----------------------------------------------------------------------
# the shared driver core (in-process run of a set of assignments)
# ----------------------------------------------------------------------
async def drive_assignments(
    spec,
    options: LiveOptions,
    assignments: Sequence[InstanceAssignment],
    on_heartbeat=None,
) -> Tuple[List[_LiveInstance], _Health, List[float]]:
    """Run ``assignments`` to completion inside this process's loop.

    The machinery behind both the single-process driver
    (:class:`_LiveRun`) and one fleet client process
    (:mod:`repro.live.clientproc`): health probe each distinct
    endpoint, stand the instances up on the shared RNG registry, and
    supervise them with the stall-escalation watchdog and the
    event-loop lag probe.  ``on_heartbeat(instances, loop_lags)`` is
    invoked every ``heartbeat_interval_s`` when given — the client
    process uses it to stream progress + partial recorder state to its
    supervisor.
    """
    if not assignments:
        raise ValueError("no instance assignments to drive")
    loop = asyncio.get_running_loop()
    progress = _Progress(loop.time())
    targets = sorted({a.target for a in assignments})
    health = _Health(
        connections=sum(a.connections for a in assignments),
        max_lost_fraction=options.max_lost_connection_fraction,
        target=", ".join(targets),
    )
    endpoints = [parse_target(t) for t in targets]
    if options.health_probe:
        for (_proto, host, port), target in zip(endpoints, targets):
            try:
                await _probe_connect(host, port, options.connect_timeout_s)
            except LiveMeasurementError as exc:
                raise LiveMeasurementError(
                    f"pre-measurement health probe failed for {target}: {exc}"
                ) from exc
    # Same per-run seeding as the simulated benches: repeated runs are
    # independent experiments drawn from (seed, run_index).
    rng = registry_for_spec(spec)
    instances = [
        _LiveInstance(a, spec, rng, options, progress, health)
        for a in assignments
    ]
    loop_lags: List[float] = []

    async def lag_probe() -> None:
        # Sleep-overshoot sampling: how late does the loop wake a
        # timer?  Saturated clients overshoot by many send gaps.
        while True:
            t_before = loop.time()
            await asyncio.sleep(_LAG_PROBE_INTERVAL_S)
            loop_lags.append(
                max(0.0, loop.time() - t_before - _LAG_PROBE_INTERVAL_S)
            )

    async def heartbeat() -> None:
        while True:
            await asyncio.sleep(options.heartbeat_interval_s)
            on_heartbeat(instances, loop_lags)

    async def watchdog() -> None:
        # The stall-escalation ladder: warn -> probe -> abort.
        abort_s = options.progress_timeout_s
        probe_s = min(options.stall_probe_s, abort_s)
        warn_s = min(options.stall_warn_s, probe_s)
        interval = min(max(warn_s / 4.0, 0.01), 0.5)
        seen = progress.last
        warned = probed = False
        # Start offsets delay first progress legitimately; give the
        # ladder the same grace.
        max_start = max((a.start_s for a in assignments), default=0.0)
        if max_start:
            await asyncio.sleep(max_start)
            progress.last = max(progress.last, loop.time())
        while True:
            await asyncio.sleep(interval)
            if progress.last != seen:
                seen = progress.last
                warned = probed = False
            idle = loop.time() - progress.last
            if idle >= abort_s:
                raise LiveMeasurementError(
                    f"no response progress from {health.target} for "
                    f"{abort_s:.1f}s; aborting instead of hanging "
                    f"(stall ladder: warned={warned}, probed={probed})"
                )
            if idle >= probe_s and not probed:
                probed = True
                health.mid_run_probes += 1
                for (_proto, host, port), target in zip(endpoints, targets):
                    try:
                        await _probe_connect(
                            host,
                            port,
                            min(options.connect_timeout_s, max(abort_s - idle, 0.1)),
                        )
                    except LiveMeasurementError as exc:
                        raise LiveMeasurementError(
                            f"endpoint {target} failed the mid-stall "
                            f"health probe after {idle:.1f}s without "
                            f"progress: {exc}"
                        ) from exc
                health.event("stall-probe-ok", f"idle {idle:.2f}s")
            elif idle >= warn_s and not warned:
                warned = True
                health.stall_warnings += 1
                health.event("stall-warn", f"idle {idle:.2f}s")

    body = asyncio.ensure_future(
        asyncio.gather(*(inst.run() for inst in instances))
    )
    guard = loop.create_task(watchdog())
    lag_task = loop.create_task(lag_probe())
    extra = [loop.create_task(heartbeat())] if on_heartbeat is not None else []
    try:
        done, _ = await asyncio.wait(
            [body, guard], return_when=asyncio.FIRST_COMPLETED
        )
        for t in done:
            exc = t.exception()
            if exc is not None:
                raise exc
    finally:
        for t in (body, guard, lag_task, *extra):
            t.cancel()
        await asyncio.gather(body, guard, lag_task, *extra, return_exceptions=True)
    return instances, health, loop_lags


def build_live_result(
    spec,
    reports,
    *,
    health_summary: Dict[str, object],
    send_lag: Dict[str, Dict[str, float]],
    client_probe: Dict[str, float],
    wall_s: float,
    send_log=None,
):
    """Assemble the RunResult every live execution shape returns.

    One merge path for the single-process driver and the fleet
    supervisor keeps the kill-test invariant checkable: metrics are a
    pure function of the surviving reports (the paper's per-instance-
    then-combine rule), so a fleet merge over the surviving slices
    equals the single-process aggregation over the same reports.
    """
    from ..core.aggregation import aggregate_quantile, grouped_quantiles
    from ..exec.spec import RunResult, metric_samples

    samples_by_client = {r.name: metric_samples(r) for r in reports}
    metrics = {
        q: aggregate_quantile(samples_by_client, q, combine=spec.combine)
        for q in spec.quantiles
    }
    group_metrics = None
    if getattr(spec, "scenario", None) is not None:
        group_metrics = grouped_quantiles(
            samples_by_client,
            {r.name: r.group for r in reports},
            spec.quantiles,
            combine=spec.combine,
        )
    result = RunResult(
        run_index=spec.run_index,
        reports=list(reports),
        metrics=metrics,
        # Not observable from the client side of a live endpoint.
        server_utilization=float("nan"),
        # Per-core client utilization is a sim-model quantity; the
        # live stand-in (process CPU fraction) rides client_probe.
        client_utilizations={r.name: r.client_utilization for r in reports},
        spec_digest=spec.digest(),
        wall_s=wall_s,
        events_processed=0,
        group_metrics=group_metrics,
    )
    # Guard evidence channels (annotations, not RunResult fields:
    # sim runs never carry them).
    result.client_probe = client_probe
    result.send_lag = send_lag
    result.live_health = health_summary
    if send_log is not None:
        result.send_log = send_log
    return result


class _LiveRun:
    """One prepared single-process live experiment (``MeasurementRun``)."""

    def __init__(self, spec, options: LiveOptions, assignments):
        self.spec = spec
        self.options = options
        self.assignments = assignments

    def drive(self):
        spec = self.spec
        t0 = time.perf_counter()
        cpu0 = time.process_time()
        instances, health, loop_lags = asyncio.run(
            drive_assignments(spec, self.options, self.assignments)
        )
        wall_s = max(time.perf_counter() - t0, 1e-9)
        cpu_fraction = min(1.0, (time.process_time() - cpu0) / wall_s)
        reports = [inst.report() for inst in instances]
        total_rate = sum(a.rate_rps for a in self.assignments)
        lag_arr = np.asarray(loop_lags, dtype=float)
        send_log = None
        if self.options.record_send_log:
            # Full offered-rate audit trail for coordinated-omission
            # deep dives (the always-on summary lives in send_lag).
            send_log = {
                inst.name: {
                    "scheduled": np.asarray(inst.scheduled_ts),
                    "actual": np.asarray(inst.actual_ts),
                }
                for inst in instances
            }
        return build_live_result(
            spec,
            reports,
            health_summary=health.summary(),
            send_lag={inst.name: inst.lag_summary() for inst in instances},
            client_probe={
                "cpu_fraction": cpu_fraction,
                "loop_lag_p99_s": float(np.quantile(lag_arr, 0.99)) if lag_arr.size else 0.0,
                "loop_lag_max_s": float(lag_arr.max()) if lag_arr.size else 0.0,
                "mean_gap_s": 1.0 / total_rate,
            },
            wall_s=wall_s,
            send_log=send_log,
        )


class LiveBackend:
    """Measurement backend ``"live"`` (wall-clock, never cached)."""

    def __init__(self, options: Optional[LiveOptions] = None):
        self.options = options if options is not None else LiveOptions()

    def prepare(self, spec):
        assignments = assignments_for_spec(spec, self.options)
        if self.options.processes > 1:
            from .fleet import FleetRun  # lazy: subprocess plumbing

            return FleetRun(spec, self.options, assignments)
        return _LiveRun(spec, self.options, assignments)

    def capabilities(self):
        from ..measure.api import BenchCapabilities

        return BenchCapabilities(
            backend="live",
            deterministic=False,
            wall_clock=True,
            fault_hookable=True,
            # Scenario topologies (N fleets x M pools) are realized
            # against M real endpoints via LiveOptions.pool_targets.
            scenarios=True,
            utilization_targeting=False,
            guard_evidence=True,
        )

    def close(self) -> None:
        return None


def ping(target: str, timeout_s: float = 5.0) -> float:
    """Round-trip a PING to ``target``; returns the RTT in seconds.

    Raises :class:`LiveMeasurementError` on refusal, timeout, or an
    unexpected reply — the ``repro live ping`` smoke check.
    """
    _proto, host, port = parse_target(target)

    async def _go() -> float:
        loop = asyncio.get_running_loop()
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout_s
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise LiveMeasurementError(
                f"cannot connect to {target}: {exc}"
            ) from exc
        try:
            t0 = loop.time()
            writer.write(PING)
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout_s)
            if line.strip() != b"PONG":
                raise LiveMeasurementError(
                    f"unexpected ping reply from {target}: {line!r}"
                )
            return loop.time() - t0
        except asyncio.TimeoutError as exc:
            raise LiveMeasurementError(
                f"no PONG from {target} within {timeout_s:.1f}s"
            ) from exc
        finally:
            writer.close()

    return asyncio.run(_go())


def _register() -> None:
    from ..measure.api import register_measurement_backend

    register_measurement_backend(
        "live",
        lambda options: LiveBackend(options),
        LiveOptions,
        summary="wall-clock asyncio open-loop driver for real endpoints "
        "(self-healing, multi-process fleet, never cached)",
    )


_register()
