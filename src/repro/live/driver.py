"""The "live" measurement backend: self-healing open-loop asyncio driver.

One :class:`~repro.exec.spec.RunSpec` with ``backend="live"`` runs the
*identical* Treadmill procedure against a real endpoint in wall-clock
time:

* ``num_instances`` concurrent client instances, each with
  ``connections_per_instance`` TCP connections;
* **open-loop, timestamped sends** — inter-arrival gaps come from the
  same :class:`~repro.core.arrival.ArrivalProcess` streams the
  simulator draws from (seeded ``RngRegistry`` keyed by ``(seed,
  run_index)``, stream names ``client{i}/gaps`` and
  ``client{i}/arrivals``), turned into *absolute* wall-clock deadlines
  ``t0 + Σ gaps``.  A send never waits for an outstanding response and
  a response never advances the send schedule — the paper's §II
  client-bias pitfall (coordinated omission) is structurally
  impossible, which the guard test verifies under an injected 50 ms
  server stall;
* per-connection outstanding-request tracking (responses match sends
  by sequence number, out of order);
* the same warm-up/calibration/measurement phase machine and
  :class:`~repro.stats.histogram.AdaptiveHistogram` via the shared
  :class:`~repro.core.treadmill.PhaseRecorder`, so convergence,
  cross-instance aggregation, and attribution run unchanged.

Endpoint trouble degrades the run instead of killing it (the PR-8
robustness layer):

* a **health probe** before warm-up fails fast on a dead endpoint;
* a dropped connection is **reconnected** with bounded exponential
  backoff and decorrelated jitter (the
  :class:`~repro.exec.api.RetryPolicy` schedule), its in-flight
  requests counted lost;
* a connection whose reconnect budget is exhausted is **salvaged**:
  its sends re-route to the surviving connections and the run
  completes *degraded* — the loss surfaces as a ``degradation`` guard
  warning on ``result.guards`` — unless more than
  ``max_lost_connection_fraction`` of all connections are gone, which
  aborts cleanly;
* a **stall-escalation ladder** replaces the old single hard deadline:
  ``stall_warn_s`` without progress records a warning,
  ``stall_probe_s`` actively re-probes the endpoint (abort if it is
  gone), ``progress_timeout_s`` aborts with a clean
  :class:`LiveMeasurementError` — converged or clean error, never a
  hang.

Wall-clock results are **not deterministic** (the capability flag says
so), so they never enter the result cache and are excluded from the
bit-identity CI gates.  The driver feeds the validity guards
(``guard_evidence`` capability): an always-on scheduled-vs-actual
send-lag summary (``result.send_lag``), a client CPU / event-loop lag
probe (``result.client_probe``), and degradation telemetry
(``result.live_health``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.treadmill import PhaseRecorder, TreadmillConfig
from ..guards.api import LATE_GAP_FACTOR
from ..sim.rng import RngRegistry
from .protocol import (
    PING,
    decode_response,
    encode_http_request,
    encode_request,
    parse_target,
)

__all__ = ["LiveOptions", "LiveMeasurementError", "LiveBackend", "ping"]

#: Gap/connection-pick variates drawn per pre-sampled block (a speed
#: knob, mirroring ``TreadmillConfig.rng_block``).
_GAP_BLOCK = 512

#: Cadence of the event-loop lag probe (sleep-overshoot sampling).
_LAG_PROBE_INTERVAL_S = 0.02

#: Degradation events kept on the result (oldest dropped first).
_MAX_HEALTH_EVENTS = 64


class LiveMeasurementError(RuntimeError):
    """A live measurement failed cleanly (endpoint dead, wedged, or
    refusing connections) instead of hanging."""


@dataclass(frozen=True)
class LiveOptions:
    """Environment of the live backend (never part of a spec digest:
    *where* a measurement runs is configuration, *what* it measures is
    the spec).  All knobs are reachable through
    ``backend_defaults("live", ...)`` scoped config."""

    #: Endpoint URL: ``tcp://host:port`` (echo protocol) or
    #: ``http://host:port`` (minimal HTTP).
    target: str = "tcp://127.0.0.1:7799"
    #: Budget for establishing each connection (and each reconnect
    #: attempt, and each health probe).
    connect_timeout_s: float = 5.0
    #: Stall ladder, rung 3 (abort): with zero response progress for
    #: this long, the run is aborted with a clean error.
    progress_timeout_s: float = 10.0
    #: Stall ladder, rung 1 (warn): progress gaps longer than this are
    #: recorded as stall warnings (surfaced by the degradation guard).
    stall_warn_s: float = 1.0
    #: Stall ladder, rung 2 (probe): a progress gap this long triggers
    #: an active endpoint probe; a failed probe aborts immediately
    #: instead of waiting out the full deadline.
    stall_probe_s: float = 5.0
    #: Probe the endpoint once before warm-up starts, so a dead target
    #: fails in milliseconds rather than after a full connect fan-out.
    health_probe: bool = True
    #: Reconnect budget per dropped connection (0 disables reconnects;
    #: the connection is then salvaged or the run aborted per
    #: ``max_lost_connection_fraction``).
    reconnect_attempts: int = 4
    #: Reconnect backoff: first retry delay (decorrelated jitter grows
    #: it towards the cap, RetryPolicy semantics).
    reconnect_backoff_base_s: float = 0.05
    #: Reconnect backoff ceiling.
    reconnect_backoff_cap_s: float = 1.0
    #: Partial-result salvage bound: the run completes (degraded) while
    #: at most this fraction of all connections is permanently lost,
    #: and aborts cleanly beyond it.
    max_lost_connection_fraction: float = 0.25
    #: Record per-send scheduled/actual timestamps on the result
    #: (``result.send_log``) for offered-rate audits; costs memory, so
    #: off by default.  (A bounded send-*lag* summary is always on —
    #: ``result.send_lag`` — feeding the coordinated-omission guard.)
    record_send_log: bool = False

    def __post_init__(self) -> None:
        if self.connect_timeout_s <= 0 or self.progress_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.stall_warn_s <= 0 or self.stall_probe_s <= 0:
            raise ValueError("stall thresholds must be positive")
        if self.reconnect_attempts < 0:
            raise ValueError("reconnect_attempts must be >= 0")
        if self.reconnect_backoff_base_s <= 0:
            raise ValueError("reconnect_backoff_base_s must be positive")
        if self.reconnect_backoff_cap_s < self.reconnect_backoff_base_s:
            raise ValueError("reconnect_backoff_cap_s must be >= the base")
        if not 0.0 <= self.max_lost_connection_fraction <= 1.0:
            raise ValueError("max_lost_connection_fraction must be in [0, 1]")


class _Progress:
    """Shared liveness marker the watchdog polls."""

    __slots__ = ("last",)

    def __init__(self, now: float):
        self.last = now


class _Health:
    """Run-wide degradation ledger shared by every instance.

    Counts what the self-healing machinery absorbed; anything non-zero
    turns into a ``degradation`` guard warning on the result.  The
    ledger also enforces the salvage bound: losing more than
    ``max_lost_fraction`` of all connections aborts the run.
    """

    def __init__(self, connections: int, max_lost_fraction: float, target: str):
        self.connections = connections
        self.max_lost_fraction = max_lost_fraction
        self.target = target
        self.dropped_connections = 0
        self.reconnects = 0
        self.lost_connections = 0
        self.lost_sends = 0
        self.lost_pending = 0
        self.stall_warnings = 0
        self.mid_run_probes = 0
        self.events: List[str] = []

    def event(self, kind: str, detail: str = "") -> None:
        self.events.append(f"{kind}: {detail}" if detail else kind)
        if len(self.events) > _MAX_HEALTH_EVENTS:
            del self.events[: len(self.events) - _MAX_HEALTH_EVENTS]

    def permanent_loss(self, label: str) -> None:
        """One connection's reconnect budget is exhausted.  Raises when
        the salvage bound is crossed; otherwise the run degrades."""
        self.lost_connections += 1
        self.event("connection-lost", label)
        fraction = self.lost_connections / max(self.connections, 1)
        if fraction > self.max_lost_fraction:
            raise LiveMeasurementError(
                f"lost {self.lost_connections}/{self.connections} connections "
                f"to {self.target} ({fraction:.0%} > salvage bound "
                f"{self.max_lost_fraction:.0%}); aborting instead of "
                "measuring a shadow of the offered load"
            )

    @property
    def degraded(self) -> bool:
        return bool(
            self.dropped_connections
            or self.reconnects
            or self.lost_connections
            or self.lost_sends
            or self.lost_pending
            or self.stall_warnings
            or self.mid_run_probes
        )

    def summary(self) -> Dict[str, object]:
        return {
            "connections": self.connections,
            "dropped_connections": self.dropped_connections,
            "reconnects": self.reconnects,
            "lost_connections": self.lost_connections,
            "lost_sends": self.lost_sends,
            "lost_pending": self.lost_pending,
            "stall_warnings": self.stall_warnings,
            "mid_run_probes": self.mid_run_probes,
            "degraded": self.degraded,
            "events": tuple(self.events),
        }


class _Conn:
    __slots__ = ("reader", "writer", "pending", "alive")

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        #: seq -> send timestamp (loop time) of outstanding requests.
        self.pending: Dict[int, float] = {}
        self.alive = True


async def _probe_connect(host: str, port: int, timeout_s: float) -> None:
    """Connect-level endpoint health probe.

    Deliberately protocol-agnostic (no PING): response-level liveness
    is the watchdog's job; the probe answers "is anything still
    accepting connections there?".
    """
    try:
        _reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout_s
        )
    except (OSError, asyncio.TimeoutError) as exc:
        raise LiveMeasurementError(
            f"cannot connect to {host}:{port}: {exc}"
        ) from exc
    writer.close()
    try:
        await writer.wait_closed()
    except (OSError, ConnectionError):  # pragma: no cover - platform noise
        pass


class _LiveInstance:
    """One Treadmill instance driving one set of connections."""

    def __init__(
        self,
        name: str,
        index: int,
        spec,
        rate_rps: float,
        rng: RngRegistry,
        options: LiveOptions,
        progress: _Progress,
        health: _Health,
    ):
        self.name = name
        self.index = index
        self.spec = spec
        self.options = options
        self.progress = progress
        self.health = health
        config = TreadmillConfig(
            rate_rps=rate_rps,
            connections=spec.connections_per_instance,
            warmup_samples=spec.warmup_samples,
            measurement_samples=spec.measurement_samples_per_instance,
            keep_raw=spec.keep_raw,
        )
        self.recorder = PhaseRecorder(name, config)
        self.arrival = config.make_arrival()
        # Same stream naming as the simulated bench, so the offered
        # arrival sequence for (seed, run_index) is the identical draw.
        self._gap_rng = rng.stream(f"{name}/gaps")
        self._conn_rng = rng.stream(f"{name}/arrivals")
        self.sent = 0
        self.responses = 0
        self._conns: List[_Conn] = []
        #: Always-on send-lag trail (actual - scheduled per send),
        #: summarized by :meth:`lag_summary` for the CO guard.
        self._lags: List[float] = []
        #: Full offered-rate audit trail (filled when record_send_log).
        self.scheduled_ts: List[float] = []
        self.actual_ts: List[float] = []

    # -- lifecycle -----------------------------------------------------
    async def run(self, proto: str, host: str, port: int) -> None:
        loop = asyncio.get_running_loop()
        conns = await self._connect(host, port)
        self._conns = conns
        conn_tasks = [
            loop.create_task(self._conn_loop(proto, host, port, c, slot))
            for slot, c in enumerate(conns)
        ]
        send_task = loop.create_task(self._send_loop(proto, conns))
        pending = {send_task, *conn_tasks}
        try:
            while True:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for t in done:
                    exc = t.exception()
                    if exc is not None:
                        raise exc
                if send_task.done():
                    return  # measurement budget met
                # A conn task retiring here is a permanently lost
                # connection the health ledger already accepted
                # (salvage): keep measuring on the survivors.
        finally:
            for t in (send_task, *conn_tasks):
                t.cancel()
            await asyncio.gather(send_task, *conn_tasks, return_exceptions=True)
            for c in conns:
                if c.writer is not None:
                    c.writer.close()

    async def _connect(self, host: str, port: int) -> List[_Conn]:
        conns = []
        for _ in range(self.spec.connections_per_instance):
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port),
                    self.options.connect_timeout_s,
                )
            except (OSError, asyncio.TimeoutError) as exc:
                for c in conns:
                    c.writer.close()
                raise LiveMeasurementError(
                    f"{self.name}: cannot connect to {host}:{port}: {exc}"
                ) from exc
            conns.append(_Conn(reader, writer))
        return conns

    # -- open-loop sender ----------------------------------------------
    async def _send_loop(self, proto: str, conns: List[_Conn]) -> None:
        """Send on absolute deadlines derived from the gap stream.

        The deadline chain ``next_t += gap`` is computed independently
        of every response and of how late the previous send was, so a
        slow server cannot slow the offered load (open loop).  Sends
        go to a uniformly random connection — same policy as the
        simulated :class:`~repro.core.controllers.OpenLoopController`,
        preserving Poisson arrivals per connection.  No per-request
        ``drain()``: awaiting the kernel send buffer would couple the
        schedule to the receiver again.

        A dead connection's picks re-route to the next alive one;
        with none alive the schedule slot is counted as a lost send
        (the arrival process never pauses for endpoint trouble).
        """
        loop = asyncio.get_running_loop()
        encode = encode_http_request if proto == "http" else encode_request
        record_log = self.options.record_send_log
        lags = self._lags
        health = self.health
        n_conns = len(conns)
        seq = 0
        next_t = loop.time()
        while not self.recorder.done:
            gaps = self.arrival.next_gaps_us(self._gap_rng, _GAP_BLOCK)
            if n_conns > 1:
                picks = self._conn_rng.integers(0, n_conns, _GAP_BLOCK)
            else:
                picks = np.zeros(_GAP_BLOCK, dtype=int)
            for gap_us, pick in zip(gaps, picks):
                next_t += gap_us * 1e-6
                delay = next_t - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                elif (seq & 63) == 0:
                    # Behind schedule: still yield so readers run.
                    await asyncio.sleep(0)
                if self.recorder.done:
                    return
                seq += 1
                conn = conns[pick]
                if not conn.alive:
                    for j in range(1, n_conns):
                        alt = conns[(pick + j) % n_conns]
                        if alt.alive:
                            conn = alt
                            break
                    else:
                        health.lost_sends += 1
                        continue
                now = loop.time()
                lags.append(max(0.0, now - next_t))
                if record_log:
                    self.scheduled_ts.append(next_t)
                    self.actual_ts.append(now)
                conn.pending[seq] = now
                try:
                    conn.writer.write(encode(seq))
                except (OSError, RuntimeError):
                    # Transport died between the reader noticing and us:
                    # the conn loop will reconnect; the slot is lost.
                    conn.pending.pop(seq, None)
                    conn.alive = False
                    health.lost_sends += 1
                    continue
                self.sent += 1

    # -- reader + self-healing reconnect ---------------------------------
    async def _conn_loop(self, proto: str, host: str, port: int, conn: _Conn, slot: int) -> None:
        """Read responses until the run ends, reconnecting the
        connection with backoff when the endpoint drops it.

        Returning (rather than raising) means the connection is
        permanently lost but the ledger accepted the loss — the run
        continues degraded on the surviving connections.
        """
        label = f"{self.name}/conn{slot}"
        # Seeded decorrelated-jitter schedule (RetryPolicy semantics).
        backoff_rng = np.random.default_rng(
            (abs(int(self.spec.seed)), int(self.spec.run_index), self.index, slot)
        )
        while True:
            await self._read_until_closed(proto, conn)
            if self.recorder.done:
                return
            conn.alive = False
            self.health.dropped_connections += 1
            self.health.lost_pending += len(conn.pending)
            conn.pending.clear()
            self.health.event("connection-drop", label)
            try:
                conn.writer.close()
            except (OSError, RuntimeError):  # pragma: no cover - defensive
                pass
            if not await self._reconnect(host, port, conn, backoff_rng):
                self.health.permanent_loss(label)  # raises past the bound
                if not any(c.alive for c in self._conns):
                    raise LiveMeasurementError(
                        f"{self.name}: every connection to {host}:{port} "
                        "permanently lost; the measurement cannot finish"
                    )
                return
            self.health.reconnects += 1
            self.health.event("reconnect", label)

    async def _reconnect(self, host: str, port: int, conn: _Conn, rng) -> bool:
        """Bounded exponential backoff with decorrelated jitter:
        ``delay = min(cap, uniform(base, prev * 3))`` between attempts
        (the :class:`~repro.exec.api.RetryPolicy` schedule)."""
        opts = self.options
        delay = opts.reconnect_backoff_base_s
        for attempt in range(opts.reconnect_attempts):
            if attempt:
                await asyncio.sleep(delay)
                delay = min(
                    opts.reconnect_backoff_cap_s,
                    float(rng.uniform(opts.reconnect_backoff_base_s, delay * 3.0)),
                )
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), opts.connect_timeout_s
                )
            except (OSError, asyncio.TimeoutError):
                continue
            conn.reader = reader
            conn.writer = writer
            conn.alive = True
            return True
        return False

    async def _read_until_closed(self, proto: str, conn: _Conn) -> None:
        """Drain responses from one connection until EOF/reset."""
        loop = asyncio.get_running_loop()
        read = self._read_http_seq if proto == "http" else self._read_echo_seq
        while True:
            try:
                seq = await read(conn.reader)
            except (OSError, ConnectionError):
                return
            if seq is None:
                return  # EOF: the conn loop decides whether to reconnect
            sent_at = conn.pending.pop(seq, None)
            if sent_at is None:
                continue  # unmatched (late duplicate); ignore
            latency_us = (loop.time() - sent_at) * 1e6
            # In-flight responses keep arriving after the budget is
            # met; the sample count must match the spec exactly (the
            # simulated bench stops at precisely this point too).
            if not self.recorder.done:
                self.recorder.record(latency_us)
            self.responses += 1
            self.progress.last = loop.time()

    @staticmethod
    async def _read_echo_seq(reader) -> Optional[int]:
        line = await reader.readline()
        if not line:
            return None
        return decode_response(line)

    @staticmethod
    async def _read_http_seq(reader) -> Optional[int]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        seq = None
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"x-seq:"):
                seq = int(line.split(b":", 1)[1])
            elif line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        if length:
            await reader.readexactly(length)
        return seq

    # -- reporting -----------------------------------------------------
    def lag_summary(self) -> Dict[str, float]:
        """Scheduled-vs-actual send lag distribution (seconds and mean
        inter-arrival gaps) — the coordinated-omission evidence."""
        mean_gap_s = 1.0 / self.arrival.rate_rps
        lags = np.asarray(self._lags, dtype=float)
        if lags.size == 0:
            return {
                "n": 0,
                "mean_gap_s": mean_gap_s,
                "max_lag_s": 0.0,
                "mean_lag_s": 0.0,
                "p99_lag_s": 0.0,
                "max_lag_gaps": 0.0,
                "p99_lag_gaps": 0.0,
                "late_fraction": 0.0,
            }
        p99 = float(np.quantile(lags, 0.99))
        return {
            "n": int(lags.size),
            "mean_gap_s": mean_gap_s,
            "max_lag_s": float(lags.max()),
            "mean_lag_s": float(lags.mean()),
            "p99_lag_s": p99,
            "max_lag_gaps": float(lags.max()) / mean_gap_s,
            "p99_lag_gaps": p99 / mean_gap_s,
            "late_fraction": float(np.mean(lags > LATE_GAP_FACTOR * mean_gap_s)),
        }

    def report(self, client_utilization: float = 0.0):
        return self.recorder.report(
            requests_sent=self.sent,
            # Per-core accounting is not observable from here; the
            # driver-level process CPU fraction (client_probe) is the
            # best available stand-in and is what the saturation guard
            # audits.
            client_utilization=client_utilization,
        )


class _LiveRun:
    """One prepared live experiment (``MeasurementRun``)."""

    def __init__(self, spec, options: LiveOptions):
        self.spec = spec
        self.options = options

    def drive(self):
        from ..core.aggregation import aggregate_quantile
        from ..exec.spec import RunResult, metric_samples

        spec = self.spec
        t0 = time.perf_counter()
        cpu0 = time.process_time()
        instances, health, loop_lags = asyncio.run(self._measure())
        wall_s = max(time.perf_counter() - t0, 1e-9)
        cpu_fraction = min(1.0, (time.process_time() - cpu0) / wall_s)
        reports = [inst.report() for inst in instances]
        samples_by_client = {r.name: metric_samples(r) for r in reports}
        metrics = {
            q: aggregate_quantile(samples_by_client, q, combine=spec.combine)
            for q in spec.quantiles
        }
        result = RunResult(
            run_index=spec.run_index,
            reports=reports,
            metrics=metrics,
            # Not observable from the client side of a live endpoint.
            server_utilization=float("nan"),
            # Per-core client utilization is a sim-model quantity; the
            # live stand-in (process CPU fraction) rides client_probe.
            client_utilizations={r.name: r.client_utilization for r in reports},
            spec_digest=spec.digest(),
            wall_s=wall_s,
            events_processed=0,
        )
        # Guard evidence channels (annotations, not RunResult fields:
        # sim runs never carry them).
        lag_arr = np.asarray(loop_lags, dtype=float)
        result.client_probe = {
            "cpu_fraction": cpu_fraction,
            "loop_lag_p99_s": float(np.quantile(lag_arr, 0.99)) if lag_arr.size else 0.0,
            "loop_lag_max_s": float(lag_arr.max()) if lag_arr.size else 0.0,
            "mean_gap_s": 1.0 / spec.total_rate_rps,
        }
        result.send_lag = {inst.name: inst.lag_summary() for inst in instances}
        result.live_health = health.summary()
        if self.options.record_send_log:
            # Full offered-rate audit trail for coordinated-omission
            # deep dives (the always-on summary lives in send_lag).
            result.send_log = {
                inst.name: {
                    "scheduled": np.asarray(inst.scheduled_ts),
                    "actual": np.asarray(inst.actual_ts),
                }
                for inst in instances
            }
        return result

    async def _measure(self) -> Tuple[List[_LiveInstance], _Health, List[float]]:
        spec = self.spec
        options = self.options
        proto, host, port = parse_target(options.target)
        loop = asyncio.get_running_loop()
        progress = _Progress(loop.time())
        health = _Health(
            connections=spec.num_instances * spec.connections_per_instance,
            max_lost_fraction=options.max_lost_connection_fraction,
            target=options.target,
        )
        if options.health_probe:
            try:
                await _probe_connect(host, port, options.connect_timeout_s)
            except LiveMeasurementError as exc:
                raise LiveMeasurementError(
                    f"pre-measurement health probe failed: {exc}"
                ) from exc
        # Same per-run seeding as the simulated TestBench: repeated
        # runs are independent experiments drawn from (seed, run_index).
        rng = RngRegistry(hash((spec.seed, spec.run_index)) & 0x7FFFFFFF)
        rate_per_instance = spec.total_rate_rps / spec.num_instances
        instances = [
            _LiveInstance(
                f"client{i}", i, spec, rate_per_instance, rng, options,
                progress, health,
            )
            for i in range(spec.num_instances)
        ]
        loop_lags: List[float] = []

        async def lag_probe() -> None:
            # Sleep-overshoot sampling: how late does the loop wake a
            # timer?  Saturated clients overshoot by many send gaps.
            while True:
                t_before = loop.time()
                await asyncio.sleep(_LAG_PROBE_INTERVAL_S)
                loop_lags.append(
                    max(0.0, loop.time() - t_before - _LAG_PROBE_INTERVAL_S)
                )

        async def watchdog() -> None:
            # The stall-escalation ladder: warn -> probe -> abort.
            abort_s = options.progress_timeout_s
            probe_s = min(options.stall_probe_s, abort_s)
            warn_s = min(options.stall_warn_s, probe_s)
            interval = min(max(warn_s / 4.0, 0.01), 0.5)
            seen = progress.last
            warned = probed = False
            while True:
                await asyncio.sleep(interval)
                if progress.last != seen:
                    seen = progress.last
                    warned = probed = False
                idle = loop.time() - progress.last
                if idle >= abort_s:
                    raise LiveMeasurementError(
                        f"no response progress from {options.target} for "
                        f"{abort_s:.1f}s; aborting instead of hanging "
                        f"(stall ladder: warned={warned}, probed={probed})"
                    )
                if idle >= probe_s and not probed:
                    probed = True
                    health.mid_run_probes += 1
                    try:
                        await _probe_connect(
                            host,
                            port,
                            min(options.connect_timeout_s, max(abort_s - idle, 0.1)),
                        )
                    except LiveMeasurementError as exc:
                        raise LiveMeasurementError(
                            f"endpoint {options.target} failed the mid-stall "
                            f"health probe after {idle:.1f}s without "
                            f"progress: {exc}"
                        ) from exc
                    health.event("stall-probe-ok", f"idle {idle:.2f}s")
                elif idle >= warn_s and not warned:
                    warned = True
                    health.stall_warnings += 1
                    health.event("stall-warn", f"idle {idle:.2f}s")

        body = asyncio.ensure_future(
            asyncio.gather(*(inst.run(proto, host, port) for inst in instances))
        )
        guard = loop.create_task(watchdog())
        lag_task = loop.create_task(lag_probe())
        try:
            done, _ = await asyncio.wait(
                [body, guard], return_when=asyncio.FIRST_COMPLETED
            )
            for t in done:
                exc = t.exception()
                if exc is not None:
                    raise exc
        finally:
            for t in (body, guard, lag_task):
                t.cancel()
            await asyncio.gather(body, guard, lag_task, return_exceptions=True)
        return instances, health, loop_lags


class LiveBackend:
    """Measurement backend ``"live"`` (wall-clock, never cached)."""

    def __init__(self, options: Optional[LiveOptions] = None):
        self.options = options if options is not None else LiveOptions()

    def prepare(self, spec) -> _LiveRun:
        if getattr(spec, "scenario", None) is not None:
            raise ValueError(
                "the live backend runs plain RunSpecs only; lower the "
                "scenario first (scenarios.compiler.lower_degenerate)"
            )
        if getattr(spec, "total_rate_rps", None) is None:
            raise ValueError(
                "the live backend needs an absolute total_rate_rps: a real "
                "endpoint's service model is unknown, so target_utilization "
                "cannot be resolved (capability 'utilization_targeting' is "
                "False)"
            )
        return _LiveRun(spec, self.options)

    def capabilities(self):
        from ..measure.api import BenchCapabilities

        return BenchCapabilities(
            backend="live",
            deterministic=False,
            wall_clock=True,
            fault_hookable=True,
            scenarios=False,
            utilization_targeting=False,
            guard_evidence=True,
        )

    def close(self) -> None:
        return None


def ping(target: str, timeout_s: float = 5.0) -> float:
    """Round-trip a PING to ``target``; returns the RTT in seconds.

    Raises :class:`LiveMeasurementError` on refusal, timeout, or an
    unexpected reply — the ``repro live ping`` smoke check.
    """
    _proto, host, port = parse_target(target)

    async def _go() -> float:
        loop = asyncio.get_running_loop()
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout_s
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise LiveMeasurementError(
                f"cannot connect to {target}: {exc}"
            ) from exc
        try:
            t0 = loop.time()
            writer.write(PING)
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout_s)
            if line.strip() != b"PONG":
                raise LiveMeasurementError(
                    f"unexpected ping reply from {target}: {line!r}"
                )
            return loop.time() - t0
        except asyncio.TimeoutError as exc:
            raise LiveMeasurementError(
                f"no PONG from {target} within {timeout_s:.1f}s"
            ) from exc
        finally:
            writer.close()

    return asyncio.run(_go())


def _register() -> None:
    from ..measure.api import register_measurement_backend

    register_measurement_backend(
        "live",
        lambda options: LiveBackend(options),
        LiveOptions,
        summary="wall-clock asyncio open-loop driver for real endpoints "
        "(self-healing, never cached)",
    )


_register()
