"""Named, independent random-number streams.

Statistically rigorous experimentation (the whole point of the paper)
requires that changing one subsystem's randomness does not perturb
another's.  A single shared RNG would entangle, say, the arrival
process of client 0 with the service times of the server: adding one
client would shift every subsequent draw and make paired comparisons
between configurations meaningless.

:class:`RngRegistry` therefore derives one independent
``numpy.random.Generator`` per *named stream* from a root seed using
``SeedSequence.spawn``-style keyed derivation: the stream name is
hashed into the seed material, so ``streams("arrival/client0")`` is
reproducible regardless of creation order.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator, Optional

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> np.random.SeedSequence:
    """Derive a :class:`~numpy.random.SeedSequence` for ``name``.

    The derivation is order-independent: it depends only on
    ``root_seed`` and the stream name (via CRC32 of the UTF-8 bytes),
    never on how many other streams exist.
    """
    key = zlib.crc32(name.encode("utf-8"))
    return np.random.SeedSequence(entropy=root_seed, spawn_key=(key,))


class RngRegistry:
    """A factory of reproducible, order-independent random streams.

    Example::

        rng = RngRegistry(seed=42)
        arrivals = rng.stream("client0/arrival")
        service = rng.stream("server/service")

    Repeated requests for the same name return the same generator
    object, so a subsystem may re-fetch its stream rather than hold a
    reference.
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.Generator(np.random.PCG64(derive_seed(self.seed, name)))
            self._streams[name] = gen
        return gen

    def child(self, prefix: str) -> "ScopedRng":
        """A view that prefixes every stream name with ``prefix/``."""
        return ScopedRng(self, prefix)

    def names(self) -> Iterator[str]:
        """Names of all streams created so far."""
        return iter(sorted(self._streams))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, streams={len(self._streams)})"


class ScopedRng:
    """A prefixed view over an :class:`RngRegistry`.

    Lets a subsystem (e.g. one client machine) namespace its streams
    without knowing where it sits in the experiment hierarchy.
    """

    def __init__(self, registry: RngRegistry, prefix: str, parent: Optional["ScopedRng"] = None):
        self._registry = registry
        self.prefix = prefix if parent is None else f"{parent.prefix}/{prefix}"

    def stream(self, name: str) -> np.random.Generator:
        return self._registry.stream(f"{self.prefix}/{name}")

    def child(self, prefix: str) -> "ScopedRng":
        return ScopedRng(self._registry, prefix, parent=self)
