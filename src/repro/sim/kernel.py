"""Kernel-path cost model.

The paper repeatedly observes a *constant ~30 us gap* between the
latency tcpdump measures at the NIC and the latency the load tester
measures in user space (Figs. 5-6): "Certain amount of time is spent in
kernel space to handle the network interrupts before the packets reach
the user code."  This module models that fixed kernel path on both the
client and the server: interrupt handling, protocol processing, and the
syscall boundary.

Costs here are *fixed* (frequency-insensitive in our model) and are the
reason a correctly built load tester still reports slightly higher
latency than NIC-level ground truth — the reproduction target is that
the gap stays constant across utilizations, not that it vanishes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelConfig"]


@dataclass
class KernelConfig:
    """Fixed kernel-path costs in microseconds (Linux 3.10 era).

    The client-side RX path (softirq + TCP/IP + wakeup + epoll return)
    dominates and is calibrated to ~30 us total round-trip overhead to
    match the constant tcpdump-to-load-tester offset in Figs. 5-6.
    """

    #: Client TX: syscall + TCP/IP encapsulation before the NIC.
    client_tx_us: float = 6.0
    #: Client RX: interrupt + protocol processing + user wakeup.  The
    #: bulk of the paper's 30 us gap lives here.
    client_rx_us: float = 24.0
    #: Server RX protocol processing beyond the IRQ handler itself
    #: (the IRQ handler cost is modelled per-core in repro.sim.nic).
    server_rx_us: float = 0.8
    #: Server TX: response encapsulation and doorbell.
    server_tx_us: float = 0.8

    def __post_init__(self) -> None:
        for name in ("client_tx_us", "client_rx_us", "server_rx_us", "server_tx_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def client_round_trip_us(self) -> float:
        """The expected constant offset between user-level and NIC-level
        latency on the client (the ~30 us of Figs. 5-6)."""
        return self.client_tx_us + self.client_rx_us
