"""CPU model: sockets, cores, DVFS governors, and Turbo Boost.

The paper attributes tail latency to four hardware factors (Table III),
two of which live here:

* **DVFS governor** (``ondemand`` vs ``performance``).  Under
  ``ondemand`` an idle core down-clocks; the next request both runs the
  first stretch of its service at a lower frequency and pays a
  voltage/frequency ramp stall.  This is the mechanism behind the
  paper's Finding 3 (latency can be *higher at lower utilization*
  under ``ondemand``, because idle gaps are longer there).

* **Turbo Boost.**  Frequency headroom above nominal is granted from a
  per-socket thermal budget that depletes under sustained power draw
  and recovers when the socket idles.  This reproduces Finding 8
  (Turbo helps mostly at low load, where thermal headroom is
  plentiful) and the positive ``turbo:dvfs`` interaction of Table IV
  (the ``performance`` governor burns the headroom Turbo needs).

Each :class:`Core` is a single FIFO queue of :class:`Job` items — the
same abstraction a memcached worker thread pinned to a core presents.
Service time is resolved *at dispatch time* because it depends on the
core's instantaneous frequency and the socket's thermal state.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from .engine import Simulator

__all__ = ["CpuConfig", "Job", "Core", "Socket", "CpuComplex"]

#: Governor identifiers (Table III low/high levels for the dvfs factor).
GOVERNOR_ONDEMAND = "ondemand"
GOVERNOR_PERFORMANCE = "performance"


@dataclass
class CpuConfig:
    """Static CPU parameters, loosely modelled on the Xeon E5-2660 v2
    of the paper's Table II, with counts scaled down for simulation
    tractability (see DESIGN.md scale note)."""

    sockets: int = 2
    cores_per_socket: int = 4
    base_freq_ghz: float = 2.2
    min_freq_ghz: float = 1.2
    #: Maximum extra frequency Turbo can add when headroom is full.
    turbo_bonus_ghz: float = 0.3
    #: Governor in use; one of ``ondemand`` / ``performance``.
    governor: str = GOVERNOR_ONDEMAND
    #: Whether Turbo Boost is enabled.
    turbo_enabled: bool = False
    #: Idle-time constant (us) for ondemand down-clocking: after an
    #: idle gap g the core has decayed toward min frequency by
    #: ``1 - exp(-g / tau)``.
    ondemand_idle_tau_us: float = 120.0
    #: Worst-case stall (us) paid to ramp voltage/frequency back up
    #: when a request lands on a fully down-clocked core.
    ondemand_ramp_stall_us: float = 45.0
    #: Thermal relaxation time constant (us) of the per-socket
    #: headroom state.
    thermal_tau_us: float = 1500.0
    #: How aggressively socket utilization erodes turbo headroom.
    #: Equilibrium headroom is ``1 - thermal_k * effective_power``.
    thermal_k: float = 1.25
    #: Extra power factor of the performance governor (cores never
    #: down-clock, so static power stays high).
    performance_power_bias: float = 0.25
    #: Optional discrete P-state ladder: when set, the ondemand
    #: governor quantizes the down-clocked frequency to this many
    #: evenly spaced steps between min and base frequency (real
    #: cpufreq exposes a discrete table).  ``None`` keeps the smooth
    #: decay model, which is the calibrated default.
    pstate_steps: Optional[int] = None

    def __post_init__(self) -> None:
        if self.governor not in (GOVERNOR_ONDEMAND, GOVERNOR_PERFORMANCE):
            raise ValueError(f"unknown governor {self.governor!r}")
        if self.min_freq_ghz > self.base_freq_ghz:
            raise ValueError("min_freq_ghz must not exceed base_freq_ghz")
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("need at least one socket and one core")
        if self.pstate_steps is not None and self.pstate_steps < 2:
            raise ValueError("pstate_steps must be >= 2 when set")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket


class Job:
    """A unit of work bound for one core.

    ``work_us`` scales with frequency (compute); ``fixed_us`` does not
    (I/O waits, lock handoffs); ``mem_us`` is resolved by the memory
    system at dispatch (it depends on contention and NUMA placement at
    that instant) via the ``mem_cost`` callable.
    """

    __slots__ = ("work_us", "fixed_us", "mem_cost", "on_done", "on_done_args", "tag")

    def __init__(
        self,
        work_us: float,
        fixed_us: float = 0.0,
        mem_cost: Optional[Callable[["Core"], float]] = None,
        on_done: Optional[Callable[..., None]] = None,
        tag: Optional[object] = None,
        on_done_args: tuple = (),
    ):
        if work_us < 0 or fixed_us < 0:
            raise ValueError("job costs must be non-negative")
        self.work_us = work_us
        self.fixed_us = fixed_us
        self.mem_cost = mem_cost
        #: Completion callback, invoked as ``on_done(duration, *on_done_args)``
        #: so hot callers can pass a bound method plus payload instead of
        #: allocating a per-job closure.
        self.on_done = on_done
        self.on_done_args = on_done_args
        self.tag = tag


class Socket:
    """Per-socket shared state: busy-time accounting and thermal headroom."""

    __slots__ = (
        "config",
        "index",
        "cores",
        "busy_us_acc",
        "_util_sample_time",
        "_util_sample_busy",
        "util_estimate",
        "headroom",
        "_headroom_time",
    )

    def __init__(self, config: CpuConfig, index: int):
        self.config = config
        self.index = index
        self.cores: List["Core"] = []
        #: Total busy core-microseconds accumulated on this socket.
        self.busy_us_acc = 0.0
        self._util_sample_time = 0.0
        self._util_sample_busy = 0.0
        #: Smoothed socket utilization in [0, 1].
        self.util_estimate = 0.0
        #: Turbo thermal headroom in [0, 1]; 1 = cold socket.
        self.headroom = 1.0
        self._headroom_time = 0.0

    def account_busy(self, duration_us: float) -> None:
        self.busy_us_acc += duration_us

    def utilization(self, now: float) -> float:
        """Smoothed utilization over recent history, sampled lazily."""
        dt = now - self._util_sample_time
        if dt > 0:
            window_busy = self.busy_us_acc - self._util_sample_busy
            inst = min(1.0, window_busy / (dt * len(self.cores)))
            # Exponential smoothing with the thermal time constant so
            # the turbo model sees utilization on the same timescale
            # it reacts on.
            alpha = 1.0 - math.exp(-dt / self.config.thermal_tau_us)
            self.util_estimate += alpha * (inst - self.util_estimate)
            self._util_sample_time = now
            self._util_sample_busy = self.busy_us_acc
        return self.util_estimate

    def thermal_headroom(self, now: float) -> float:
        """Current turbo headroom in [0, 1], relaxed toward equilibrium.

        Equilibrium is ``1 - thermal_k * power`` where power is the
        smoothed socket utilization, biased upward under the
        ``performance`` governor (cores never drop to low-power
        states).
        """
        power = self.utilization(now)
        if self.config.governor == GOVERNOR_PERFORMANCE:
            power = min(1.0, power + self.config.performance_power_bias * power)
        equilibrium = max(0.0, 1.0 - self.config.thermal_k * power)
        dt = now - self._headroom_time
        if dt > 0:
            alpha = 1.0 - math.exp(-dt / self.config.thermal_tau_us)
            self.headroom += alpha * (equilibrium - self.headroom)
            self._headroom_time = now
        return self.headroom


class Core:
    """One core: a FIFO work queue with frequency-aware service times."""

    __slots__ = (
        "sim",
        "config",
        "socket",
        "index",
        "queue",
        "busy",
        "last_busy_end",
        "busy_us",
        "jobs_done",
        "irq_us",
        "_schedule",
    )

    def __init__(self, sim: Simulator, config: CpuConfig, socket: Socket, index: int):
        self.sim = sim
        self.config = config
        self.socket = socket
        self.index = index
        # Pre-bound kernel schedule — one job dispatch per event makes
        # the attribute hop + method bind measurable.
        self._schedule = sim.schedule
        self.queue: Deque[Job] = deque()
        self.busy = False
        #: Time the core last went idle; drives ondemand down-clocking.
        self.last_busy_end = 0.0
        self.busy_us = 0.0
        self.jobs_done = 0
        #: Busy time attributable to interrupt handling (diagnostics).
        self.irq_us = 0.0

    # ------------------------------------------------------------------
    # frequency model
    # ------------------------------------------------------------------
    def downclock_fraction(self, now: float) -> float:
        """How far toward min frequency the core has decayed in [0, 1].

        Zero while busy or under the ``performance`` governor.
        """
        if self.config.governor != GOVERNOR_ONDEMAND or self.busy:
            return 0.0
        gap = max(0.0, now - self.last_busy_end)
        return 1.0 - math.exp(-gap / self.config.ondemand_idle_tau_us)

    def effective_freq_ghz(self, now: float, down: Optional[float] = None) -> float:
        """Instantaneous frequency: governor state plus turbo bonus.

        With ``pstate_steps`` configured, the governor part snaps to
        the nearest rung of the discrete P-state ladder.
        """
        cfg = self.config
        if down is None:
            down = self.downclock_fraction(now)
        span = cfg.base_freq_ghz - cfg.min_freq_ghz
        if cfg.pstate_steps is not None and span > 0:
            rung = round(down * (cfg.pstate_steps - 1))
            down = rung / (cfg.pstate_steps - 1)
        freq = cfg.base_freq_ghz - span * down
        if cfg.turbo_enabled:
            freq += cfg.turbo_bonus_ghz * self.socket.thermal_headroom(now)
        return freq

    # ------------------------------------------------------------------
    # queueing
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self.queue) + (1 if self.busy else 0)

    def submit(self, job: Job) -> None:
        """Enqueue ``job``; dispatch immediately if the core is idle."""
        if self.busy:
            self.queue.append(job)
            return
        # Duplicate of _dispatch's no-turbo fast path (see there for
        # the exactness argument) — submit is called once per job, so
        # the extra frame would cost on every request.
        cfg = self.config
        if not cfg.turbo_enabled and cfg.governor != GOVERNOR_ONDEMAND:
            self.busy = True
            duration = job.work_us + job.fixed_us
            if job.mem_cost is not None:
                duration += job.mem_cost(self)
            self._schedule(duration, self._finish, job, duration)
            return
        self._dispatch(job)

    def _dispatch(self, job: Job) -> None:
        cfg = self.config
        # Fast path: a busy or performance-governed core with Turbo off
        # runs at exactly base frequency, so ``work * (base/base)``
        # reduces to ``work`` bit-for-bit and the whole frequency /
        # thermal machinery can be skipped.  (With Turbo enabled the
        # full path must run: ``thermal_headroom`` advances stateful
        # socket EMAs whose call sequence is part of the results.)
        if not cfg.turbo_enabled and (
            self.busy or cfg.governor != GOVERNOR_ONDEMAND
        ):
            self.busy = True
            duration = job.work_us + job.fixed_us
            if job.mem_cost is not None:
                duration += job.mem_cost(self)
            self._schedule(duration, self._finish, job, duration)
            return
        now = self.sim.now
        down = self.downclock_fraction(now)
        self.busy = True
        freq = self.effective_freq_ghz(now, down)
        duration = job.work_us * (cfg.base_freq_ghz / freq) + job.fixed_us
        if down > 0.0:
            # Ramp stall: request triggered an up-transition.
            duration += cfg.ondemand_ramp_stall_us * down
        if job.mem_cost is not None:
            duration += job.mem_cost(self)
        self._schedule(duration, self._finish, job, duration)

    def _finish(self, job: Job, duration: float) -> None:
        self.busy_us += duration
        self.jobs_done += 1
        self.socket.busy_us_acc += duration
        queue = self.queue
        if queue:
            self._dispatch(queue.popleft())
        else:
            self.busy = False
            self.last_busy_end = self.sim.now
        if job.on_done is not None:
            job.on_done(duration, *job.on_done_args)


class CpuComplex:
    """All sockets and cores of one machine."""

    def __init__(self, sim: Simulator, config: CpuConfig):
        self.sim = sim
        self.config = config
        self.sockets = [Socket(config, s) for s in range(config.sockets)]
        self.cores: List[Core] = []
        for socket in self.sockets:
            for c in range(config.cores_per_socket):
                core = Core(sim, config, socket, len(self.cores))
                socket.cores.append(core)
                self.cores.append(core)

    def core(self, index: int) -> Core:
        return self.cores[index]

    def cores_on_socket(self, socket_index: int) -> List[Core]:
        return list(self.sockets[socket_index].cores)

    def utilization(self, now: Optional[float] = None) -> float:
        """Machine-wide smoothed utilization (mean over sockets)."""
        if now is None:
            now = self.sim.now
        return sum(s.utilization(now) for s in self.sockets) / len(self.sockets)

    def total_busy_us(self) -> float:
        return sum(core.busy_us for core in self.cores)
