"""NUMA memory model.

The paper's ``numa`` factor (Table III) switches the kernel's memory
allocation policy between ``same-node`` (allocate on one node until it
is full) and ``interleave`` (round-robin pages across nodes).  Its
Finding 6 explains the observed tail-latency cost of ``interleave``:
most server threads end up with their connection buffers on the remote
node, and the remote-access overhead is *magnified at high load* by
memory-controller/interconnect queueing.

We model exactly that mechanism:

* At connection setup the policy assigns each connection's buffer a
  home node (:meth:`NumaMemory.place_buffer`).  Under ``same-node`` the
  buffer lands on the preferred node (node 0, where the paper's
  memcached slabs start), so threads on socket 0 access locally and
  threads on socket 1 pay full remote cost.  Under ``interleave`` the
  buffer's pages are spread, so *every* thread pays remote cost on a
  majority of accesses (the paper observed "majority of the server
  threads have their connection buffers allocated on the remote
  memory node").

* Per-request memory cost (:meth:`NumaMemory.access_cost_us`) is the
  number of buffer accesses times a local or remote latency, with the
  remote latency inflated by a contention factor proportional to the
  socket's current utilization — the load magnification of Finding 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cpu import Core

__all__ = ["NumaConfig", "NumaMemory", "POLICY_SAME_NODE", "POLICY_INTERLEAVE"]

POLICY_SAME_NODE = "same-node"
POLICY_INTERLEAVE = "interleave"


@dataclass
class NumaConfig:
    """NUMA latency and policy parameters.

    Latencies are per *buffer access* — a bundle of cache misses plus
    the dependent pointer chases a memcached request makes against a
    connection buffer — not a single DRAM access, hence microsecond
    rather than nanosecond scale.
    """

    policy: str = POLICY_SAME_NODE
    local_access_us: float = 0.08
    remote_access_us: float = 0.16
    #: Fraction of a connection's accesses that hit remote pages under
    #: interleave.  >0.5 captures the paper's "majority remote"
    #: observation (slab metadata and the buffer pages both stripe).
    interleave_remote_fraction: float = 0.9
    #: Interconnect-contention stalls: each *remote access* has
    #: probability ``stall_prob_k * util`` of colliding with a QPI /
    #: memory-controller burst, so a request's stall probability is
    #: ``stall_prob_k * util * remote_fraction * accesses`` (capped at
    #: 1) and a stalled request waits an exponential extra delay.
    #: This is the load-magnified *tail* cost of remote buffers
    #: (Finding 6): it barely moves the median (the paper's numa p50
    #: effect is ~2 us) while inflating p95/p99 heavily (+24/+56 us in
    #: Table IV) -- and it scales with the workload's memory footprint,
    #: which is why mcrouter's numa effect (Fig. 10) is smaller than
    #: memcached's (Fig. 8).
    stall_prob_k: float = 0.005
    stall_mean_us: float = 20.0
    #: Node where same-node allocation starts (memcached slabs grow
    #: from node 0 in the paper's configuration).
    preferred_node: int = 0

    def __post_init__(self) -> None:
        if self.policy not in (POLICY_SAME_NODE, POLICY_INTERLEAVE):
            raise ValueError(f"unknown NUMA policy {self.policy!r}")
        if not 0.0 <= self.interleave_remote_fraction <= 1.0:
            raise ValueError("interleave_remote_fraction must be in [0, 1]")
        if not 0.0 <= self.stall_prob_k <= 1.0:
            raise ValueError("stall_prob_k must be in [0, 1]")
        if self.stall_mean_us < 0:
            raise ValueError("stall_mean_us must be non-negative")
        if self.local_access_us < 0 or self.remote_access_us < self.local_access_us:
            raise ValueError(
                "need 0 <= local_access_us <= remote_access_us "
                f"(got {self.local_access_us}, {self.remote_access_us})"
            )


@dataclass
class BufferPlacement:
    """Where one connection's buffer lives.

    ``home_node`` is meaningful for single-node placements;
    ``interleaved`` placements stripe across all nodes and use
    ``remote_fraction`` against any accessing socket.
    """

    home_node: int
    interleaved: bool
    #: For interleaved buffers: fraction of accesses that are remote
    #: to the accessing socket (includes per-boot jitter).
    remote_fraction: float = 0.0


class NumaMemory:
    """Per-machine NUMA state: placement policy + access-cost model."""

    def __init__(self, config: NumaConfig, nodes: int, rng: np.random.Generator):
        if nodes < 1:
            raise ValueError("need at least one NUMA node")
        self.config = config
        self.nodes = nodes
        self._rng = rng

    def place_buffer(self) -> BufferPlacement:
        """Pick the home placement for a new connection buffer.

        Called once per connection at server boot / accept time; the
        per-boot randomness here is one of the sources of the paper's
        performance hysteresis (Fig. 4).
        """
        cfg = self.config
        if self.nodes == 1:
            return BufferPlacement(home_node=0, interleaved=False)
        if cfg.policy == POLICY_SAME_NODE:
            return BufferPlacement(home_node=cfg.preferred_node, interleaved=False)
        # Interleave: pages stripe across nodes.  The effective remote
        # fraction jitters per connection (slab reuse, page alignment),
        # one more per-boot state contributing to hysteresis.
        jitter = self._rng.uniform(-0.05, 0.05)
        frac = min(1.0, max(0.0, cfg.interleave_remote_fraction + jitter))
        return BufferPlacement(home_node=-1, interleaved=True, remote_fraction=frac)

    def remote_fraction(self, placement: BufferPlacement, socket_index: int) -> float:
        """Fraction of accesses remote to a thread on ``socket_index``."""
        if self.nodes == 1:
            return 0.0
        if placement.interleaved:
            return placement.remote_fraction
        return 0.0 if placement.home_node == socket_index else 1.0

    def access_cost_us(
        self, placement: BufferPlacement, core: Core, accesses: float
    ) -> float:
        """Memory time for ``accesses`` buffer accesses from ``core``.

        The cost has two parts: a deterministic per-access latency
        (local or remote) and, for remote-heavy requests under load, a
        probabilistic interconnect-contention stall — the mechanism
        behind Finding 6's "high queueing delay magnifies the overhead
        of accessing the remote memory node".
        """
        cfg = self.config
        frac_remote = self.remote_fraction(placement, core.socket.index)
        cost = accesses * (
            (1.0 - frac_remote) * cfg.local_access_us
            + frac_remote * cfg.remote_access_us
        )
        if frac_remote <= 0.0 or cfg.stall_prob_k <= 0.0:
            return cost
        util = core.socket.utilization(core.sim.now)
        stall_prob = min(1.0, cfg.stall_prob_k * util * frac_remote * accesses)
        if stall_prob > 0.0 and self._rng.random() < stall_prob:
            cost += float(self._rng.exponential(cfg.stall_mean_us))
        return cost
