"""Network model: links, racks, and cross-rack paths.

Two of the paper's pitfalls live in the network:

* **Client-side queueing bias** (Section II-C, Fig. 3): in a
  single-client setup the client's access link and NIC run at the same
  utilization as the server, so network queueing delay grows with load
  and pollutes the measurement.  We model each host's access link as a
  FIFO queue with finite bandwidth, so driving one client hard makes
  its link queue exactly as the paper shows.

* **Cross-rack aggregation bias** (Section II-B, Fig. 2): a client on
  a different rack traverses the spine, adding propagation delay plus
  bursty queueing from background traffic; its samples dominate the
  high quantiles of a naively merged distribution.  The spine model
  adds a configurable base hop cost plus a heavy-ish burst component.

Links are simulated as single-server FIFO queues: transmission time is
``bytes / bandwidth`` and packets depart in order; propagation delay is
added after transmission completes (it does not occupy the link).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .engine import Simulator

__all__ = ["LinkConfig", "Link", "SpineConfig", "Spine", "NetworkPath", "Rack", "Topology"]


@dataclass
class LinkConfig:
    """One directed link (a host's NIC uplink or downlink)."""

    #: Bandwidth in bytes per microsecond (10 GbE = 1250 B/us).
    bandwidth_bpus: float = 1250.0
    #: One-way propagation + switching latency inside the rack.
    propagation_us: float = 3.0

    def __post_init__(self) -> None:
        if self.bandwidth_bpus <= 0:
            raise ValueError("bandwidth must be positive")
        if self.propagation_us < 0:
            raise ValueError("propagation must be non-negative")


class Link:
    """A directed FIFO link with finite bandwidth.

    ``send`` enqueues a packet; ``on_delivered`` fires after the packet
    has been transmitted (queueing + transmission) and propagated.
    """

    __slots__ = (
        "sim",
        "config",
        "_bandwidth",
        "_propagation",
        "_schedule",
        "_free_at",
        "busy_us",
        "packets",
        "bytes_sent",
    )

    def __init__(self, sim: Simulator, config: LinkConfig):
        self.sim = sim
        self.config = config
        # Config is immutable after construction; cache the two hot
        # fields as plain floats (dataclass attribute access is a dict
        # lookup on the per-packet path otherwise), and the kernel's
        # schedule as a pre-bound method.
        self._bandwidth = config.bandwidth_bpus
        self._propagation = config.propagation_us
        self._schedule = sim.schedule
        self._free_at = 0.0
        self.busy_us = 0.0
        self.packets = 0
        self.bytes_sent = 0

    def send(
        self, size_bytes: int, on_delivered: Callable[..., None], *args: object
    ) -> float:
        """Transmit a packet; returns the queueing delay experienced.

        FIFO ordering is maintained by tracking when the transmitter
        frees up; no per-packet event is needed while the link is
        backlogged, which keeps the simulation cheap.  Extra ``args``
        are forwarded to ``on_delivered``, so callers can pass a bound
        method plus its payload instead of building a per-packet
        closure.
        """
        if size_bytes <= 0:
            raise ValueError("packet size must be positive")
        now = self.sim.now
        free_at = self._free_at
        start = free_at if free_at > now else now
        tx_us = size_bytes / self._bandwidth
        self._free_at = free_at = start + tx_us
        self.busy_us += tx_us
        self.packets += 1
        self.bytes_sent += size_bytes
        delivered_at = free_at + self._propagation
        self._schedule(delivered_at - now, on_delivered, *args)
        return start - now

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the transmitter was busy."""
        if self.sim.now <= 0:
            return 0.0
        return min(1.0, self.busy_us / self.sim.now)


@dataclass
class SpineConfig:
    """Cross-rack hop: aggregation/spine switches plus longer cables."""

    #: Extra one-way propagation for leaving the rack.
    propagation_us: float = 18.0
    #: Mean of the exponential queueing component from background
    #: datacenter traffic sharing the spine.
    background_mean_us: float = 6.0
    #: Probability that a packet hits a background burst, and the mean
    #: extra delay when it does.  This is what pushes a cross-rack
    #: client's samples into the tail (Fig. 2).
    burst_probability: float = 0.02
    burst_mean_us: float = 250.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ValueError("burst_probability must be in [0, 1]")
        for name in ("propagation_us", "background_mean_us", "burst_mean_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class Spine:
    """The shared inter-rack fabric; adds stochastic per-packet delay."""

    def __init__(self, sim: Simulator, config: SpineConfig, rng: np.random.Generator):
        self.sim = sim
        self.config = config
        self._rng = rng

    def traverse(self, on_delivered: Callable[..., None], *args: object) -> None:
        cfg = self.config
        delay = cfg.propagation_us
        if cfg.background_mean_us > 0:
            delay += float(self._rng.exponential(cfg.background_mean_us))
        if cfg.burst_probability > 0 and self._rng.random() < cfg.burst_probability:
            delay += float(self._rng.exponential(cfg.burst_mean_us))
        self.sim.schedule(delay, on_delivered, *args)


class NetworkPath:
    """A unidirectional path: source uplink [-> spine] -> dest downlink."""

    def __init__(self, uplink: Link, downlink: Link, spine: Optional[Spine] = None):
        self.uplink = uplink
        self.downlink = downlink
        self.spine = spine

    def send(
        self, size_bytes: int, on_delivered: Callable[..., None], *args: object
    ) -> None:
        # Hop-to-hop continuations are expressed as (bound method,
        # payload) pairs, so the common same-rack case allocates no
        # closures at all on the per-packet path.
        if self.spine is None:
            self.uplink.send(
                size_bytes, self.downlink.send, size_bytes, on_delivered, *args
            )
        else:
            self.uplink.send(
                size_bytes,
                self.spine.traverse,
                self.downlink.send,
                size_bytes,
                on_delivered,
                *args,
            )


@dataclass
class Rack:
    """A rack groups hosts; same-rack traffic stays under the ToR."""

    name: str
    hosts: List[str] = field(default_factory=list)


class Topology:
    """Racks of hosts with per-host access links.

    Every host owns one uplink and one downlink :class:`Link`; all of
    its flows share them, which is precisely how a saturated client's
    own NIC biases its measurements (Fig. 3).
    """

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        spine_config: Optional[SpineConfig] = None,
    ):
        self.sim = sim
        self.spine = Spine(sim, spine_config or SpineConfig(), rng)
        self._racks: dict = {}
        self._host_rack: dict = {}
        self._uplinks: dict = {}
        self._downlinks: dict = {}

    def add_host(
        self, name: str, rack: str, link_config: Optional[LinkConfig] = None
    ) -> None:
        if name in self._host_rack:
            raise ValueError(f"duplicate host {name!r}")
        cfg = link_config or LinkConfig()
        self._racks.setdefault(rack, Rack(rack)).hosts.append(name)
        self._host_rack[name] = rack
        self._uplinks[name] = Link(self.sim, cfg)
        self._downlinks[name] = Link(self.sim, cfg)

    def rack_of(self, host: str) -> str:
        return self._host_rack[host]

    def hosts(self) -> List[str]:
        """All host names, in insertion order (deterministic)."""
        return list(self._host_rack)

    def racks(self) -> List[str]:
        """All rack names, in insertion order (deterministic)."""
        return list(self._racks)

    def hosts_in_rack(self, rack: str) -> List[str]:
        """Host names placed in ``rack`` (scenario placement queries)."""
        if rack not in self._racks:
            raise KeyError(f"unknown rack {rack!r}")
        return list(self._racks[rack].hosts)

    def uplink(self, host: str) -> Link:
        return self._uplinks[host]

    def downlink(self, host: str) -> Link:
        return self._downlinks[host]

    def same_rack(self, a: str, b: str) -> bool:
        return self._host_rack[a] == self._host_rack[b]

    def path(self, src: str, dst: str) -> NetworkPath:
        """Build the directed path ``src -> dst``."""
        if src not in self._host_rack or dst not in self._host_rack:
            missing = src if src not in self._host_rack else dst
            raise KeyError(f"unknown host {missing!r}")
        spine = None if self.same_rack(src, dst) else self.spine
        return NetworkPath(self._uplinks[src], self._downlinks[dst], spine)
