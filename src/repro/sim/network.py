"""Network model: links, racks, and cross-rack paths.

Two of the paper's pitfalls live in the network:

* **Client-side queueing bias** (Section II-C, Fig. 3): in a
  single-client setup the client's access link and NIC run at the same
  utilization as the server, so network queueing delay grows with load
  and pollutes the measurement.  We model each host's access link as a
  FIFO queue with finite bandwidth, so driving one client hard makes
  its link queue exactly as the paper shows.

* **Cross-rack aggregation bias** (Section II-B, Fig. 2): a client on
  a different rack traverses the spine, adding propagation delay plus
  bursty queueing from background traffic; its samples dominate the
  high quantiles of a naively merged distribution.  The spine model
  adds a configurable base hop cost plus a heavy-ish burst component.

Links are simulated as single-server FIFO queues: transmission time is
``bytes / bandwidth`` and packets depart in order; propagation delay is
added after transmission completes (it does not occupy the link).

**Partitioning hooks.**  The same topology can span several sub-kernels
(:mod:`repro.sim.partition`): ``sim_for_host`` places each host's links
on its owning kernel, spine randomness is drawn from one independent
stream *per source host* (``spine/<host>``) so the draw order is a
local property of that host's uplink FIFO rather than of the global
event interleaving, and :meth:`Topology.lookahead_us` derives the
conservative window bound — the minimum propagation delay any packet
must pay before it can touch another host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .engine import Simulator

__all__ = [
    "LinkConfig",
    "Link",
    "SpineConfig",
    "Spine",
    "SpinePort",
    "NetworkPath",
    "Rack",
    "Topology",
]


@dataclass
class LinkConfig:
    """One directed link (a host's NIC uplink or downlink)."""

    #: Bandwidth in bytes per microsecond (10 GbE = 1250 B/us).
    bandwidth_bpus: float = 1250.0
    #: One-way propagation + switching latency inside the rack.
    propagation_us: float = 3.0

    def __post_init__(self) -> None:
        if self.bandwidth_bpus <= 0:
            raise ValueError("bandwidth must be positive")
        if self.propagation_us < 0:
            raise ValueError("propagation must be non-negative")


class Link:
    """A directed FIFO link with finite bandwidth.

    ``send`` enqueues a packet; ``on_delivered`` fires after the packet
    has been transmitted (queueing + transmission) and propagated.
    """

    __slots__ = (
        "sim",
        "config",
        "_bandwidth",
        "_propagation",
        "_schedule",
        "_free_at",
        "busy_us",
        "packets",
        "bytes_sent",
    )

    def __init__(self, sim: Simulator, config: LinkConfig):
        self.sim = sim
        self.config = config
        # Config is immutable after construction; cache the two hot
        # fields as plain floats (dataclass attribute access is a dict
        # lookup on the per-packet path otherwise), and the kernel's
        # schedule as a pre-bound method.
        self._bandwidth = config.bandwidth_bpus
        self._propagation = config.propagation_us
        self._schedule = sim.schedule
        self._free_at = 0.0
        self.busy_us = 0.0
        self.packets = 0
        self.bytes_sent = 0

    def send(
        self, size_bytes: int, on_delivered: Callable[..., None], *args: object
    ) -> float:
        """Transmit a packet; returns the queueing delay experienced.

        FIFO ordering is maintained by tracking when the transmitter
        frees up; no per-packet event is needed while the link is
        backlogged, which keeps the simulation cheap.  Extra ``args``
        are forwarded to ``on_delivered``, so callers can pass a bound
        method plus its payload instead of building a per-packet
        closure.
        """
        if size_bytes <= 0:
            raise ValueError("packet size must be positive")
        now = self.sim.now
        free_at = self._free_at
        start = free_at if free_at > now else now
        tx_us = size_bytes / self._bandwidth
        self._free_at = free_at = start + tx_us
        self.busy_us += tx_us
        self.packets += 1
        self.bytes_sent += size_bytes
        delivered_at = free_at + self._propagation
        self._schedule(delivered_at - now, on_delivered, *args)
        return start - now

    def transmit(self, size_bytes: int) -> float:
        """Occupy the link for a packet and return its absolute delivery time.

        Identical FIFO bookkeeping to :meth:`send` but **no event is
        scheduled**: partitioned channels use this on the source side
        of a cut edge, exporting the returned timestamp to the peer
        sub-kernel instead of scheduling locally — so a cut edge costs
        exactly as many events as the serial kernel's path.
        """
        if size_bytes <= 0:
            raise ValueError("packet size must be positive")
        now = self.sim.now
        free_at = self._free_at
        start = free_at if free_at > now else now
        tx_us = size_bytes / self._bandwidth
        self._free_at = free_at = start + tx_us
        self.busy_us += tx_us
        self.packets += 1
        self.bytes_sent += size_bytes
        return free_at + self._propagation

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the transmitter was busy."""
        if self.sim.now <= 0:
            return 0.0
        return min(1.0, self.busy_us / self.sim.now)


@dataclass
class SpineConfig:
    """Cross-rack hop: aggregation/spine switches plus longer cables."""

    #: Extra one-way propagation for leaving the rack.
    propagation_us: float = 18.0
    #: Mean of the exponential queueing component from background
    #: datacenter traffic sharing the spine.
    background_mean_us: float = 6.0
    #: Probability that a packet hits a background burst, and the mean
    #: extra delay when it does.  This is what pushes a cross-rack
    #: client's samples into the tail (Fig. 2).
    burst_probability: float = 0.02
    burst_mean_us: float = 250.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ValueError("burst_probability must be in [0, 1]")
        for name in ("propagation_us", "background_mean_us", "burst_mean_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class Spine:
    """The shared inter-rack fabric; adds stochastic per-packet delay.

    Randomness is organized as one independent stream per **source
    host** (see :class:`SpinePort`): a host's uplink delivers packets
    to the spine in FIFO order, so its port consumes draws in local
    arrival order regardless of how other hosts' events interleave —
    the property that lets a partitioned run reproduce the serial
    draw-for-draw.  A single shared generator (``rng``) is kept as a
    fallback for direct users of this class.
    """

    def __init__(
        self,
        sim: Simulator,
        config: SpineConfig,
        rng: Optional[np.random.Generator] = None,
        stream_factory: Optional[Callable[[str], np.random.Generator]] = None,
    ):
        self.sim = sim
        self.config = config
        self._rng = rng
        self._stream_factory = stream_factory
        self._ports: dict = {}

    def sample_delay(self, rng: np.random.Generator) -> float:
        """Draw one traversal delay from ``rng`` (shared by all ports)."""
        cfg = self.config
        delay = cfg.propagation_us
        if cfg.background_mean_us > 0:
            delay += float(rng.exponential(cfg.background_mean_us))
        if cfg.burst_probability > 0 and rng.random() < cfg.burst_probability:
            delay += float(rng.exponential(cfg.burst_mean_us))
        return delay

    def traverse(self, on_delivered: Callable[..., None], *args: object) -> None:
        """Legacy shared-stream traversal (single-kernel direct users)."""
        if self._rng is None:
            raise ValueError("spine has no shared rng; use port(src).traverse")
        self.sim.schedule(self.sample_delay(self._rng), on_delivered, *args)

    def port(self, src: str, sim: Optional[Simulator] = None) -> "SpinePort":
        """The per-source-host ingress port (memoized per host)."""
        port = self._ports.get(src)
        if port is None:
            if self._stream_factory is not None:
                rng = self._stream_factory(src)
            elif self._rng is not None:
                rng = self._rng
            else:
                raise ValueError("spine has neither stream factory nor shared rng")
            port = SpinePort(sim or self.sim, self, rng)
            self._ports[src] = port
        return port


class SpinePort:
    """One source host's ingress into the spine.

    Owns that host's delay stream and schedules on that host's kernel,
    so traversal is a purely local affair of the source partition; the
    sampled delay decides which *destination* kernel time the packet
    reaches the far downlink at.
    """

    __slots__ = ("sim", "spine", "rng")

    def __init__(self, sim: Simulator, spine: Spine, rng: np.random.Generator):
        self.sim = sim
        self.spine = spine
        self.rng = rng

    def delay_us(self) -> float:
        """Draw this packet's traversal delay (no event scheduled)."""
        return self.spine.sample_delay(self.rng)

    def traverse(self, on_delivered: Callable[..., None], *args: object) -> None:
        self.sim.schedule(self.spine.sample_delay(self.rng), on_delivered, *args)


class NetworkPath:
    """A unidirectional path: source uplink [-> spine] -> dest downlink."""

    def __init__(
        self,
        uplink: Link,
        downlink: Link,
        spine: "Optional[SpinePort | Spine]" = None,
    ):
        self.uplink = uplink
        self.downlink = downlink
        self.spine = spine

    def send(
        self, size_bytes: int, on_delivered: Callable[..., None], *args: object
    ) -> None:
        # Hop-to-hop continuations are expressed as (bound method,
        # payload) pairs, so the common same-rack case allocates no
        # closures at all on the per-packet path.
        if self.spine is None:
            self.uplink.send(
                size_bytes, self.downlink.send, size_bytes, on_delivered, *args
            )
        else:
            self.uplink.send(
                size_bytes,
                self.spine.traverse,
                self.downlink.send,
                size_bytes,
                on_delivered,
                *args,
            )


@dataclass
class Rack:
    """A rack groups hosts; same-rack traffic stays under the ToR."""

    name: str
    hosts: List[str] = field(default_factory=list)


class Topology:
    """Racks of hosts with per-host access links.

    Every host owns one uplink and one downlink :class:`Link`; all of
    its flows share them, which is precisely how a saturated client's
    own NIC biases its measurements (Fig. 3).
    """

    def __init__(
        self,
        sim: Simulator,
        rng: Optional[np.random.Generator] = None,
        spine_config: Optional[SpineConfig] = None,
        spine_streams: Optional[Callable[[str], np.random.Generator]] = None,
        sim_for_host: Optional[Callable[[str], Simulator]] = None,
    ):
        self.sim = sim
        self._sim_for_host = sim_for_host
        self.spine = Spine(
            sim, spine_config or SpineConfig(), rng, stream_factory=spine_streams
        )
        self._racks: dict = {}
        self._host_rack: dict = {}
        self._uplinks: dict = {}
        self._downlinks: dict = {}

    def sim_for(self, host: str) -> Simulator:
        """The kernel that owns ``host`` (``self.sim`` unless partitioned)."""
        if self._sim_for_host is None:
            return self.sim
        return self._sim_for_host(host)

    def add_host(
        self, name: str, rack: str, link_config: Optional[LinkConfig] = None
    ) -> None:
        if name in self._host_rack:
            raise ValueError(f"duplicate host {name!r}")
        cfg = link_config or LinkConfig()
        host_sim = self.sim_for(name)
        self._racks.setdefault(rack, Rack(rack)).hosts.append(name)
        self._host_rack[name] = rack
        self._uplinks[name] = Link(host_sim, cfg)
        self._downlinks[name] = Link(host_sim, cfg)

    def rack_of(self, host: str) -> str:
        return self._host_rack[host]

    def hosts(self) -> List[str]:
        """All host names, in insertion order (deterministic)."""
        return list(self._host_rack)

    def racks(self) -> List[str]:
        """All rack names, in insertion order (deterministic)."""
        return list(self._racks)

    def hosts_in_rack(self, rack: str) -> List[str]:
        """Host names placed in ``rack`` (scenario placement queries)."""
        if rack not in self._racks:
            raise KeyError(f"unknown rack {rack!r}")
        return list(self._racks[rack].hosts)

    def uplink(self, host: str) -> Link:
        return self._uplinks[host]

    def downlink(self, host: str) -> Link:
        return self._downlinks[host]

    def same_rack(self, a: str, b: str) -> bool:
        return self._host_rack[a] == self._host_rack[b]

    def path(self, src: str, dst: str) -> NetworkPath:
        """Build the directed path ``src -> dst``."""
        if src not in self._host_rack or dst not in self._host_rack:
            missing = src if src not in self._host_rack else dst
            raise KeyError(f"unknown host {missing!r}")
        if self.same_rack(src, dst):
            spine = None
        else:
            spine = self.spine.port(src, sim=self.sim_for(src))
        return NetworkPath(self._uplinks[src], self._downlinks[dst], spine)

    def lookahead_us(self) -> float:
        """The conservative partitioning lookahead this topology offers.

        Any packet leaving a host pays at least its access link's
        propagation delay before it can be observed by another host,
        and any cross-rack packet additionally pays at least the
        spine's propagation after its traversal delay is drawn.  The
        minimum over those lower bounds is therefore a time window in
        which no partition can causally affect another — the
        null-message-free barrier spacing used by
        :mod:`repro.sim.partition`.  Evaluated on the final topology
        (call after all hosts are added); independent of partition
        count, so it is also the control-plane delay ``Δ`` used for
        deterministic antagonist shutdown.
        """
        bounds = [link._propagation for link in self._uplinks.values()]
        if len(self._racks) > 1:
            bounds.append(self.spine.config.propagation_us)
        return min(bounds) if bounds else 0.0
