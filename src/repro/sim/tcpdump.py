"""Ground-truth packet capture (the paper's tcpdump methodology).

The paper validates every load tester against a tcpdump process pinned
to an idle core on each load-test machine: tcpdump timestamps request
and response packets *at the NIC*, so its latency excludes both
client-side queueing and the client kernel path, and is therefore a
clean view of server + network latency.  Matching request to response
by sequence id gives the ground-truth distribution of Figs. 5-6.

:class:`PacketCapture` reproduces that: the client machine notifies it
at the NIC TX and RX points, it matches by request id, and exposes the
resulting latency samples.  Because the capture rides the NIC
timestamps it sees the *controller-induced* ground truth — under a
closed-loop tester the captured distribution itself changes, exactly
as the paper observes in Fig. 6.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..workloads.base import Request

__all__ = ["PacketCapture"]


class PacketCapture:
    """NIC-level request/response latency capture for one host."""

    def __init__(self, host: str = ""):
        self.host = host
        self._tx_times: Dict[int, float] = {}
        self.latencies_us: List[float] = []
        self.unmatched_rx = 0
        self.enabled = True

    def record_tx(self, request: Request) -> None:
        """A request packet left the NIC."""
        if not self.enabled:
            return
        self._tx_times[request.req_id] = request.t_nic_send

    def record_rx(self, request: Request) -> None:
        """A response packet arrived at the NIC; match by sequence id."""
        if not self.enabled:
            return
        tx = self._tx_times.pop(request.req_id, None)
        if tx is None:
            self.unmatched_rx += 1
            return
        self.latencies_us.append(request.t_nic_recv - tx)

    @property
    def in_flight(self) -> int:
        """Requests sent but not yet answered (open connections)."""
        return len(self._tx_times)

    def samples(self) -> np.ndarray:
        """All matched latencies as an array (microseconds)."""
        return np.asarray(self.latencies_us, dtype=float)

    def reset(self) -> None:
        """Drop all state (e.g. at the end of a warm-up phase)."""
        self._tx_times.clear()
        self.latencies_us.clear()
        self.unmatched_rx = 0

    @staticmethod
    def merge(captures: List["PacketCapture"]) -> np.ndarray:
        """Pool samples from several hosts' captures into one array.

        Note: pooling NIC-level samples is safe for *ground truth*
        because tcpdump has no client-side bias to propagate; pooling
        user-level samples across clients is exactly the aggregation
        pitfall of Fig. 2 and is deliberately not offered by the
        Treadmill aggregation code.
        """
        if not captures:
            return np.empty(0, dtype=float)
        return np.concatenate([c.samples() for c in captures])
