"""Discrete-event datacenter substrate.

Virtual-time replacements for everything the paper ran on real
hardware: the event kernel, CPU/NUMA/NIC/kernel-path models, the rack
network, and NIC-level packet capture.  See DESIGN.md section 2 for the
substitution rationale.
"""

from .engine import Event, Process, SimulationError, Simulator
from .rng import RngRegistry, ScopedRng, derive_seed
from .cpu import Core, CpuComplex, CpuConfig, Job, Socket
from .memory import NumaConfig, NumaMemory, POLICY_INTERLEAVE, POLICY_SAME_NODE
from .nic import AFFINITY_ALL_NODES, AFFINITY_SAME_NODE, Nic, NicConfig
from .kernel import KernelConfig
from .network import Link, LinkConfig, NetworkPath, Rack, Spine, SpineConfig, Topology
from .machine import (
    ClientMachine,
    ClientSpec,
    HardwareSpec,
    ServerConnection,
    ServerMachine,
)
from .tcpdump import PacketCapture
from .telemetry import CoreSample, MachineTelemetry
from .backends import BackendPool, BackendPoolConfig

__all__ = [
    "Event",
    "Process",
    "SimulationError",
    "Simulator",
    "RngRegistry",
    "ScopedRng",
    "derive_seed",
    "Core",
    "CpuComplex",
    "CpuConfig",
    "Job",
    "Socket",
    "NumaConfig",
    "NumaMemory",
    "POLICY_INTERLEAVE",
    "POLICY_SAME_NODE",
    "AFFINITY_ALL_NODES",
    "AFFINITY_SAME_NODE",
    "Nic",
    "NicConfig",
    "KernelConfig",
    "Link",
    "LinkConfig",
    "NetworkPath",
    "Rack",
    "Spine",
    "SpineConfig",
    "Topology",
    "ClientMachine",
    "ClientSpec",
    "HardwareSpec",
    "ServerConnection",
    "ServerMachine",
    "PacketCapture",
    "CoreSample",
    "MachineTelemetry",
    "BackendPool",
    "BackendPoolConfig",
]
