"""NIC model: receive-side scaling (RSS) and interrupt-queue affinity.

The paper's ``nic`` factor (Table III) is the affinity of the NIC's
16 interrupt queues (the hardware exposes a 4-bit RSS hash): either all
queues are mapped to cores on the NIC's own socket (``same-node``) or
spread evenly across both sockets (``all-nodes``).

Mechanisms implemented, matching the paper's observations:

* **RSS hashing** — a connection hashes to one of ``num_queues``
  interrupt queues; the queue's affinity decides which core runs the
  RX interrupt handler for every packet of that connection.
* **Same-node concentration** — under ``same-node`` all IRQ work lands
  on the NIC socket's cores, adding asymmetric load there.
* **Remote DMA cost** (why ``all-nodes`` *hurts* at high load, the
  +29 us main effect in Table IV) — the NIC DMA-writes packets into the
  memory of its home socket; an IRQ handler running on the *other*
  socket pays a cross-socket penalty on every packet.
* **Core warming** (Finding 4: ``all-nodes`` helps at low load when the
  governor is ``ondemand``) — spreading IRQs over all cores shortens
  every core's idle gaps, so fewer requests land on down-clocked cores.
  This emerges from the interaction with :mod:`repro.sim.cpu`'s
  down-clock model rather than being coded explicitly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List

from .cpu import Core, CpuComplex

__all__ = ["NicConfig", "Nic", "AFFINITY_SAME_NODE", "AFFINITY_ALL_NODES"]

AFFINITY_SAME_NODE = "same-node"
AFFINITY_ALL_NODES = "all-nodes"


@dataclass
class NicConfig:
    """NIC parameters (Table II: Mellanox ConnectX-3, 4-bit RSS hash)."""

    affinity: str = AFFINITY_SAME_NODE
    #: Number of hardware interrupt queues (2^4 for the paper's NIC).
    num_queues: int = 16
    #: Socket the NIC's PCIe lanes attach to; DMA lands in this
    #: socket's memory.
    home_socket: int = 0
    #: CPU time of the RX interrupt handler per request packet.
    irq_rx_us: float = 0.7
    #: Extra cost when the handler runs on a core whose socket is not
    #: the NIC's home socket (remote DMA-buffer reads, QPI hop).
    remote_dma_penalty_us: float = 0.4
    #: Cost of waking/dispatching to a worker on a different core than
    #: the IRQ core, and an additional cross-socket component.
    wake_same_socket_us: float = 0.3
    wake_cross_socket_us: float = 0.9

    def __post_init__(self) -> None:
        if self.affinity not in (AFFINITY_SAME_NODE, AFFINITY_ALL_NODES):
            raise ValueError(f"unknown NIC affinity {self.affinity!r}")
        if self.num_queues < 1:
            raise ValueError("num_queues must be >= 1")


class Nic:
    """One NIC: maps connections to IRQ queues, IRQ queues to cores."""

    def __init__(self, config: NicConfig, cpu: CpuComplex):
        self.config = config
        self.cpu = cpu
        self.queue_to_core: List[Core] = self._build_affinity_map()

    def _build_affinity_map(self) -> List[Core]:
        cfg = self.config
        if cfg.affinity == AFFINITY_SAME_NODE:
            candidates = self.cpu.cores_on_socket(cfg.home_socket)
        else:
            candidates = list(self.cpu.cores)
        return [candidates[q % len(candidates)] for q in range(cfg.num_queues)]

    def rss_queue(self, connection_id: int) -> int:
        """Hash a connection onto an interrupt queue (RSS).

        Real RSS hashes the 4-tuple; a CRC of the connection id gives
        the same static, uniform mapping.
        """
        h = zlib.crc32(connection_id.to_bytes(8, "little", signed=False))
        return h % self.config.num_queues

    def irq_core(self, connection_id: int) -> Core:
        """Core that handles RX interrupts for this connection."""
        return self.queue_to_core[self.rss_queue(connection_id)]

    def irq_cost_us(self, irq_core: Core) -> float:
        """CPU time of one RX interrupt on ``irq_core``."""
        cost = self.config.irq_rx_us
        if irq_core.socket.index != self.config.home_socket:
            cost += self.config.remote_dma_penalty_us
        return cost

    def wake_cost_us(self, irq_core: Core, worker_core: Core) -> float:
        """Cost of handing the request from IRQ context to the worker."""
        if irq_core is worker_core:
            return 0.0
        if irq_core.socket is worker_core.socket:
            return self.config.wake_same_socket_us
        return self.config.wake_cross_socket_us
